//! Synthesis of demand programs matching the published workload statistics.
//!
//! Each workload family gets a distinct phase structure reproducing the
//! paper's observations (§3.1, Fig. 2):
//!
//! * **LDA** — long phases (the 0–125 s plateau of Fig. 2a), *fast* rises
//!   (20→160 W in ~3 s) and *slow* decays (160→70 W over ~20 s).
//! * **Bayes** — medium phases of varying length (13–25 s) with *diverse
//!   peaks* (some phases reach 165 W, others only ~110 W) and diverse slopes.
//! * **LR / Linear** — many phases shorter than 10 s: high-frequency power
//!   changes that stateless managers chase and lose (§6.1).
//! * **Kmeans / RF** — long iterative phases (SLURM penalises these most,
//!   §6.2).
//! * **GMM** — the only high-power Spark workload: mostly >110 W with brief
//!   dips.
//! * **Low-power micros** — tens of Watts with one brief spike.
//! * **NPB** — sustained 150–162 W for the entire run (>99 % above 110 W).
//!
//! After the structure is generated, [`calibrate`] rescales total work so
//! that the simulated duration under a constant 110 W cap matches the
//! published Table 2/4 duration. Because the power→progress rate depends
//! only on demand (which work-scaling preserves), the calibrated program
//! hits the published duration exactly under that reference cap.

use crate::catalog::{PowerClass, Suite, WorkloadSpec};
use crate::perf::PerfModel;
use crate::phase::{DemandProgram, Phase};
use dps_sim_core::rng::RngStream;
use dps_sim_core::units::{Seconds, Watts};

/// Sampling resolution for numeric integration of capped durations.
const CALIBRATION_STEP: Seconds = 0.25;

/// Phase-structure parameters for one workload family.
#[derive(Debug, Clone, Copy)]
struct FamilyParams {
    /// High-phase demand range (W).
    high: (Watts, Watts),
    /// Low-phase demand range (W).
    low: (Watts, Watts),
    /// High-phase duration range (s).
    high_dur: (Seconds, Seconds),
    /// Rise-ramp duration range (s).
    rise: (Seconds, Seconds),
    /// Fall-ramp duration range (s).
    fall: (Seconds, Seconds),
}

impl FamilyParams {
    fn mid(range: (f64, f64)) -> f64 {
        (range.0 + range.1) / 2.0
    }
}

fn params_for(spec: &WorkloadSpec) -> FamilyParams {
    match spec.name {
        // Long phases; fast rises, slow falls (Fig. 2a).
        "LDA" => FamilyParams {
            high: (150.0, 165.0),
            low: (40.0, 75.0),
            high_dur: (60.0, 125.0),
            rise: (2.0, 4.0),
            fall: (15.0, 25.0),
        },
        // Long iterative phases.
        "Kmeans" => FamilyParams {
            high: (145.0, 162.0),
            low: (55.0, 85.0),
            high_dur: (30.0, 70.0),
            rise: (3.0, 6.0),
            fall: (5.0, 12.0),
        },
        "RF" => FamilyParams {
            high: (140.0, 160.0),
            low: (50.0, 80.0),
            high_dur: (25.0, 50.0),
            rise: (2.0, 5.0),
            fall: (4.0, 10.0),
        },
        // Medium, diverse phases (Fig. 2b): peaks alternate 165 / 110-ish.
        "Bayes" => FamilyParams {
            high: (115.0, 165.0),
            low: (45.0, 80.0),
            high_dur: (10.0, 25.0),
            rise: (2.0, 8.0),
            fall: (2.0, 8.0),
        },
        // High-frequency, short phases (Fig. 2c): everything under 10 s.
        "LR" => FamilyParams {
            high: (135.0, 160.0),
            low: (50.0, 80.0),
            high_dur: (3.0, 8.0),
            rise: (1.0, 2.0),
            fall: (1.0, 2.0),
        },
        "Linear" => FamilyParams {
            high: (130.0, 155.0),
            low: (55.0, 85.0),
            high_dur: (3.0, 9.0),
            rise: (1.0, 2.0),
            fall: (1.0, 2.0),
        },
        // Mostly high with *shallow* dips: GMM is the one high-power Spark
        // workload — even its quiet phases stay near 100 W, which is why a
        // stateless manager lets it hold its caps against a paired
        // workload whose dips run much deeper (§6.2).
        "GMM" => FamilyParams {
            high: (148.0, 165.0),
            low: (88.0, 106.0),
            high_dur: (40.0, 90.0),
            rise: (2.0, 5.0),
            fall: (3.0, 8.0),
        },
        // Anything else Spark-mid defaults to Bayes-like structure.
        _ => FamilyParams {
            high: (130.0, 160.0),
            low: (50.0, 85.0),
            high_dur: (15.0, 35.0),
            rise: (2.0, 6.0),
            fall: (2.0, 6.0),
        },
    }
}

/// Builds the *uncalibrated* phase structure for a spec.
fn build_structure(spec: &WorkloadSpec, rng: &mut RngStream) -> DemandProgram {
    match (spec.suite, spec.class) {
        (Suite::Npb, _) => build_npb(spec, rng),
        (Suite::Spark, PowerClass::Low) => build_low_power(spec, rng),
        (Suite::Spark, _) if matches!(spec.name, "LR" | "Linear") => build_bursty_spark(spec, rng),
        (Suite::Spark, _) => build_phased_spark(spec, rng),
    }
}

/// LR/Linear: *bursts* of rapid cycling (every phase shorter than 10 s,
/// Fig. 2c) separated by long quiet stretches that bring the overall
/// above-110 fraction down to the published value. Within a burst the
/// power flips fast enough that a 20-sample history window holds several
/// prominent peaks — the signature DPS's frequency gate keys on.
fn build_bursty_spark(spec: &WorkloadSpec, rng: &mut RngStream) -> DemandProgram {
    let p = params_for(spec);
    let target_frac = spec.frac_above_110.clamp(0.02, 0.95);
    let total = spec.duration_110w.max(60.0);

    let mut phases = Vec::new();
    let mut elapsed = 0.0;
    let mut low_level = rng.range(p.low.0..p.low.1);
    while elapsed < total {
        // One burst: 3-6 rapid cycles.
        let cycles = rng.range(3..=6usize);
        let mut above = 0.0;
        let mut burst_len = 0.0;
        for _ in 0..cycles {
            let high_level = rng.range(p.high.0..p.high.1);
            let rise = rng.range(p.rise.0..p.rise.1);
            let high_dur = rng.range(p.high_dur.0..p.high_dur.1);
            let fall = rng.range(p.fall.0..p.fall.1);
            let next_low = rng.range(p.low.0..p.low.1);
            let low_dur = rng.range(2.0..5.0);
            phases.push(Phase::ramp(rise, low_level, high_level));
            phases.push(Phase::constant(high_dur, high_level));
            phases.push(Phase::ramp(fall, high_level, next_low));
            phases.push(Phase::constant(low_dur, next_low));
            low_level = next_low;
            above += high_dur + 0.5 * (rise + fall);
            burst_len += rise + high_dur + fall + low_dur;
        }
        // Quiet stretch sized so the burst's above-110 time dilutes to the
        // target fraction over the whole burst+quiet cycle.
        let quiet = ((above / target_frac - burst_len) * rng.jitter(0.2)).max(5.0);
        phases.push(Phase::constant(quiet, low_level * rng.range(0.8..1.1)));
        elapsed += burst_len + quiet;
    }
    DemandProgram::new(phases)
}

/// NPB: a short startup ramp, then sustained high power with small
/// wobble, then a short teardown. >99 % of time above 110 W.
fn build_npb(spec: &WorkloadSpec, rng: &mut RngStream) -> DemandProgram {
    let level = rng.range(150.0..162.0);
    let total = spec.duration_110w.max(20.0);
    let startup = (total * 0.003).clamp(0.3, 3.0);
    let teardown = startup;
    let mut phases = vec![Phase::ramp(startup, 25.0, level)];
    // Body: segments of slightly wobbling sustained power.
    let mut remaining = total - startup - teardown;
    let mut current = level;
    while remaining > 0.0 {
        let seg = rng.range(20.0..60.0_f64).min(remaining);
        let next = (level + rng.normal(0.0, 2.5)).clamp(140.0, 165.0);
        phases.push(Phase::ramp(seg.max(1.0), current, next));
        current = next;
        remaining -= seg;
    }
    phases.push(Phase::ramp(teardown, current, 25.0));
    DemandProgram::new(phases)
}

/// Low-power micros: tens of Watts with a single brief spike above 110 W
/// sized to the published (sub-percent) fraction.
fn build_low_power(spec: &WorkloadSpec, rng: &mut RngStream) -> DemandProgram {
    let total = spec.duration_110w.max(10.0);
    let spike = (spec.frac_above_110 * total).clamp(0.05, 1.0);
    let base = rng.range(25.0..45.0);
    let pre = total * rng.range(0.3..0.6);
    let post = (total - pre - spike).max(1.0);
    DemandProgram::new(vec![
        Phase::constant(pre, base),
        Phase::ramp(0.5, base, 60.0),
        Phase::constant(spike, 118.0),
        Phase::ramp(0.5, 60.0, base * 1.1),
        Phase::constant(post, base * rng.range(0.9..1.2)),
    ])
}

/// Phase-rich Spark: cycles of (rise, high, fall, low) with family-specific
/// durations and levels. The low-phase duration is solved so the above-110
/// fraction matches the catalog.
fn build_phased_spark(spec: &WorkloadSpec, rng: &mut RngStream) -> DemandProgram {
    let p = params_for(spec);
    let target_frac = spec.frac_above_110.clamp(0.02, 0.95);

    // Expected above-110 seconds per cycle: the high phase plus roughly the
    // above-110 halves of the ramps (levels straddle 110 in all families).
    let mean_high = FamilyParams::mid(p.high_dur);
    let mean_rise = FamilyParams::mid(p.rise);
    let mean_fall = FamilyParams::mid(p.fall);
    let above_per_cycle = mean_high + 0.5 * (mean_rise + mean_fall);
    // Solve mean low duration so above/(above+below) = target fraction.
    let cycle_total = above_per_cycle / target_frac;
    let mean_low = (cycle_total - above_per_cycle - 0.5 * (mean_rise + mean_fall)).max(1.0);

    let total = spec.duration_110w.max(60.0);
    let mut phases = Vec::new();
    let mut elapsed = 0.0;
    // Start in a low phase (applications begin with setup/IO).
    let mut low_level = rng.range(p.low.0..p.low.1);
    let first_low = (mean_low * rng.range(0.3..0.8)).max(1.0);
    phases.push(Phase::constant(first_low, low_level));
    elapsed += first_low;

    while elapsed < total {
        let high_level = rng.range(p.high.0..p.high.1);
        let rise = rng.range(p.rise.0..p.rise.1);
        let high_dur = (rng.range(p.high_dur.0..p.high_dur.1) * rng.jitter(0.15)).max(1.0);
        let fall = rng.range(p.fall.0..p.fall.1);
        let next_low_level = rng.range(p.low.0..p.low.1);
        let low_dur = (mean_low * rng.jitter(0.35) * rng.range(0.6..1.4)).max(1.0);

        phases.push(Phase::ramp(rise, low_level, high_level));
        phases.push(Phase::constant(high_dur, high_level));
        phases.push(Phase::ramp(fall, high_level, next_low_level));
        phases.push(Phase::constant(low_dur, next_low_level));
        low_level = next_low_level;
        elapsed += rise + high_dur + fall + low_dur;
    }
    DemandProgram::new(phases)
}

/// Simulated duration of a program executed alone under a constant cap.
///
/// Numerically integrates `dt = dpos / rate(demand(pos), min(demand, cap))`
/// at `CALIBRATION_STEP` resolution.
pub fn capped_duration(program: &DemandProgram, perf: &PerfModel, cap: Watts) -> Seconds {
    let total = program.total_work();
    let mut duration = 0.0;
    let mut pos = 0.0;
    while pos < total {
        let step = CALIBRATION_STEP.min(total - pos);
        let demand = program.demand_at(pos + step / 2.0);
        let granted = demand.min(cap);
        duration += step / perf.rate(demand, granted);
        pos += step;
    }
    duration
}

/// Rescales a program's work so its duration under `reference_cap` matches
/// `target_duration`.
pub fn calibrate(
    program: DemandProgram,
    perf: &PerfModel,
    reference_cap: Watts,
    target_duration: Seconds,
) -> DemandProgram {
    let current = capped_duration(&program, perf, reference_cap);
    program.scale_work(target_duration / current)
}

/// Builds the calibrated demand program for a catalog entry.
///
/// `seed` controls run-to-run variation ("the Spark workloads demonstrate
/// such variable performance between different runs", §6.1): different seeds
/// give different phase realisations of the same family, all calibrated to
/// the same 110 W-capped duration.
pub fn build_program(spec: &WorkloadSpec, perf: &PerfModel, seed: u64) -> DemandProgram {
    let mut rng = RngStream::new(seed, &format!("workload/{}", spec.name));
    let structure = build_structure(spec, &mut rng);
    calibrate(structure, perf, 110.0, spec.duration_110w)
}

/// Per-socket demand variant: sockets of the same cluster run the same
/// program with a few percent of demand variation (stragglers, NUMA
/// imbalance), clamped at the TDP ceiling.
pub fn socket_variant(
    base: &DemandProgram,
    tdp: Watts,
    socket_index: usize,
    rng: &RngStream,
) -> DemandProgram {
    let mut socket_rng = rng.child(&format!("socket-variant/{socket_index}"));
    let factor = (1.0 + socket_rng.normal(0.0, 0.03)).clamp(0.92, 1.08);
    base.scale_demand(factor, tdp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;

    fn perf() -> PerfModel {
        PerfModel::paper_default()
    }

    #[test]
    fn calibrated_duration_matches_table() {
        for spec in catalog::SPARK_WORKLOADS
            .iter()
            .chain(catalog::NPB_WORKLOADS)
        {
            let program = build_program(spec, &perf(), 1);
            let d = capped_duration(&program, &perf(), 110.0);
            let rel = (d - spec.duration_110w).abs() / spec.duration_110w;
            assert!(
                rel < 0.01,
                "{}: capped duration {d} vs table {}",
                spec.name,
                spec.duration_110w
            );
        }
    }

    #[test]
    fn fraction_above_110_matches_table() {
        for spec in catalog::SPARK_WORKLOADS
            .iter()
            .chain(catalog::NPB_WORKLOADS)
        {
            let program = build_program(spec, &perf(), 2);
            let f = program.fraction_above(110.0);
            let err = (f - spec.frac_above_110).abs();
            assert!(
                err < 0.08,
                "{}: fraction above 110 = {f:.3}, table {:.3}",
                spec.name,
                spec.frac_above_110
            );
        }
    }

    #[test]
    fn npb_sustained_high() {
        let spec = catalog::find("EP").unwrap();
        let program = build_program(spec, &perf(), 3);
        assert!(program.fraction_above(110.0) > 0.98);
        assert!(program.peak_demand() <= 165.0);
    }

    #[test]
    fn low_power_rarely_above_110() {
        for name in ["Wordcount", "Sort", "Terasort", "Repartition"] {
            let spec = catalog::find(name).unwrap();
            let program = build_program(spec, &perf(), 4);
            assert!(
                program.fraction_above(110.0) < 0.05,
                "{name}: {}",
                program.fraction_above(110.0)
            );
        }
    }

    #[test]
    fn lr_phases_are_short() {
        let spec = catalog::find("LR").unwrap();
        let program = build_program(spec, &perf(), 5);
        // Count phase durations of high-power segments; most are < 10 s.
        let short_high = program
            .phases()
            .iter()
            .filter(|p| p.shape.peak() > 110.0)
            .filter(|p| p.duration < 10.0)
            .count();
        let all_high = program
            .phases()
            .iter()
            .filter(|p| p.shape.peak() > 110.0)
            .count();
        assert!(all_high > 10, "LR should have many high phases");
        assert!(
            short_high as f64 / all_high as f64 > 0.8,
            "most LR high phases should be short: {short_high}/{all_high}"
        );
    }

    #[test]
    fn lda_has_long_phases() {
        let spec = catalog::find("LDA").unwrap();
        let program = build_program(spec, &perf(), 6);
        let longest = program
            .phases()
            .iter()
            .filter(|p| p.shape.peak() > 110.0)
            .map(|p| p.duration)
            .fold(0.0, f64::max);
        assert!(longest > 40.0, "LDA longest high phase {longest}");
    }

    #[test]
    fn seeds_change_realisation_not_calibration() {
        let spec = catalog::find("Bayes").unwrap();
        let a = build_program(spec, &perf(), 10);
        let b = build_program(spec, &perf(), 11);
        assert_ne!(a, b, "different seeds must differ");
        let da = capped_duration(&a, &perf(), 110.0);
        let db = capped_duration(&b, &perf(), 110.0);
        assert!((da - db).abs() / da < 0.01, "both calibrated: {da} vs {db}");
    }

    #[test]
    fn same_seed_reproducible() {
        let spec = catalog::find("Kmeans").unwrap();
        assert_eq!(
            build_program(spec, &perf(), 42),
            build_program(spec, &perf(), 42)
        );
    }

    #[test]
    fn uncapped_faster_than_capped() {
        let spec = catalog::find("GMM").unwrap();
        let program = build_program(spec, &perf(), 7);
        let uncapped = capped_duration(&program, &perf(), 165.0);
        let capped = capped_duration(&program, &perf(), 110.0);
        assert!(
            uncapped < capped * 0.95,
            "GMM should speed up uncapped: {uncapped} vs {capped}"
        );
    }

    #[test]
    fn harsher_cap_slower() {
        let spec = catalog::find("Kmeans").unwrap();
        let program = build_program(spec, &perf(), 8);
        let d80 = capped_duration(&program, &perf(), 80.0);
        let d110 = capped_duration(&program, &perf(), 110.0);
        let d140 = capped_duration(&program, &perf(), 140.0);
        assert!(d80 > d110 && d110 > d140);
    }

    #[test]
    fn socket_variant_bounded() {
        let spec = catalog::find("LDA").unwrap();
        let base = build_program(spec, &perf(), 9);
        let rng = RngStream::new(1, "variant-test");
        for s in 0..10 {
            let v = socket_variant(&base, 165.0, s, &rng);
            assert!(v.peak_demand() <= 165.0);
            assert_eq!(v.phases().len(), base.phases().len());
            // Total work is demand-scaling invariant.
            assert!((v.total_work() - base.total_work()).abs() < 1e-9);
        }
    }

    #[test]
    fn socket_variants_deterministic() {
        let spec = catalog::find("LR").unwrap();
        let base = build_program(spec, &perf(), 3);
        let rng = RngStream::new(5, "variant-test");
        assert_eq!(
            socket_variant(&base, 165.0, 2, &rng),
            socket_variant(&base, 165.0, 2, &rng)
        );
    }
}
