//! Demand-trace playback: run a *recorded* power trace as a workload.
//!
//! The synthetic generators reproduce the paper's published statistics, but
//! a deployment that has real RAPL logs (e.g. the CSV files written by the
//! `trace` experiment binary, or logs from the original artifact) can
//! replay them directly: each sample becomes a constant demand phase, and
//! the resulting [`DemandProgram`] plugs into everything else — the
//! simulator, the calibration helpers, the managers.

use crate::phase::{DemandProgram, Phase};
use dps_sim_core::units::{Seconds, Watts};

/// Builds a program holding each sampled demand for `period` seconds.
///
/// # Panics
/// Panics if `values` is empty or `period` is not positive.
pub fn program_from_samples(period: Seconds, values: &[Watts]) -> DemandProgram {
    assert!(!values.is_empty(), "need at least one sample");
    assert!(
        period.is_finite() && period > 0.0,
        "period must be positive"
    );
    // Merge equal consecutive samples into one phase: recorded traces are
    // long and flat stretches are common.
    let mut phases: Vec<Phase> = Vec::new();
    for &v in values {
        let v = v.max(0.0);
        match phases.last_mut() {
            Some(last) if matches!(last.shape, crate::phase::PhaseShape::Constant(w) if w == v) => {
                last.duration += period;
            }
            _ => phases.push(Phase::constant(period, v)),
        }
    }
    DemandProgram::new(phases)
}

/// Parses a `time,value` CSV (header optional) into sample pairs.
///
/// Accepts the exact format `dps-metrics::csv::trace` writes. Returns an
/// error naming the offending line for anything malformed.
pub fn parse_trace_csv(text: &str) -> Result<Vec<(Seconds, Watts)>, String> {
    let mut out = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        // Skip a header row.
        if idx == 0 && line.chars().next().is_some_and(|c| c.is_alphabetic()) {
            continue;
        }
        let mut parts = line.splitn(2, ',');
        let t = parts
            .next()
            .and_then(|s| s.trim().parse::<f64>().ok())
            .ok_or_else(|| format!("line {}: bad time in {line:?}", idx + 1))?;
        let v = parts
            .next()
            .and_then(|s| s.trim().parse::<f64>().ok())
            .ok_or_else(|| format!("line {}: bad value in {line:?}", idx + 1))?;
        if !t.is_finite() || !v.is_finite() {
            return Err(format!("line {}: non-finite sample", idx + 1));
        }
        out.push((t, v));
    }
    if out.is_empty() {
        return Err("trace contains no samples".into());
    }
    Ok(out)
}

/// Parses a `time,value` CSV and builds a playback program. The sampling
/// period is inferred from the median time delta; samples must be in
/// ascending time order.
pub fn program_from_csv(text: &str) -> Result<DemandProgram, String> {
    let samples = parse_trace_csv(text)?;
    if samples.len() == 1 {
        return Ok(program_from_samples(1.0, &[samples[0].1]));
    }
    let mut deltas: Vec<f64> = samples.windows(2).map(|w| w[1].0 - w[0].0).collect();
    if deltas.iter().any(|&d| d <= 0.0) {
        return Err("trace times must be strictly increasing".into());
    }
    deltas.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let period = deltas[deltas.len() / 2];
    let values: Vec<f64> = samples.iter().map(|&(_, v)| v).collect();
    Ok(program_from_samples(period, &values))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_become_phases() {
        let p = program_from_samples(1.0, &[50.0, 50.0, 120.0, 50.0]);
        assert_eq!(p.total_work(), 4.0);
        assert_eq!(p.demand_at(0.5), 50.0);
        assert_eq!(p.demand_at(2.5), 120.0);
        assert_eq!(p.demand_at(3.5), 50.0);
        // Equal neighbours merged.
        assert_eq!(p.phases().len(), 3);
    }

    #[test]
    fn negative_samples_clamped() {
        let p = program_from_samples(1.0, &[-5.0]);
        assert_eq!(p.demand_at(0.5), 0.0);
    }

    #[test]
    fn csv_roundtrip_with_metrics_writer() {
        let times: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let values: Vec<f64> = (0..10).map(|i| 50.0 + 10.0 * (i % 3) as f64).collect();
        let csv = dps_metrics_csv_stub::trace(&times, &values);
        let p = program_from_csv(&csv).unwrap();
        assert_eq!(p.total_work(), 10.0);
        for (i, &v) in values.iter().enumerate() {
            assert_eq!(p.demand_at(i as f64 + 0.5), v, "sample {i}");
        }
    }

    /// `dps-metrics` is not a dependency of this crate; replicate its
    /// two-column trace format locally for the roundtrip test.
    mod dps_metrics_csv_stub {
        pub fn trace(times: &[f64], values: &[f64]) -> String {
            let mut out = String::from("time,value\n");
            for (t, v) in times.iter().zip(values) {
                out.push_str(&format!("{t},{v}\n"));
            }
            out
        }
    }

    #[test]
    fn header_optional() {
        let with = "time,value\n0,100\n1,110\n";
        let without = "0,100\n1,110\n";
        assert_eq!(
            program_from_csv(with).unwrap(),
            program_from_csv(without).unwrap()
        );
    }

    #[test]
    fn malformed_lines_reported() {
        assert!(parse_trace_csv("0,abc\n").unwrap_err().contains("line 1"));
        assert!(parse_trace_csv("xyz\n1,2\n").is_ok(), "header skipped");
        assert!(parse_trace_csv("1\n").unwrap_err().contains("bad value"));
        assert!(parse_trace_csv("").is_err());
        assert!(parse_trace_csv("0,inf\n")
            .unwrap_err()
            .contains("non-finite"));
    }

    #[test]
    fn non_monotone_times_rejected() {
        assert!(program_from_csv("0,1\n2,2\n1,3\n").is_err());
        assert!(program_from_csv("0,1\n0,2\n").is_err());
    }

    #[test]
    fn period_inferred_from_median_delta() {
        // 0.5 s sampling with one glitchy gap: median still 0.5.
        let csv = "0,10\n0.5,20\n1.0,30\n1.5,40\n3.5,50\n";
        let p = program_from_csv(csv).unwrap();
        assert!((p.total_work() - 2.5).abs() < 1e-9);
        assert_eq!(p.demand_at(0.75), 20.0);
    }

    #[test]
    fn playback_runs_in_simulator_types() {
        use crate::perf::PerfModel;
        use crate::runtime::RunningWorkload;
        let p = program_from_samples(1.0, &[120.0; 30]);
        let mut w = RunningWorkload::once(p, PerfModel::paper_default());
        for _ in 0..30 {
            w.advance(165.0, 1.0);
        }
        assert!(w.is_done());
    }
}
