//! Job-level summaries for scheduler experiments.
//!
//! The `sched` experiment compares power managers under an identical job
//! arrival trace; what differs is how fast jobs run under each manager's
//! caps, which shows up in the classic batch-scheduling metrics computed
//! here: makespan, bounded slowdown, and node utilization. The inputs are
//! plain `(arrival, start, end)` triples so this module stays free of any
//! scheduler dependency.

use crate::series::DistributionSummary;

/// One finished job's timeline: `(arrival, start, end)` in seconds, with
/// `arrival <= start <= end`.
pub type JobTimes = (f64, f64, f64);

/// Makespan: the latest end time across jobs (the fleet finishes when the
/// last job does). `None` for an empty set.
pub fn makespan(jobs: &[JobTimes]) -> Option<f64> {
    jobs.iter().map(|&(_, _, end)| end).reduce(f64::max)
}

/// Bounded slowdown of one job: `(end − arrival) / max(end − start, bound)`,
/// floored at 1. The `bound` (conventionally 10 s) stops near-instant jobs
/// from reporting astronomical slowdowns out of scheduling noise.
pub fn bounded_slowdown(times: JobTimes, bound: f64) -> f64 {
    let (arrival, start, end) = times;
    let runtime = (end - start).max(bound);
    ((end - arrival) / runtime).max(1.0)
}

/// Bounded slowdowns of a job set, in input order.
pub fn bounded_slowdowns(jobs: &[JobTimes], bound: f64) -> Vec<f64> {
    jobs.iter().map(|&t| bounded_slowdown(t, bound)).collect()
}

/// Five-number summary (plus mean) of a job set's bounded slowdowns,
/// reusing [`DistributionSummary`]. `None` for an empty set.
pub fn slowdown_summary(jobs: &[JobTimes], bound: f64) -> Option<DistributionSummary> {
    DistributionSummary::from_values(&bounded_slowdowns(jobs, bound))
}

/// The `p`-th percentile (0–100) by linear interpolation, matching the
/// quartile rule [`DistributionSummary`] uses. `None` for an empty set.
pub fn percentile(values: &[f64], p: f64) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let rank = (p / 100.0).clamp(0.0, 1.0) * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    Some(sorted[lo] + (sorted[hi] - sorted[lo]) * frac)
}

/// Node utilization over a horizon: busy node-seconds (Σ nodes × runtime)
/// divided by `total_nodes × horizon`. Exceeds 1.0 only on inconsistent
/// inputs.
pub fn utilization(busy_node_seconds: f64, total_nodes: usize, horizon: f64) -> f64 {
    if total_nodes == 0 || horizon <= 0.0 {
        return 0.0;
    }
    busy_node_seconds / (total_nodes as f64 * horizon)
}

#[cfg(test)]
mod tests {
    use super::*;

    const JOBS: [JobTimes; 3] = [
        (0.0, 0.0, 100.0),  // ran immediately: slowdown 1
        (10.0, 50.0, 90.0), // waited 40, ran 40: slowdown 2
        (20.0, 95.0, 97.0), // short job, bounded runtime
    ];

    #[test]
    fn makespan_is_last_end() {
        assert_eq!(makespan(&JOBS), Some(100.0));
        assert_eq!(makespan(&[]), None);
    }

    #[test]
    fn slowdown_basic_cases() {
        assert_eq!(bounded_slowdown(JOBS[0], 10.0), 1.0);
        assert_eq!(bounded_slowdown(JOBS[1], 10.0), 2.0);
        // (97-20)/max(2,10) = 7.7 — the bound keeps it sane.
        assert!((bounded_slowdown(JOBS[2], 10.0) - 7.7).abs() < 1e-12);
    }

    #[test]
    fn slowdown_floored_at_one() {
        // end − arrival < bound: ratio would be < 1 without the floor.
        assert_eq!(bounded_slowdown((0.0, 0.0, 3.0), 10.0), 1.0);
    }

    #[test]
    fn summary_reuses_distribution_summary() {
        let s = slowdown_summary(&JOBS, 10.0).unwrap();
        assert_eq!(s.min, 1.0);
        assert!((s.max - 7.7).abs() < 1e-12);
        assert!(s.mean > 1.0 && s.mean < s.max);
        assert!(slowdown_summary(&[], 10.0).is_none());
    }

    #[test]
    fn percentile_interpolates() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 0.0), Some(1.0));
        assert_eq!(percentile(&v, 100.0), Some(4.0));
        assert_eq!(percentile(&v, 50.0), Some(2.5));
        assert!((percentile(&v, 95.0).unwrap() - 3.85).abs() < 1e-12);
        assert_eq!(percentile(&[], 50.0), None);
    }

    #[test]
    fn utilization_fractions() {
        // 2 nodes busy for 50 s of a 100 s horizon on a 4-node cluster.
        assert_eq!(utilization(2.0 * 50.0, 4, 100.0), 0.25);
        assert_eq!(utilization(10.0, 0, 100.0), 0.0);
        assert_eq!(utilization(10.0, 4, 0.0), 0.0);
    }
}
