//! Result aggregation and reporting for the DPS experiments.
//!
//! The experiment binaries turn raw pair outcomes into exactly the rows and
//! series the paper's figures plot. This crate holds the domain-neutral
//! pieces:
//!
//! * [`table`] — fixed-width ASCII table rendering for terminal reports.
//! * [`series`] — grouped metric series (workload × manager), speedup
//!   arithmetic, harmonic-mean summaries, and distribution summaries for the
//!   fairness box plot (Fig. 7).
//! * [`csv`] — dependency-free CSV rendering so experiment binaries can dump
//!   plot-ready data files, like the artifact's logs.
//! * [`bars`] — horizontal ASCII bar charts anchored at a baseline, the
//!   terminal rendition of the paper's grouped speedup plots.
//! * [`jobs`] — job-level batch-scheduling summaries (makespan, bounded
//!   slowdown, utilization) for the scheduler experiments.
//! * [`requests`] — request-level service summaries (SLO attainment,
//!   joules per million requests) for the traffic experiments.

#![warn(missing_docs)]

pub mod bars;
pub mod csv;
pub mod jobs;
pub mod requests;
pub mod series;
pub mod table;

pub use bars::BarChart;
pub use series::{DistributionSummary, GroupedSeries};
pub use table::Table;
