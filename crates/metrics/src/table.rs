//! Fixed-width ASCII tables for terminal experiment reports.

/// Column alignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Align {
    /// Left-aligned (names).
    Left,
    /// Right-aligned (numbers).
    Right,
}

/// A simple table builder.
///
/// ```
/// use dps_metrics::Table;
/// let mut t = Table::new(vec!["Workload".into(), "Speedup".into()]);
/// t.row(vec!["LDA".into(), "1.052".into()]);
/// let s = t.render();
/// assert!(s.contains("Workload"));
/// assert!(s.contains("LDA"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    aligns: Vec<Align>,
}

impl Table {
    /// Creates a table with headers; the first column is left-aligned and
    /// the rest right-aligned (override with [`Table::align`]).
    ///
    /// # Panics
    /// Panics if `headers` is empty (a zero-column table cannot render).
    pub fn new(headers: Vec<String>) -> Self {
        assert!(!headers.is_empty(), "a table needs at least one column");
        let aligns = headers
            .iter()
            .enumerate()
            .map(|(i, _)| if i == 0 { Align::Left } else { Align::Right })
            .collect();
        Self {
            headers,
            rows: Vec::new(),
            aligns,
        }
    }

    /// Overrides one column's alignment.
    pub fn align(&mut self, column: usize, align: Align) -> &mut Self {
        self.aligns[column] = align;
        self
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics if the cell count differs from the header count.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match headers"
        );
        self.rows.push(cells);
        self
    }

    /// Convenience: a row from a name and f64 values with fixed precision.
    pub fn row_f64(&mut self, name: &str, values: &[f64], precision: usize) -> &mut Self {
        let mut cells = Vec::with_capacity(values.len() + 1);
        cells.push(name.to_string());
        for v in values {
            cells.push(format!("{v:.precision$}"));
        }
        self.row(cells)
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders to a string with a header separator.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }

        let render_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for i in 0..cols {
                if i > 0 {
                    line.push_str("  ");
                }
                let cell = &cells[i];
                let pad = widths[i] - cell.len();
                match self.aligns[i] {
                    Align::Left => {
                        line.push_str(cell);
                        line.extend(std::iter::repeat_n(' ', pad));
                    }
                    Align::Right => {
                        line.extend(std::iter::repeat_n(' ', pad));
                        line.push_str(cell);
                    }
                }
            }
            // Trailing spaces are noise in terminals and diffs.
            line.trim_end().to_string()
        };

        let mut out = String::new();
        out.push_str(&render_row(&self.headers));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.extend(std::iter::repeat_n('-', total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["Name".into(), "Value".into()]);
        t.row(vec!["a".into(), "1.0".into()]);
        t.row(vec!["longer-name".into(), "12.5".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // Right-aligned numbers end at the same column.
        assert!(lines[2].ends_with("1.0"));
        assert!(lines[3].ends_with("12.5"));
        // Left-aligned names start at column 0.
        assert!(lines[2].starts_with('a'));
        assert!(lines[3].starts_with("longer-name"));
    }

    #[test]
    fn row_f64_formats_precision() {
        let mut t = Table::new(vec!["W".into(), "X".into(), "Y".into()]);
        t.row_f64("k", &[1.23456, 2.0], 3);
        let s = t.render();
        assert!(s.contains("1.235"), "{s}");
        assert!(s.contains("2.000"));
    }

    #[test]
    fn header_separator_spans_width() {
        let mut t = Table::new(vec!["AB".into(), "CD".into()]);
        t.row(vec!["x".into(), "y".into()]);
        let s = t.render();
        let sep = s.lines().nth(1).unwrap();
        assert!(sep.chars().all(|c| c == '-'));
        assert_eq!(sep.len(), s.lines().next().unwrap().len());
    }

    #[test]
    fn empty_table_headers_only() {
        let t = Table::new(vec!["H".into()]);
        assert!(t.is_empty());
        assert_eq!(t.render().lines().count(), 2);
    }

    #[test]
    #[should_panic(expected = "row width must match headers")]
    fn mismatched_row_panics() {
        let mut t = Table::new(vec!["A".into(), "B".into()]);
        t.row(vec!["only-one".into()]);
    }
}
