//! Request-level service summaries for the traffic experiments.
//!
//! The `dps-traffic` driver counts requests in `f64` batches (a window can
//! carry thousands of arrivals), so these helpers take fractional counts
//! and guard the zero-request edge with `Option` instead of dividing by
//! zero: a window that served nothing has *no* attainment or efficiency,
//! which is different from attaining 0 %.

/// Energy efficiency as joules per million served requests.
///
/// Returns `None` when nothing was served — an idle window has no defined
/// efficiency. Negative inputs are treated as empty.
pub fn joules_per_million_requests(joules: f64, requests: f64) -> Option<f64> {
    if requests > 0.0 && joules.is_finite() {
        Some(joules / (requests / 1e6))
    } else {
        None
    }
}

/// Fraction of served requests that met their SLO, clamped to `[0, 1]`.
///
/// Returns `None` when nothing was served. A window where every request
/// violated yields `Some(0.0)`.
pub fn slo_attainment(slo_ok: f64, requests: f64) -> Option<f64> {
    if requests > 0.0 {
        Some((slo_ok.max(0.0) / requests).clamp(0.0, 1.0))
    } else {
        None
    }
}

/// Renders an optional attainment ratio for a report column.
///
/// The empty-histogram edge: a run that completed zero requests has *no*
/// attainment, and the report must say `n/a` — formatting a `NaN` (or a
/// fake `1.0`) would read as a perfect score. Non-finite values are also
/// folded to `n/a` so a corrupted summary can never print `NaN`.
pub fn format_attainment(attainment: Option<f64>) -> String {
    match attainment {
        Some(a) if a.is_finite() => format!("{a:.4}"),
        _ => "n/a".to_string(),
    }
}

/// Mean power in watts over a run of `seconds` that consumed `joules`.
///
/// Returns `None` for a zero-length run.
pub fn mean_power_w(joules: f64, seconds: f64) -> Option<f64> {
    if seconds > 0.0 && joules.is_finite() {
        Some(joules / seconds)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn joules_per_million_scales() {
        // 1 kJ over 1000 requests = 1 MJ per million.
        let jpm = joules_per_million_requests(1_000.0, 1_000.0).unwrap();
        assert!((jpm - 1e6).abs() < 1e-6);
        // Double the requests for the same energy: half the per-request cost.
        let jpm2 = joules_per_million_requests(1_000.0, 2_000.0).unwrap();
        assert!((jpm2 - 5e5).abs() < 1e-6);
    }

    #[test]
    fn zero_requests_have_no_summary() {
        assert_eq!(joules_per_million_requests(500.0, 0.0), None);
        assert_eq!(joules_per_million_requests(500.0, -3.0), None);
        assert_eq!(slo_attainment(0.0, 0.0), None);
        assert_eq!(slo_attainment(10.0, 0.0), None);
    }

    #[test]
    fn all_violating_window_attains_zero_not_none() {
        // Every request missed its deadline: attainment is a hard 0, which
        // must stay distinguishable from "nothing served".
        assert_eq!(slo_attainment(0.0, 5_000.0), Some(0.0));
    }

    #[test]
    fn attainment_clamped_against_rounding_slop() {
        // Fractional batch accounting can leave slo_ok a hair above served.
        let a = slo_attainment(1_000.000001, 1_000.0).unwrap();
        assert_eq!(a, 1.0);
        assert_eq!(slo_attainment(-2.0, 100.0), Some(0.0));
    }

    #[test]
    fn empty_histogram_formats_as_not_applicable() {
        // Zero completed requests: the whole chain must land on "n/a",
        // never "NaN" or a phantom perfect score.
        let empty = slo_attainment(0.0, 0.0);
        assert_eq!(empty, None);
        assert_eq!(format_attainment(empty), "n/a");
        assert_eq!(format_attainment(Some(f64::NAN)), "n/a");
        assert_eq!(format_attainment(Some(0.9973)), "0.9973");
    }

    #[test]
    fn partial_attainment() {
        let a = slo_attainment(750.0, 1_000.0).unwrap();
        assert!((a - 0.75).abs() < 1e-12);
    }

    #[test]
    fn mean_power_over_run() {
        assert_eq!(mean_power_w(3_600.0, 60.0), Some(60.0));
        assert_eq!(mean_power_w(100.0, 0.0), None);
        assert_eq!(mean_power_w(f64::NAN, 10.0), None);
    }
}
