//! Grouped metric series and distribution summaries.
//!
//! The figures aggregate pair outcomes two ways: **grouped bar series**
//! (per-workload harmonic-mean speedup per manager — Figs. 4–6) and
//! **distribution summaries** (the fairness box plot — Fig. 7). Both are
//! plain data transformations, independent of where the numbers came from.

use dps_sim_core::stats;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A set of named groups (e.g. workloads), each holding one value list per
/// named series (e.g. manager).
///
/// ```
/// use dps_metrics::GroupedSeries;
/// let mut g = GroupedSeries::new();
/// g.push("LDA", "DPS", 1.05);
/// g.push("LDA", "DPS", 1.07);
/// g.push("LDA", "SLURM", 0.91);
/// assert!((g.hmean("LDA", "DPS").unwrap() - 1.0599).abs() < 1e-3);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct GroupedSeries {
    // BTreeMap keeps report ordering deterministic.
    data: BTreeMap<String, BTreeMap<String, Vec<f64>>>,
    /// Insertion order of groups (report rows follow first-seen order).
    group_order: Vec<String>,
}

impl GroupedSeries {
    /// Creates an empty collection.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one observation.
    pub fn push(&mut self, group: &str, series: &str, value: f64) {
        if !self.data.contains_key(group) {
            self.group_order.push(group.to_string());
        }
        self.data
            .entry(group.to_string())
            .or_default()
            .entry(series.to_string())
            .or_default()
            .push(value);
    }

    /// Group names in first-insertion order.
    pub fn groups(&self) -> &[String] {
        &self.group_order
    }

    /// Raw values for a (group, series) cell.
    pub fn values(&self, group: &str, series: &str) -> Option<&[f64]> {
        self.data.get(group)?.get(series).map(|v| v.as_slice())
    }

    /// Harmonic mean of a cell.
    pub fn hmean(&self, group: &str, series: &str) -> Option<f64> {
        stats::harmonic_mean(self.values(group, series)?)
    }

    /// Arithmetic mean of a cell.
    pub fn mean(&self, group: &str, series: &str) -> Option<f64> {
        stats::mean(self.values(group, series)?)
    }

    /// Maximum of a cell.
    pub fn max(&self, group: &str, series: &str) -> Option<f64> {
        stats::max(self.values(group, series)?)
    }

    /// Minimum of a cell.
    pub fn min(&self, group: &str, series: &str) -> Option<f64> {
        stats::min(self.values(group, series)?)
    }

    /// Mean across all groups of the per-group harmonic means for one
    /// series (the paper's "mean X %" summaries).
    pub fn mean_of_group_hmeans(&self, series: &str) -> Option<f64> {
        let per_group: Vec<f64> = self
            .group_order
            .iter()
            .filter_map(|g| self.hmean(g, series))
            .collect();
        stats::mean(&per_group)
    }

    /// All values of one series pooled across groups.
    pub fn pooled(&self, series: &str) -> Vec<f64> {
        let mut out = Vec::new();
        for g in &self.group_order {
            if let Some(v) = self.values(g, series) {
                out.extend_from_slice(v);
            }
        }
        out
    }
}

/// Five-number summary (plus mean) for distribution plots like Fig. 7.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DistributionSummary {
    /// Smallest observation.
    pub min: f64,
    /// 25th percentile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// 75th percentile.
    pub q3: f64,
    /// Largest observation.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
}

impl DistributionSummary {
    /// Summarises a sample; `None` when empty.
    pub fn from_values(values: &[f64]) -> Option<Self> {
        Some(Self {
            min: stats::min(values)?,
            q1: stats::percentile(values, 25.0)?,
            median: stats::median(values)?,
            q3: stats::percentile(values, 75.0)?,
            max: stats::max(values)?,
            mean: stats::mean(values)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_query() {
        let mut g = GroupedSeries::new();
        g.push("Kmeans", "DPS", 1.02);
        g.push("Kmeans", "SLURM", 0.89);
        g.push("LDA", "DPS", 1.05);
        assert_eq!(g.groups(), &["Kmeans".to_string(), "LDA".to_string()]);
        assert_eq!(g.values("Kmeans", "DPS"), Some(&[1.02][..]));
        assert_eq!(g.values("Kmeans", "Oracle"), None);
        assert_eq!(g.values("GMM", "DPS"), None);
    }

    #[test]
    fn group_order_is_insertion_order() {
        let mut g = GroupedSeries::new();
        g.push("Zeta", "M", 1.0);
        g.push("Alpha", "M", 1.0);
        g.push("Zeta", "M", 2.0); // does not re-register
        assert_eq!(g.groups(), &["Zeta".to_string(), "Alpha".to_string()]);
    }

    #[test]
    fn hmean_matches_stats() {
        let mut g = GroupedSeries::new();
        g.push("w", "m", 1.0);
        g.push("w", "m", 2.0);
        g.push("w", "m", 4.0);
        assert!((g.hmean("w", "m").unwrap() - 12.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn mean_of_group_hmeans() {
        let mut g = GroupedSeries::new();
        g.push("a", "m", 1.0);
        g.push("b", "m", 2.0);
        // hmean of single value is the value; mean of {1, 2} = 1.5.
        assert!((g.mean_of_group_hmeans("m").unwrap() - 1.5).abs() < 1e-12);
        assert_eq!(g.mean_of_group_hmeans("missing"), None);
    }

    #[test]
    fn pooled_collects_across_groups() {
        let mut g = GroupedSeries::new();
        g.push("a", "m", 1.0);
        g.push("b", "m", 2.0);
        g.push("b", "other", 99.0);
        assert_eq!(g.pooled("m"), vec![1.0, 2.0]);
    }

    #[test]
    fn distribution_summary_quartiles() {
        let values = [1.0, 2.0, 3.0, 4.0, 5.0];
        let d = DistributionSummary::from_values(&values).unwrap();
        assert_eq!(d.min, 1.0);
        assert_eq!(d.median, 3.0);
        assert_eq!(d.max, 5.0);
        assert_eq!(d.mean, 3.0);
        assert_eq!(d.q1, 2.0);
        assert_eq!(d.q3, 4.0);
    }

    #[test]
    fn distribution_summary_empty_none() {
        assert_eq!(DistributionSummary::from_values(&[]), None);
    }
}
