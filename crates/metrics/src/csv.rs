//! Minimal CSV writing for experiment artifacts.
//!
//! The paper's artifact ships plotting scripts fed by CSV logs; this module
//! lets the experiment binaries dump the same data shapes (grouped series,
//! per-cycle traces) without external dependencies. Only the small CSV
//! subset we emit is implemented: comma separation, RFC-4180 quoting of
//! fields containing commas/quotes/newlines.

use crate::series::GroupedSeries;
use std::fmt::Write as _;

/// Quotes a field per RFC 4180 when needed.
fn quote(field: &str) -> String {
    if field.contains(',') || field.contains('"') || field.contains('\n') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// Renders rows of string fields as CSV.
pub fn render<R, F>(header: &[&str], rows: R) -> String
where
    R: IntoIterator<Item = F>,
    F: IntoIterator<Item = String>,
{
    let mut out = String::new();
    let header_line: Vec<String> = header.iter().map(|h| quote(h)).collect();
    out.push_str(&header_line.join(","));
    out.push('\n');
    for row in rows {
        let cells: Vec<String> = row.into_iter().map(|c| quote(&c)).collect();
        out.push_str(&cells.join(","));
        out.push('\n');
    }
    out
}

/// Renders a [`GroupedSeries`] long-form: one row per observation
/// (`group,series,value`).
pub fn grouped_series_long(g: &GroupedSeries, series_names: &[&str]) -> String {
    let mut out = String::new();
    out.push_str("group,series,value\n");
    for group in g.groups() {
        for &series in series_names {
            if let Some(values) = g.values(group, series) {
                for v in values {
                    let _ = writeln!(out, "{},{},{v}", quote(group), quote(series));
                }
            }
        }
    }
    out
}

/// Renders a uniformly-sampled trace (`time,value` pairs).
pub fn trace(times: &[f64], values: &[f64]) -> String {
    debug_assert_eq!(times.len(), values.len());
    let mut out = String::from("time,value\n");
    for (t, v) in times.iter().zip(values) {
        let _ = writeln!(out, "{t},{v}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_plain_rows() {
        let csv = render(&["a", "b"], vec![vec!["1".to_string(), "2".to_string()]]);
        assert_eq!(csv, "a,b\n1,2\n");
    }

    #[test]
    fn quotes_commas_and_quotes() {
        let csv = render(
            &["name"],
            vec![vec!["x,y".to_string()], vec!["say \"hi\"".to_string()]],
        );
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    fn grouped_series_long_form() {
        let mut g = GroupedSeries::new();
        g.push("LDA", "DPS", 1.05);
        g.push("LDA", "SLURM", 0.97);
        g.push("LR", "DPS", 1.02);
        let csv = grouped_series_long(&g, &["SLURM", "DPS"]);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "group,series,value");
        assert_eq!(lines.len(), 4);
        assert!(lines.contains(&"LDA,DPS,1.05"));
        assert!(lines.contains(&"LR,DPS,1.02"));
    }

    #[test]
    fn trace_format() {
        let csv = trace(&[0.0, 1.0], &[110.0, 109.5]);
        assert_eq!(csv, "time,value\n0,110\n1,109.5\n");
    }
}
