//! Horizontal ASCII bar charts — the figures' bar plots, in a terminal.
//!
//! The paper's Figs. 4–6 are grouped bar charts of speedups around 1.0;
//! [`BarChart`] renders that shape: one row per (group, series) with a bar
//! anchored at a baseline value, growing right for gains and left for
//! losses.

/// A grouped horizontal bar chart anchored at a baseline.
#[derive(Debug, Clone)]
pub struct BarChart {
    baseline: f64,
    width: usize,
    rows: Vec<(String, String, f64)>,
}

impl BarChart {
    /// Creates a chart anchored at `baseline` (bars show the deviation from
    /// it) with the given half-width in characters per side.
    pub fn new(baseline: f64, width: usize) -> Self {
        assert!(width >= 4, "width must be at least 4");
        Self {
            baseline,
            width,
            rows: Vec::new(),
        }
    }

    /// Adds one bar.
    pub fn bar(&mut self, group: &str, series: &str, value: f64) -> &mut Self {
        self.rows
            .push((group.to_string(), series.to_string(), value));
        self
    }

    /// Renders the chart. The scale adapts to the largest deviation.
    pub fn render(&self) -> String {
        if self.rows.is_empty() {
            return String::new();
        }
        let max_dev = self
            .rows
            .iter()
            .map(|(_, _, v)| (v - self.baseline).abs())
            .fold(0.0, f64::max)
            .max(1e-9);
        let label_w = self
            .rows
            .iter()
            .map(|(g, s, _)| g.len() + s.len() + 1)
            .max()
            .unwrap_or(8);

        let mut out = String::new();
        for (group, series, value) in &self.rows {
            let dev = value - self.baseline;
            let cells = ((dev.abs() / max_dev) * self.width as f64).round() as usize;
            let (left, right) = if dev < 0.0 {
                (
                    format!("{:>w$}", "▇".repeat(cells), w = self.width),
                    " ".repeat(self.width),
                )
            } else {
                (
                    " ".repeat(self.width),
                    format!("{:<w$}", "▇".repeat(cells), w = self.width),
                )
            };
            let label = format!("{group} {series}");
            out.push_str(&format!("{label:<label_w$} {left}|{right} {value:.3}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_gains_right_losses_left() {
        let mut c = BarChart::new(1.0, 10);
        c.bar("LDA", "DPS", 1.10);
        c.bar("LDA", "SLURM", 0.90);
        let s = c.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 2);
        let (gain, loss) = (lines[0], lines[1]);
        // The gain bar sits after the axis, the loss bar before it. Compare
        // char positions (the bar glyph is multi-byte).
        let axis_pos = |l: &str| l.chars().position(|c| c == '|').unwrap();
        assert_eq!(axis_pos(gain), axis_pos(loss), "axes align");
        let split = |l: &str| -> (String, String) {
            let p = axis_pos(l);
            (l.chars().take(p).collect(), l.chars().skip(p).collect())
        };
        let (g_left, g_right) = split(gain);
        let (l_left, _) = split(loss);
        assert!(g_right.contains('▇'));
        assert!(!g_left.contains('▇'));
        assert!(l_left.contains('▇'));
    }

    #[test]
    fn scale_adapts_to_largest_deviation() {
        let mut c = BarChart::new(1.0, 10);
        c.bar("a", "x", 1.05);
        c.bar("b", "x", 1.50); // 10 cells
        let s = c.render();
        let lines: Vec<&str> = s.lines().collect();
        let count = |l: &str| l.matches('▇').count();
        assert_eq!(count(lines[1]), 10);
        assert_eq!(count(lines[0]), 1); // 0.05/0.50 × 10 = 1
    }

    #[test]
    fn value_printed_per_row() {
        let mut c = BarChart::new(1.0, 6);
        c.bar("g", "s", 1.234);
        assert!(c.render().contains("1.234"));
    }

    #[test]
    fn empty_chart_renders_empty() {
        assert_eq!(BarChart::new(1.0, 8).render(), "");
    }

    #[test]
    fn exact_baseline_has_no_bar() {
        let mut c = BarChart::new(1.0, 8);
        c.bar("g", "s", 1.0);
        c.bar("h", "s", 1.2);
        let s = c.render();
        assert_eq!(s.lines().next().unwrap().matches('▇').count(), 0);
    }

    #[test]
    #[should_panic(expected = "width must be at least 4")]
    fn tiny_width_rejected() {
        BarChart::new(1.0, 2);
    }
}
