//! The per-cycle traffic engine: arrivals in, provisioning and serving out.
//!
//! [`TrafficDriver`] owns everything request-shaped so the cluster
//! simulator only has to translate between nodes and sockets:
//!
//! * **begin of cycle** — the provisioner (re)sizes the powered fleet from
//!   last window's utilization (or the true rate, for the oracle), then the
//!   generator contributes this window's arrival cohort to the backlog.
//! * **during the cycle** — the simulator scales each powered socket's
//!   `dps-workloads` demand program by [`TrafficDriver::busy_fraction`],
//!   runs the DPS decision cycle, and measures how fast each socket
//!   actually ran under its granted power.
//! * **end of cycle** — the driver serves `capacity × Σ socket speeds`
//!   requests from the backlog in FIFO cohort order, charging each cohort
//!   the queueing latency it actually waited, folding SLO attainment and
//!   energy into [`RequestStats`], and reporting request milestones.
//!
//! Latency accounting is cohort-exact: a batch that arrived at `t` and
//! drains at the end of window `[w, w+dt)` is charged `w + dt − t`, so a
//! backlog that survives a flash crowd shows up as real queueing delay.

use std::collections::VecDeque;

use dps_sim_core::{Joules, RngStream, Seconds};
use dps_workloads::WorkloadSpec;
use serde::{Deserialize, Serialize};

use crate::generator::{RequestGenerator, TrafficPattern};
use crate::provisioner::{oracle_nodes, ProvisionerMode, ReactiveProvisioner};

/// Upper bounds of the fixed latency buckets (seconds). Fixed bounds keep
/// summaries comparable across runs, like `dps-obs` histograms.
const LATENCY_BOUNDS: [f64; 10] = [0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 60.0, 120.0, 300.0, 600.0];

/// Everything the traffic layer needs to drive a cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrafficConfig {
    /// Offered-load shape.
    pub pattern: TrafficPattern,
    /// Requests/s one socket serves at full service speed.
    pub capacity_rps: f64,
    /// Power a *powered* serving socket demands even with an empty queue
    /// (W): the service's resident footprint — OS, runtime, caches kept
    /// warm. Servers are not energy-proportional, and this floor is what
    /// makes powering whole nodes off save real energy over letting them
    /// sit at low load.
    pub service_floor: f64,
    /// Latency bound a request must meet to count toward SLO attainment
    /// (seconds, queueing included).
    pub slo_latency: Seconds,
    /// The demand-program source for serving sockets: request pressure
    /// scales this workload's power curve.
    pub service: WorkloadSpec,
    /// How the powered fleet is sized.
    pub provisioner: ProvisionerMode,
    /// Emit a request milestone every this many served requests.
    pub milestone_every: u64,
}

/// The calibrated service workload: a phase-rich Spark-like profile that
/// spends a healthy fraction of its time above the 110 W knee, so request
/// pressure actually exercises DPS's cap redistribution.
fn default_service_spec() -> WorkloadSpec {
    WorkloadSpec {
        name: "request-serve",
        suite: dps_workloads::Suite::Spark,
        data_size_gb: 4.0,
        duration_110w: 90.0,
        class: dps_workloads::PowerClass::Mid,
        frac_above_110: 0.35,
    }
}

impl TrafficConfig {
    /// A diurnal service at rates representative of a hundred-million-
    /// request day, sized for `total_sockets` sockets at `capacity_rps`
    /// each so the peak needs most of the fleet.
    pub fn default_diurnal(total_sockets: usize, capacity_rps: f64) -> Self {
        let full = total_sockets as f64 * capacity_rps;
        TrafficConfig {
            pattern: TrafficPattern::Diurnal {
                base_rps: 0.25 * full,
                peak_rps: 0.85 * full,
                period: 7_200.0,
                phase: 0.0,
            },
            capacity_rps,
            // A third of the paper's 165 W TDP: representative of a warm
            // but idle Cascade Lake socket hosting a resident service.
            service_floor: 55.0,
            slo_latency: 5.0,
            service: default_service_spec(),
            provisioner: ProvisionerMode::Reactive(
                crate::provisioner::ProvisionerConfig::default_reactive(),
            ),
            milestone_every: 100_000,
        }
    }

    /// Validates the whole configuration.
    pub fn validate(&self) -> Result<(), String> {
        self.pattern.validate()?;
        self.provisioner.validate()?;
        if self.capacity_rps <= 0.0 || !self.capacity_rps.is_finite() {
            return Err(format!(
                "capacity_rps must be finite and > 0, got {}",
                self.capacity_rps
            ));
        }
        if self.service_floor < 0.0 || !self.service_floor.is_finite() {
            return Err(format!(
                "service_floor must be finite and >= 0, got {}",
                self.service_floor
            ));
        }
        if self.slo_latency <= 0.0 || !self.slo_latency.is_finite() {
            return Err(format!(
                "slo_latency must be finite and > 0, got {}",
                self.slo_latency
            ));
        }
        if self.milestone_every == 0 {
            return Err("milestone_every must be >= 1".to_string());
        }
        Ok(())
    }
}

/// One fleet-size change the provisioner made at a cycle boundary.
#[derive(Debug, Clone, PartialEq)]
pub struct ProvisionChange {
    /// `true` = nodes powered on, `false` = powered off.
    pub power_on: bool,
    /// The node indices that flipped.
    pub nodes: Vec<usize>,
    /// Powered node count after the change.
    pub active_after: usize,
    /// The utilization (or oracle load estimate) that triggered it.
    pub utilization: f64,
}

/// Cumulative request totals at a milestone crossing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MilestoneRecord {
    /// Requests served since the run began (rounded down).
    pub served: u64,
    /// Served requests that met the SLO (rounded down).
    pub slo_ok: u64,
    /// Requests still queued (rounded down).
    pub backlog: u64,
}

/// What `begin_cycle` decided.
#[derive(Debug, Clone, PartialEq)]
pub struct BeginCycle {
    /// Requests that arrived this window.
    pub arrivals: f64,
    /// Fleet-size changes applied at the window boundary.
    pub changes: Vec<ProvisionChange>,
}

/// What `end_cycle` observed.
#[derive(Debug, Clone, PartialEq)]
pub struct EndCycle {
    /// Requests drained from the backlog this window.
    pub served: f64,
    /// A milestone, if the served total crossed one.
    pub milestone: Option<MilestoneRecord>,
}

/// Request-level bookkeeping for a whole run.
#[derive(Debug, Clone)]
pub struct RequestStats {
    /// Requests offered by the generator.
    pub arrived: f64,
    /// Requests served.
    pub served: f64,
    /// Served requests that met the SLO.
    pub slo_ok: f64,
    /// Energy consumed by powered sockets (J).
    pub joules: Joules,
    latency_sum: f64,
    latency_max: f64,
    /// Served-weight per latency bucket; last slot is overflow.
    latency_buckets: [f64; LATENCY_BOUNDS.len() + 1],
}

impl RequestStats {
    fn new() -> Self {
        RequestStats {
            arrived: 0.0,
            served: 0.0,
            slo_ok: 0.0,
            joules: 0.0,
            latency_sum: 0.0,
            latency_max: 0.0,
            latency_buckets: [0.0; LATENCY_BOUNDS.len() + 1],
        }
    }

    fn record_served(&mut self, count: f64, latency: Seconds, slo: Seconds) {
        if count <= 0.0 {
            return;
        }
        self.served += count;
        if latency <= slo {
            self.slo_ok += count;
        }
        self.latency_sum += count * latency;
        self.latency_max = self.latency_max.max(latency);
        let idx = LATENCY_BOUNDS
            .iter()
            .position(|&b| latency <= b)
            .unwrap_or(LATENCY_BOUNDS.len());
        self.latency_buckets[idx] += count;
    }

    /// Mean request latency in seconds (`None` before anything served).
    pub fn mean_latency(&self) -> Option<Seconds> {
        (self.served > 0.0).then(|| self.latency_sum / self.served)
    }

    /// The worst latency any served cohort experienced.
    pub fn max_latency(&self) -> Seconds {
        self.latency_max
    }

    /// An upper-bound estimate of the `p`-quantile latency (`0 < p <= 1`)
    /// from the fixed buckets; the overflow bucket reports the max.
    pub fn latency_percentile(&self, p: f64) -> Option<Seconds> {
        if self.served <= 0.0 {
            return None;
        }
        let target = p.clamp(0.0, 1.0) * self.served;
        let mut acc = 0.0;
        for (i, w) in self.latency_buckets.iter().enumerate() {
            acc += w;
            if acc + 1e-9 >= target {
                let bound = if i < LATENCY_BOUNDS.len() {
                    LATENCY_BOUNDS[i]
                } else {
                    self.latency_max
                };
                // The bucket bound is an upper estimate; the true quantile
                // can never exceed the worst observed latency.
                return Some(bound.min(self.latency_max));
            }
        }
        Some(self.latency_max)
    }

    /// SLO attainment in `[0, 1]` via [`dps_metrics::requests`].
    pub fn slo_attainment(&self) -> Option<f64> {
        dps_metrics::requests::slo_attainment(self.slo_ok, self.served)
    }

    /// Energy efficiency via [`dps_metrics::requests`].
    pub fn joules_per_million(&self) -> Option<f64> {
        dps_metrics::requests::joules_per_million_requests(self.joules, self.served)
    }
}

/// One batch of requests that arrived together.
#[derive(Debug, Clone, Copy)]
struct Cohort {
    arrived: Seconds,
    count: f64,
}

/// The request-driven cluster engine (see module docs for the cycle shape).
#[derive(Debug, Clone)]
pub struct TrafficDriver {
    cfg: TrafficConfig,
    generator: RequestGenerator,
    reactive: Option<ReactiveProvisioner>,
    total_nodes: usize,
    sockets_per_node: usize,
    powered: Vec<bool>,
    cohorts: VecDeque<Cohort>,
    backlog: f64,
    last_utilization: f64,
    stats: RequestStats,
    next_milestone: u64,
}

impl TrafficDriver {
    /// Creates the driver for a fleet of `total_nodes` nodes with
    /// `sockets_per_node` sockets each. The static policy powers the whole
    /// fleet; elastic policies start at their configured minimum.
    ///
    /// # Panics
    /// Panics if the config fails [`TrafficConfig::validate`].
    pub fn new(
        cfg: TrafficConfig,
        total_nodes: usize,
        sockets_per_node: usize,
        rng: RngStream,
    ) -> Self {
        cfg.validate().expect("invalid traffic config");
        assert!(total_nodes > 0 && sockets_per_node > 0);
        let (initial, reactive) = match cfg.provisioner {
            ProvisionerMode::Static => (total_nodes, None),
            ProvisionerMode::Reactive(pcfg) => (
                (pcfg.min_nodes + pcfg.headroom_nodes).min(total_nodes),
                Some(ReactiveProvisioner::new(pcfg)),
            ),
            ProvisionerMode::Oracle(ocfg) => (ocfg.min_nodes.min(total_nodes), None),
        };
        let powered = (0..total_nodes).map(|n| n < initial).collect();
        let next_milestone = cfg.milestone_every;
        let generator = RequestGenerator::new(cfg.pattern.clone(), rng.child("arrivals"));
        TrafficDriver {
            cfg,
            generator,
            reactive,
            total_nodes,
            sockets_per_node,
            powered,
            cohorts: VecDeque::new(),
            backlog: 0.0,
            last_utilization: 0.0,
            stats: RequestStats::new(),
            next_milestone,
        }
    }

    /// The driver's configuration.
    pub fn config(&self) -> &TrafficConfig {
        &self.cfg
    }

    /// Per-node powered mask.
    pub fn powered(&self) -> &[bool] {
        &self.powered
    }

    /// Currently powered node count.
    pub fn active_nodes(&self) -> usize {
        self.powered.iter().filter(|&&p| p).count()
    }

    /// Currently powered socket count.
    pub fn active_sockets(&self) -> usize {
        self.active_nodes() * self.sockets_per_node
    }

    /// Requests queued right now.
    pub fn backlog(&self) -> f64 {
        self.backlog
    }

    /// Utilization observed over the last completed window.
    pub fn last_utilization(&self) -> f64 {
        self.last_utilization
    }

    /// Cumulative request bookkeeping.
    pub fn stats(&self) -> &RequestStats {
        &self.stats
    }

    /// Runs the window-boundary work for `[now, now + dt)`: provisioning
    /// first (from last window's evidence), then this window's arrivals.
    pub fn begin_cycle(&mut self, now: Seconds, dt: Seconds) -> BeginCycle {
        let changes = self.provision(now);
        let arrivals = self.generator.arrivals(now, dt, self.backlog);
        if arrivals > 0.0 {
            self.cohorts.push_back(Cohort {
                arrived: now,
                count: arrivals,
            });
            self.backlog += arrivals;
            self.stats.arrived += arrivals;
        }
        BeginCycle { arrivals, changes }
    }

    fn provision(&mut self, now: Seconds) -> Vec<ProvisionChange> {
        let active = self.active_nodes();
        let (desired, trigger) = match self.cfg.provisioner {
            ProvisionerMode::Static => return Vec::new(),
            ProvisionerMode::Reactive(_) => {
                let util = self.last_utilization;
                let p = self.reactive.as_mut().expect("reactive state");
                (p.desired_nodes(now, util, active, self.total_nodes), util)
            }
            ProvisionerMode::Oracle(ocfg) => {
                let rate = self.cfg.pattern.rate_at(now);
                let node_cap = self.cfg.capacity_rps * self.sockets_per_node as f64;
                let est = rate / (node_cap * active.max(1) as f64);
                (oracle_nodes(&ocfg, rate, node_cap, self.total_nodes), est)
            }
        };
        if desired == active {
            return Vec::new();
        }
        let mut flipped = Vec::new();
        if desired > active {
            // Power on the lowest-index dark nodes.
            for n in 0..self.total_nodes {
                if flipped.len() == desired - active {
                    break;
                }
                if !self.powered[n] {
                    self.powered[n] = true;
                    flipped.push(n);
                }
            }
        } else {
            // Power off the highest-index lit nodes (node 0 stays warm).
            for n in (0..self.total_nodes).rev() {
                if flipped.len() == active - desired {
                    break;
                }
                if self.powered[n] {
                    self.powered[n] = false;
                    flipped.push(n);
                }
            }
        }
        vec![ProvisionChange {
            power_on: desired > active,
            nodes: flipped,
            active_after: desired,
            utilization: trigger,
        }]
    }

    /// Fraction of each powered socket's service capacity the current
    /// backlog can fill this window, in `[0, 1]`. Scales the socket demand
    /// programs: an idle fleet draws idle power.
    pub fn busy_fraction(&self, dt: Seconds) -> f64 {
        let cap = self.active_sockets() as f64 * self.cfg.capacity_rps * dt;
        if cap <= 0.0 {
            return 0.0;
        }
        (self.backlog / cap).min(1.0)
    }

    /// Serves requests for the window `[now, now + dt)`. `speed_sum` is the
    /// sum over powered sockets of the power→progress rate each actually
    /// achieved (`0..=1` per socket); `joules` is the energy the powered
    /// sockets consumed this window.
    pub fn end_cycle(
        &mut self,
        now: Seconds,
        dt: Seconds,
        speed_sum: f64,
        joules: Joules,
    ) -> EndCycle {
        let offered = self.backlog;
        let servable = self.cfg.capacity_rps * dt * speed_sum.max(0.0);
        let mut remaining = servable.min(self.backlog);
        let served = remaining;
        let done_at = now + dt;
        while remaining > 0.0 {
            let Some(front) = self.cohorts.front_mut() else {
                break;
            };
            let take = front.count.min(remaining);
            let latency = done_at - front.arrived;
            self.stats
                .record_served(take, latency, self.cfg.slo_latency);
            front.count -= take;
            remaining -= take;
            if front.count <= 1e-9 {
                self.cohorts.pop_front();
            }
        }
        self.backlog = (self.backlog - served).max(0.0);
        self.stats.joules += joules;

        let cap = self.active_sockets() as f64 * self.cfg.capacity_rps * dt;
        self.last_utilization = if cap > 0.0 { offered / cap } else { 0.0 };

        let milestone = if self.stats.served as u64 >= self.next_milestone {
            let rec = MilestoneRecord {
                served: self.stats.served as u64,
                slo_ok: self.stats.slo_ok as u64,
                backlog: self.backlog as u64,
            };
            self.next_milestone = (self.stats.served as u64 / self.cfg.milestone_every + 1)
                * self.cfg.milestone_every;
            Some(rec)
        } else {
            None
        };
        EndCycle { served, milestone }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::provisioner::{OracleConfig, ProvisionerConfig};

    fn steady(rps: f64) -> TrafficPattern {
        TrafficPattern::Diurnal {
            base_rps: rps,
            peak_rps: rps,
            period: 3_600.0,
            phase: 0.0,
        }
    }

    fn cfg(pattern: TrafficPattern, provisioner: ProvisionerMode) -> TrafficConfig {
        TrafficConfig {
            pattern,
            capacity_rps: 100.0,
            service_floor: 55.0,
            slo_latency: 5.0,
            service: default_service_spec(),
            provisioner,
            milestone_every: 1_000,
        }
    }

    fn rng(seed: u64) -> RngStream {
        RngStream::new(seed, "driver-test")
    }

    /// Runs `cycles` windows at full speed and returns the driver.
    fn run(mut d: TrafficDriver, cycles: usize, dt: f64) -> TrafficDriver {
        for c in 0..cycles {
            let now = c as f64 * dt;
            d.begin_cycle(now, dt);
            let speed_sum = d.active_sockets() as f64;
            d.end_cycle(now, dt, speed_sum, 100.0 * d.active_sockets() as f64 * dt);
        }
        d
    }

    #[test]
    fn conservation_served_plus_backlog_is_arrived() {
        let d = TrafficDriver::new(cfg(steady(500.0), ProvisionerMode::Static), 4, 2, rng(1));
        let d = run(d, 200, 1.0);
        let s = d.stats();
        assert!(s.arrived > 0.0);
        assert!(
            (s.arrived - s.served - d.backlog()).abs() < 1e-6,
            "arrived {} served {} backlog {}",
            s.arrived,
            s.served,
            d.backlog()
        );
    }

    #[test]
    fn underloaded_static_fleet_meets_slo() {
        // 500 rps offered, 8 sockets × 100 rps capacity: everything drains
        // within its own window.
        let d = TrafficDriver::new(cfg(steady(500.0), ProvisionerMode::Static), 4, 2, rng(2));
        let d = run(d, 300, 1.0);
        assert_eq!(d.stats().slo_attainment(), Some(1.0));
        assert!(d.stats().mean_latency().unwrap() <= 1.0 + 1e-9);
    }

    #[test]
    fn overload_builds_queue_and_latency() {
        // 1500 rps into 800 rps of capacity: backlog and latency must grow.
        let d = TrafficDriver::new(cfg(steady(1_500.0), ProvisionerMode::Static), 4, 2, rng(3));
        let d = run(d, 120, 1.0);
        assert!(d.backlog() > 10_000.0, "backlog {}", d.backlog());
        assert!(d.stats().max_latency() > 10.0);
        let att = d.stats().slo_attainment().unwrap();
        assert!(att < 0.5, "attainment {att}");
    }

    #[test]
    fn reactive_fleet_grows_under_load_and_shrinks_after() {
        let pattern = TrafficPattern::FlashCrowd {
            base_rps: 100.0,
            peak_rps: 1_400.0,
            start: 30.0,
            ramp: 10.0,
            hold: 60.0,
            decay: 10.0,
        };
        let mode = ProvisionerMode::Reactive(ProvisionerConfig {
            target_utilization: 0.7,
            headroom_nodes: 0,
            power_off_after: 20.0,
            min_nodes: 1,
        });
        let mut d = TrafficDriver::new(cfg(pattern, mode), 8, 2, rng(4));
        let mut peak_active = 0;
        let mut saw_off = false;
        for c in 0..400 {
            let now = c as f64;
            let begin = d.begin_cycle(now, 1.0);
            saw_off |= begin.changes.iter().any(|ch| !ch.power_on);
            peak_active = peak_active.max(d.active_nodes());
            let speed_sum = d.active_sockets() as f64;
            d.end_cycle(now, 1.0, speed_sum, 0.0);
        }
        assert!(peak_active >= 5, "fleet never grew: peak {peak_active}");
        assert!(saw_off, "fleet never shrank after the crowd left");
        assert!(
            d.active_nodes() <= 2,
            "still {} nodes at the end",
            d.active_nodes()
        );
    }

    #[test]
    fn oracle_tracks_the_rate_curve() {
        let mode = ProvisionerMode::Oracle(OracleConfig {
            target_utilization: 0.8,
            headroom_nodes: 0,
            min_nodes: 1,
        });
        let mut d = TrafficDriver::new(cfg(steady(1_000.0), mode), 16, 2, rng(5));
        d.begin_cycle(0.0, 1.0);
        // 1000 rps / (0.8 × 200 rps/node) = 6.25 → 7 nodes immediately.
        assert_eq!(d.active_nodes(), 7);
    }

    #[test]
    fn milestones_fire_on_served_thresholds() {
        let d = TrafficDriver::new(cfg(steady(800.0), ProvisionerMode::Static), 4, 2, rng(6));
        let mut d = d;
        let mut crossings = Vec::new();
        for c in 0..50 {
            let now = c as f64;
            d.begin_cycle(now, 1.0);
            let speed_sum = d.active_sockets() as f64;
            if let Some(m) = d.end_cycle(now, 1.0, speed_sum, 0.0).milestone {
                crossings.push(m);
            }
        }
        assert!(crossings.len() >= 3, "only {} milestones", crossings.len());
        for w in crossings.windows(2) {
            assert!(w[1].served > w[0].served);
        }
        assert!(crossings[0].served >= 1_000);
    }

    #[test]
    fn closed_loop_self_throttles() {
        let pattern = TrafficPattern::ClosedLoop {
            users: 2_000.0,
            think_time: 2.0,
        };
        // Capacity 200 rps total vs a nominal 1000 rps of users: the
        // outstanding pool must cap the backlog near the population size.
        let d = TrafficDriver::new(cfg(pattern, ProvisionerMode::Static), 1, 2, rng(7));
        let d = run(d, 500, 1.0);
        assert!(d.backlog() <= 2_000.0 + 1e-6);
        assert!(
            d.stats().arrived > 10_000.0,
            "arrived {}",
            d.stats().arrived
        );
    }

    #[test]
    fn energy_folds_into_joules_per_million() {
        let d = TrafficDriver::new(cfg(steady(400.0), ProvisionerMode::Static), 2, 2, rng(8));
        let d = run(d, 100, 1.0);
        let jpm = d.stats().joules_per_million().unwrap();
        assert!(jpm > 0.0 && jpm.is_finite());
        // 4 sockets × 100 W × 100 s = 40 kJ over ~40k requests ≈ 1e6 J/M.
        assert!(
            (5e5..5e6).contains(&jpm),
            "joules per million {jpm} out of plausible range"
        );
    }

    #[test]
    fn same_seed_identical_run_different_seed_diverges() {
        let build =
            |seed| TrafficDriver::new(cfg(steady(600.0), ProvisionerMode::Static), 4, 2, rng(seed));
        let a = run(build(42), 150, 1.0);
        let b = run(build(42), 150, 1.0);
        let c = run(build(43), 150, 1.0);
        assert_eq!(a.stats().arrived, b.stats().arrived);
        assert_eq!(a.stats().served, b.stats().served);
        assert_eq!(a.stats().slo_ok, b.stats().slo_ok);
        assert_ne!(a.stats().arrived, c.stats().arrived);
    }

    #[test]
    fn percentile_estimates_are_monotone() {
        let d = TrafficDriver::new(cfg(steady(1_200.0), ProvisionerMode::Static), 4, 2, rng(9));
        let d = run(d, 200, 1.0);
        let p50 = d.stats().latency_percentile(0.5).unwrap();
        let p95 = d.stats().latency_percentile(0.95).unwrap();
        let p100 = d.stats().latency_percentile(1.0).unwrap();
        assert!(p50 <= p95 && p95 <= p100);
        assert!(p100 <= d.stats().max_latency() + 1e-9);
    }

    #[test]
    fn config_validation_gates_construction() {
        let mut c = cfg(steady(100.0), ProvisionerMode::Static);
        c.capacity_rps = 0.0;
        assert!(c.validate().is_err());
        let mut c2 = cfg(steady(100.0), ProvisionerMode::Static);
        c2.milestone_every = 0;
        assert!(c2.validate().is_err());
        assert!(TrafficConfig::default_diurnal(16, 150.0).validate().is_ok());
    }
}
