//! Seeded request-arrival generators.
//!
//! A pattern is a deterministic *rate curve* `rate_at(t)` in requests per
//! second; the generator turns it into per-window arrival batches by
//! sampling a Poisson count around `rate × dt` from a pinned
//! [`RngStream`]. Batches are `f64` counts so a window can carry thousands
//! of requests (millions per day) without per-request allocation; the
//! cohort bookkeeping in [`driver`](crate::driver) keeps latency accounting
//! exact at batch granularity.
//!
//! Open-loop patterns ([`TrafficPattern::Diurnal`],
//! [`TrafficPattern::FlashCrowd`], [`TrafficPattern::Playback`]) offer load
//! regardless of how the cluster is doing. The closed-loop pattern
//! ([`TrafficPattern::ClosedLoop`]) models a finite user population with
//! think time: a user only issues a new request once the previous one
//! finished, so offered load sags when the service backs up.

use dps_sim_core::{RngStream, Seconds};
use serde::{Deserialize, Serialize};

/// One point of a playback rate trace: hold/interpolate to the next point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlaybackPoint {
    /// Simulated time of the sample (seconds).
    pub time: Seconds,
    /// Offered rate at that time (requests/s).
    pub rps: f64,
}

/// A deterministic offered-load shape.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TrafficPattern {
    /// A sinusoidal day/night curve between `base_rps` and `peak_rps`.
    Diurnal {
        /// Trough rate (requests/s).
        base_rps: f64,
        /// Crest rate (requests/s).
        peak_rps: f64,
        /// Length of one full day/night cycle (seconds).
        period: Seconds,
        /// Fraction of a period the curve is shifted by (`0.0..1.0`);
        /// `0.0` starts at the trough.
        phase: f64,
    },
    /// A flash-crowd spike: baseline, linear ramp to the peak, hold, linear
    /// decay back to baseline.
    FlashCrowd {
        /// Rate outside the event (requests/s).
        base_rps: f64,
        /// Rate at the top of the spike (requests/s).
        peak_rps: f64,
        /// When the ramp begins (seconds).
        start: Seconds,
        /// Ramp duration (seconds); `0` jumps straight to the peak.
        ramp: Seconds,
        /// How long the peak holds (seconds).
        hold: Seconds,
        /// Decay duration back to baseline (seconds); `0` drops instantly.
        decay: Seconds,
    },
    /// Playback of a recorded rate trace, linearly interpolated between
    /// points and held flat before the first / after the last.
    Playback(
        /// Samples in strictly increasing time order.
        Vec<PlaybackPoint>,
    ),
    /// A closed population of users; each issues a request, waits for the
    /// response, thinks, and repeats.
    ClosedLoop {
        /// Population size.
        users: f64,
        /// Mean think time between a response and the next request
        /// (seconds).
        think_time: Seconds,
    },
}

impl TrafficPattern {
    /// Validates shape parameters, returning a human-readable error.
    pub fn validate(&self) -> Result<(), String> {
        let finite_nonneg = |v: f64, what: &str| {
            if !v.is_finite() || v < 0.0 {
                Err(format!("{what} must be finite and >= 0, got {v}"))
            } else {
                Ok(())
            }
        };
        match self {
            TrafficPattern::Diurnal {
                base_rps,
                peak_rps,
                period,
                phase,
            } => {
                finite_nonneg(*base_rps, "diurnal base_rps")?;
                finite_nonneg(*peak_rps, "diurnal peak_rps")?;
                if peak_rps < base_rps {
                    return Err(format!(
                        "diurnal peak_rps {peak_rps} below base_rps {base_rps}"
                    ));
                }
                if *period <= 0.0 || !period.is_finite() {
                    return Err(format!("diurnal period must be > 0, got {period}"));
                }
                if !phase.is_finite() {
                    return Err(format!("diurnal phase must be finite, got {phase}"));
                }
                Ok(())
            }
            TrafficPattern::FlashCrowd {
                base_rps,
                peak_rps,
                start,
                ramp,
                hold,
                decay,
            } => {
                finite_nonneg(*base_rps, "flash-crowd base_rps")?;
                finite_nonneg(*peak_rps, "flash-crowd peak_rps")?;
                if peak_rps < base_rps {
                    return Err(format!(
                        "flash-crowd peak_rps {peak_rps} below base_rps {base_rps}"
                    ));
                }
                finite_nonneg(*start, "flash-crowd start")?;
                finite_nonneg(*ramp, "flash-crowd ramp")?;
                finite_nonneg(*hold, "flash-crowd hold")?;
                finite_nonneg(*decay, "flash-crowd decay")?;
                Ok(())
            }
            TrafficPattern::Playback(points) => {
                if points.is_empty() {
                    return Err("playback trace must have at least one point".to_string());
                }
                for w in points.windows(2) {
                    if w[1].time <= w[0].time || w[1].time.is_nan() || w[0].time.is_nan() {
                        return Err(format!(
                            "playback times must strictly increase ({} then {})",
                            w[0].time, w[1].time
                        ));
                    }
                }
                for p in points {
                    finite_nonneg(p.time, "playback time")?;
                    finite_nonneg(p.rps, "playback rps")?;
                }
                Ok(())
            }
            TrafficPattern::ClosedLoop { users, think_time } => {
                if *users <= 0.0 || !users.is_finite() {
                    return Err(format!("closed-loop users must be > 0, got {users}"));
                }
                if *think_time <= 0.0 || !think_time.is_finite() {
                    return Err(format!(
                        "closed-loop think_time must be > 0, got {think_time}"
                    ));
                }
                Ok(())
            }
        }
    }

    /// The instantaneous offered rate at time `t` (requests/s). For the
    /// closed-loop pattern this is the nominal zero-latency rate
    /// `users / think_time`; actual arrivals depend on outstanding work.
    pub fn rate_at(&self, t: Seconds) -> f64 {
        match self {
            TrafficPattern::Diurnal {
                base_rps,
                peak_rps,
                period,
                phase,
            } => {
                let x = t / period + phase;
                base_rps
                    + (peak_rps - base_rps) * 0.5 * (1.0 - (2.0 * std::f64::consts::PI * x).cos())
            }
            TrafficPattern::FlashCrowd {
                base_rps,
                peak_rps,
                start,
                ramp,
                hold,
                decay,
            } => {
                let spike = peak_rps - base_rps;
                if t < *start {
                    *base_rps
                } else if t < start + ramp {
                    base_rps + spike * ((t - start) / ramp)
                } else if t < start + ramp + hold {
                    *peak_rps
                } else if t < start + ramp + hold + decay {
                    base_rps + spike * (1.0 - (t - start - ramp - hold) / decay)
                } else {
                    *base_rps
                }
            }
            TrafficPattern::Playback(points) => {
                let first = points.first().expect("validated non-empty");
                let last = points.last().expect("validated non-empty");
                if t <= first.time {
                    return first.rps;
                }
                if t >= last.time {
                    return last.rps;
                }
                let i = points.partition_point(|p| p.time <= t);
                let (a, b) = (&points[i - 1], &points[i]);
                a.rps + (b.rps - a.rps) * ((t - a.time) / (b.time - a.time))
            }
            TrafficPattern::ClosedLoop { users, think_time } => users / think_time,
        }
    }

    /// The largest rate the pattern can offer (requests/s).
    pub fn peak_rate(&self) -> f64 {
        match self {
            TrafficPattern::Diurnal { peak_rps, .. } => *peak_rps,
            TrafficPattern::FlashCrowd { peak_rps, .. } => *peak_rps,
            TrafficPattern::Playback(points) => points.iter().map(|p| p.rps).fold(0.0, f64::max),
            TrafficPattern::ClosedLoop { users, think_time } => users / think_time,
        }
    }

    /// Whether arrivals depend on outstanding requests (closed loop).
    pub fn is_closed_loop(&self) -> bool {
        matches!(self, TrafficPattern::ClosedLoop { .. })
    }
}

/// Samples a Poisson count with the given mean. Exact (Knuth) for small
/// means, normal approximation above — both draw a bounded number of
/// variates from the stream, keeping the cost independent of the rate for
/// the large batches a millions-of-users service produces.
fn poisson(mean: f64, rng: &mut RngStream) -> f64 {
    if mean <= 0.0 {
        return 0.0;
    }
    if mean < 32.0 {
        let limit = (-mean).exp();
        let mut k: u64 = 0;
        let mut p = 1.0;
        loop {
            p *= rng.uniform();
            if p <= limit {
                return k as f64;
            }
            k += 1;
        }
    }
    rng.normal(mean, mean.sqrt()).round().max(0.0)
}

/// A pattern plus a pinned random stream: the arrival source for one run.
#[derive(Debug, Clone)]
pub struct RequestGenerator {
    pattern: TrafficPattern,
    rng: RngStream,
}

impl RequestGenerator {
    /// Creates a generator; the same `(pattern, rng)` pair always produces
    /// the identical arrival stream.
    pub fn new(pattern: TrafficPattern, rng: RngStream) -> Self {
        RequestGenerator { pattern, rng }
    }

    /// The underlying pattern.
    pub fn pattern(&self) -> &TrafficPattern {
        &self.pattern
    }

    /// Draws the arrival batch for the window `[now, now + dt)`.
    /// `outstanding` is the number of requests queued or in service — only
    /// the closed-loop pattern uses it (idle users cannot exceed the
    /// population).
    pub fn arrivals(&mut self, now: Seconds, dt: Seconds, outstanding: f64) -> f64 {
        match self.pattern {
            TrafficPattern::ClosedLoop { users, think_time } => {
                let idle = (users - outstanding).max(0.0);
                let mean = (idle * dt / think_time).min(idle);
                poisson(mean, &mut self.rng).min(idle)
            }
            _ => {
                let mean = self.pattern.rate_at(now + 0.5 * dt) * dt;
                poisson(mean, &mut self.rng)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream(seed: u64) -> RngStream {
        RngStream::new(seed, "traffic-test")
    }

    #[test]
    fn diurnal_trough_and_crest() {
        let p = TrafficPattern::Diurnal {
            base_rps: 100.0,
            peak_rps: 500.0,
            period: 86_400.0,
            phase: 0.0,
        };
        p.validate().unwrap();
        assert!((p.rate_at(0.0) - 100.0).abs() < 1e-9);
        assert!((p.rate_at(43_200.0) - 500.0).abs() < 1e-9);
        assert!((p.rate_at(86_400.0) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn flash_crowd_piecewise_shape() {
        let p = TrafficPattern::FlashCrowd {
            base_rps: 50.0,
            peak_rps: 250.0,
            start: 100.0,
            ramp: 20.0,
            hold: 60.0,
            decay: 40.0,
        };
        p.validate().unwrap();
        assert_eq!(p.rate_at(0.0), 50.0);
        assert!((p.rate_at(110.0) - 150.0).abs() < 1e-9);
        assert_eq!(p.rate_at(150.0), 250.0);
        assert!((p.rate_at(200.0) - 150.0).abs() < 1e-9);
        assert_eq!(p.rate_at(1_000.0), 50.0);
    }

    #[test]
    fn flash_crowd_zero_ramp_jumps() {
        let p = TrafficPattern::FlashCrowd {
            base_rps: 10.0,
            peak_rps: 90.0,
            start: 5.0,
            ramp: 0.0,
            hold: 10.0,
            decay: 0.0,
        };
        p.validate().unwrap();
        assert_eq!(p.rate_at(4.999), 10.0);
        assert_eq!(p.rate_at(5.0), 90.0);
        assert_eq!(p.rate_at(15.0), 10.0);
    }

    #[test]
    fn playback_interpolates_and_holds_ends() {
        let p = TrafficPattern::Playback(vec![
            PlaybackPoint {
                time: 10.0,
                rps: 100.0,
            },
            PlaybackPoint {
                time: 20.0,
                rps: 300.0,
            },
        ]);
        p.validate().unwrap();
        assert_eq!(p.rate_at(0.0), 100.0);
        assert!((p.rate_at(15.0) - 200.0).abs() < 1e-9);
        assert_eq!(p.rate_at(99.0), 300.0);
        assert_eq!(p.peak_rate(), 300.0);
    }

    #[test]
    fn invalid_patterns_rejected() {
        assert!(TrafficPattern::Diurnal {
            base_rps: 500.0,
            peak_rps: 100.0,
            period: 3600.0,
            phase: 0.0,
        }
        .validate()
        .is_err());
        assert!(TrafficPattern::Playback(vec![]).validate().is_err());
        assert!(TrafficPattern::ClosedLoop {
            users: 0.0,
            think_time: 1.0,
        }
        .validate()
        .is_err());
    }

    #[test]
    fn same_seed_same_stream() {
        let p = TrafficPattern::Diurnal {
            base_rps: 200.0,
            peak_rps: 900.0,
            period: 3_600.0,
            phase: 0.25,
        };
        let mut a = RequestGenerator::new(p.clone(), stream(7));
        let mut b = RequestGenerator::new(p, stream(7));
        for c in 0..500 {
            let t = c as f64;
            assert_eq!(a.arrivals(t, 1.0, 0.0), b.arrivals(t, 1.0, 0.0));
        }
    }

    #[test]
    fn poisson_mean_tracks_rate() {
        // Large-mean branch: the sample mean over many windows should land
        // near rate × dt.
        let p = TrafficPattern::Diurnal {
            base_rps: 1_000.0,
            peak_rps: 1_000.0,
            period: 3_600.0,
            phase: 0.0,
        };
        let mut g = RequestGenerator::new(p, stream(11));
        let n = 2_000;
        let total: f64 = (0..n).map(|c| g.arrivals(c as f64, 1.0, 0.0)).sum();
        let mean = total / n as f64;
        assert!((mean - 1_000.0).abs() < 10.0, "sample mean {mean}");
    }

    #[test]
    fn closed_loop_arrivals_bounded_by_idle_users() {
        let p = TrafficPattern::ClosedLoop {
            users: 100.0,
            think_time: 2.0,
        };
        let mut g = RequestGenerator::new(p, stream(3));
        for c in 0..200 {
            let outstanding = (c % 120) as f64;
            let idle = (100.0 - outstanding).max(0.0);
            let a = g.arrivals(c as f64, 1.0, outstanding);
            assert!(a >= 0.0 && a <= idle + 1e-9, "arrivals {a} vs idle {idle}");
        }
    }
}
