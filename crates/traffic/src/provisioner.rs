//! Elastic fleet provisioning policies.
//!
//! The reactive policy follows Ranjan-style reactive provisioning: compare
//! measured utilization against a target, scale *up* immediately when the
//! fleet is running hot, and scale *down* only after the surplus persists
//! for a hysteresis window. The hysteresis is the ski-rental hedge: a node
//! powered off just before the load returns pays a power-on latency and a
//! cold controller state (Kalman/history reset), so shrinking should wait
//! until the evidence is sustained. The oracle policy provisions from the
//! true offered-rate curve and exists purely as a lower-bound baseline in
//! experiments.

use dps_sim_core::Seconds;
use serde::{Deserialize, Serialize};

/// Tunables of the reactive (Ranjan-style) provisioner.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProvisionerConfig {
    /// Fleet utilization the policy steers toward (`0 < x <= 1`); the
    /// desired node count is `ceil(offered load / target)`.
    pub target_utilization: f64,
    /// Extra nodes kept powered above the computed need.
    pub headroom_nodes: usize,
    /// How long utilization must stay below target before nodes power off
    /// (seconds).
    pub power_off_after: Seconds,
    /// Never power below this many nodes.
    pub min_nodes: usize,
}

impl ProvisionerConfig {
    /// A conservative default: 70 % target, one spare node, five-minute
    /// power-off hysteresis, one node always on.
    pub fn default_reactive() -> Self {
        ProvisionerConfig {
            target_utilization: 0.7,
            headroom_nodes: 1,
            power_off_after: 300.0,
            min_nodes: 1,
        }
    }

    /// Validates the tunables.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.target_utilization > 0.0 && self.target_utilization <= 1.0) {
            return Err(format!(
                "target_utilization must be in (0, 1], got {}",
                self.target_utilization
            ));
        }
        if self.power_off_after < 0.0 || !self.power_off_after.is_finite() {
            return Err(format!(
                "power_off_after must be finite and >= 0, got {}",
                self.power_off_after
            ));
        }
        if self.min_nodes == 0 {
            return Err("min_nodes must be >= 1".to_string());
        }
        Ok(())
    }
}

/// Tunables of the oracle baseline (no hysteresis: it never guesses wrong).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OracleConfig {
    /// Fleet utilization the oracle provisions for (`0 < x <= 1`).
    pub target_utilization: f64,
    /// Extra nodes kept powered above the computed need.
    pub headroom_nodes: usize,
    /// Never power below this many nodes.
    pub min_nodes: usize,
}

impl OracleConfig {
    /// Validates the tunables.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.target_utilization > 0.0 && self.target_utilization <= 1.0) {
            return Err(format!(
                "target_utilization must be in (0, 1], got {}",
                self.target_utilization
            ));
        }
        if self.min_nodes == 0 {
            return Err("min_nodes must be >= 1".to_string());
        }
        Ok(())
    }
}

/// Which provisioning policy runs the fleet.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ProvisionerMode {
    /// Every node stays powered for the whole run.
    Static,
    /// Reactive scaling from measured utilization.
    Reactive(ProvisionerConfig),
    /// Clairvoyant scaling from the true rate curve (baseline).
    Oracle(OracleConfig),
}

impl ProvisionerMode {
    /// Validates the embedded policy config.
    pub fn validate(&self) -> Result<(), String> {
        match self {
            ProvisionerMode::Static => Ok(()),
            ProvisionerMode::Reactive(cfg) => cfg.validate(),
            ProvisionerMode::Oracle(cfg) => cfg.validate(),
        }
    }
}

/// The reactive policy's mutable state: an up-to-date shrink timer.
#[derive(Debug, Clone)]
pub struct ReactiveProvisioner {
    cfg: ProvisionerConfig,
    /// When utilization first supported a smaller fleet (hysteresis clock).
    shrink_since: Option<Seconds>,
}

impl ReactiveProvisioner {
    /// Creates the policy state.
    pub fn new(cfg: ProvisionerConfig) -> Self {
        ReactiveProvisioner {
            cfg,
            shrink_since: None,
        }
    }

    /// The node count that would serve `offered_node_loads` node-loads of
    /// work at the target utilization, plus headroom, clamped to
    /// `[min_nodes, max_nodes]`.
    fn need(&self, offered_node_loads: f64, max_nodes: usize) -> usize {
        let raw = (offered_node_loads / self.cfg.target_utilization).ceil();
        let raw = if raw.is_finite() {
            raw.max(0.0) as usize
        } else {
            max_nodes
        };
        (raw + self.cfg.headroom_nodes).clamp(self.cfg.min_nodes, max_nodes)
    }

    /// Decides the fleet size for the next window. `utilization` is last
    /// window's offered work over powered capacity (may exceed 1 under
    /// overload), `active_nodes` the currently powered count.
    ///
    /// Growth applies immediately; shrinking waits until the smaller need
    /// has persisted for `power_off_after` seconds.
    pub fn desired_nodes(
        &mut self,
        now: Seconds,
        utilization: f64,
        active_nodes: usize,
        max_nodes: usize,
    ) -> usize {
        let need = self.need(utilization * active_nodes as f64, max_nodes);
        if need >= active_nodes {
            self.shrink_since = None;
            return need;
        }
        match self.shrink_since {
            Some(since) if now - since >= self.cfg.power_off_after => {
                self.shrink_since = None;
                need
            }
            Some(_) => active_nodes,
            None => {
                self.shrink_since = Some(now);
                if self.cfg.power_off_after <= 0.0 {
                    self.shrink_since = None;
                    need
                } else {
                    active_nodes
                }
            }
        }
    }
}

/// The oracle's fleet size for an offered rate of `rate` requests/s on
/// nodes serving `node_capacity_rps` each at full speed.
pub fn oracle_nodes(
    cfg: &OracleConfig,
    rate: f64,
    node_capacity_rps: f64,
    max_nodes: usize,
) -> usize {
    let raw = (rate / (cfg.target_utilization * node_capacity_rps)).ceil();
    let raw = if raw.is_finite() {
        raw.max(0.0) as usize
    } else {
        max_nodes
    };
    (raw + cfg.headroom_nodes).clamp(cfg.min_nodes, max_nodes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ProvisionerConfig {
        ProvisionerConfig {
            target_utilization: 0.5,
            headroom_nodes: 0,
            power_off_after: 10.0,
            min_nodes: 1,
        }
    }

    #[test]
    fn grows_immediately_when_hot() {
        let mut p = ReactiveProvisioner::new(cfg());
        // 4 nodes at 0.9 utilization = 3.6 node-loads → need 8 at target 0.5.
        assert_eq!(p.desired_nodes(0.0, 0.9, 4, 16), 8);
    }

    #[test]
    fn shrinks_only_after_hysteresis() {
        let mut p = ReactiveProvisioner::new(cfg());
        // 8 nodes at 0.1 = 0.8 node-loads → need 2, but only after 10 s.
        assert_eq!(p.desired_nodes(0.0, 0.1, 8, 16), 8);
        assert_eq!(p.desired_nodes(5.0, 0.1, 8, 16), 8);
        assert_eq!(p.desired_nodes(10.0, 0.1, 8, 16), 2);
    }

    #[test]
    fn growth_resets_the_shrink_timer() {
        let mut p = ReactiveProvisioner::new(cfg());
        assert_eq!(p.desired_nodes(0.0, 0.1, 8, 16), 8); // timer starts
        assert_eq!(p.desired_nodes(6.0, 1.2, 8, 16), 16); // hot again
                                                          // Quiet again: the timer must restart from scratch.
        assert_eq!(p.desired_nodes(8.0, 0.05, 16, 16), 16);
        assert_eq!(p.desired_nodes(12.0, 0.05, 16, 16), 16);
        assert_eq!(p.desired_nodes(18.0, 0.05, 16, 16), 2);
    }

    #[test]
    fn respects_min_and_max() {
        let mut p = ReactiveProvisioner::new(ProvisionerConfig {
            min_nodes: 3,
            power_off_after: 0.0,
            ..cfg()
        });
        assert_eq!(p.desired_nodes(0.0, 0.0, 8, 16), 3);
        assert_eq!(p.desired_nodes(1.0, 10.0, 3, 6), 6);
    }

    #[test]
    fn headroom_rides_on_top_of_need() {
        let mut p = ReactiveProvisioner::new(ProvisionerConfig {
            headroom_nodes: 2,
            ..cfg()
        });
        // 2 nodes at 0.5 = 1 node-load → need 2 + 2 headroom = 4.
        assert_eq!(p.desired_nodes(0.0, 0.5, 2, 16), 4);
    }

    #[test]
    fn oracle_sizing() {
        let cfg = OracleConfig {
            target_utilization: 0.8,
            headroom_nodes: 1,
            min_nodes: 1,
        };
        // 1000 rps at 200 rps/node and 0.8 target → ceil(6.25)=7, +1 = 8.
        assert_eq!(oracle_nodes(&cfg, 1_000.0, 200.0, 16), 8);
        assert_eq!(oracle_nodes(&cfg, 0.0, 200.0, 16), 1);
        assert_eq!(oracle_nodes(&cfg, 1e12, 200.0, 16), 16);
    }

    #[test]
    fn config_validation() {
        assert!(ProvisionerConfig::default_reactive().validate().is_ok());
        assert!(ProvisionerConfig {
            target_utilization: 0.0,
            ..cfg()
        }
        .validate()
        .is_err());
        assert!(ProvisionerConfig {
            min_nodes: 0,
            ..cfg()
        }
        .validate()
        .is_err());
        assert!(ProvisionerMode::Oracle(OracleConfig {
            target_utilization: 1.5,
            headroom_nodes: 0,
            min_nodes: 1,
        })
        .validate()
        .is_err());
        assert!(ProvisionerMode::Static.validate().is_ok());
    }
}
