//! Request-driven elastic cluster layer (`dps-traffic`).
//!
//! DPS divides a fixed power budget among always-on sockets; this crate
//! supplies the missing half of the overprovisioning story — a *service*
//! absorbing traffic from millions of daily users on a fleet that breathes.
//! Following CloudPowerCap's argument that power budgeting and resource
//! provisioning must be decided together, the pieces here close the loop
//! from request arrivals to watts:
//!
//! * [`generator`] — seeded, deterministic request generators. Open-loop
//!   patterns (diurnal curve, flash-crowd spike, trace playback) sample a
//!   Poisson batch per decision window around a shaped rate curve;
//!   the closed-loop pattern models a finite user population with think
//!   time, so arrivals throttle themselves when the cluster falls behind.
//! * [`provisioner`] — a Ranjan-style reactive provisioner: scale *up*
//!   immediately when utilization exceeds the target, scale *down* only
//!   after the excess persists for a hysteresis window (the ski-rental
//!   intuition: a powered-off node that is needed again soon costs more
//!   than the watts it saved). An oracle variant provisions from the true
//!   rate curve for a lower-bound comparison.
//! * [`driver`] — the per-cycle bookkeeping engine wired into
//!   `dps-cluster`'s simulator: it queues arrival cohorts, converts backlog
//!   into per-socket busy fractions (which scale the `dps-workloads` demand
//!   programs the sockets run), serves requests at the speed the granted
//!   power allows, and tracks queueing latency, SLO attainment and joules
//!   per million requests through `dps-metrics`.
//!
//! Everything is deterministic under a pinned [`RngStream`]: the same seed
//! yields a bit-identical arrival stream, provisioning schedule and trace.
//!
//! [`RngStream`]: dps_sim_core::RngStream

#![warn(missing_docs)]

pub mod driver;
pub mod generator;
pub mod provisioner;

pub use driver::{ProvisionChange, RequestStats, TrafficConfig, TrafficDriver};
pub use generator::{PlaybackPoint, RequestGenerator, TrafficPattern};
pub use provisioner::{OracleConfig, ProvisionerConfig, ProvisionerMode, ReactiveProvisioner};
