//! One bench per paper table/figure, at reduced scale.
//!
//! The full-resolution regeneration lives in `dps-experiments` (one binary
//! per figure); these benches run a representative slice of each
//! experiment so `cargo bench` both exercises every figure's pipeline and
//! tracks its cost:
//!
//! * `fig1_motivational`    — the 2-node, 5-timestep toy under DPS;
//! * `fig2_trace_generation`— LDA/Bayes/LR demand-program synthesis;
//! * `tables_calibration`   — catalog calibration (Tables 2 & 4);
//! * `fig4_low_utility_pair`— one LDA+Sort pair, all four managers;
//! * `fig5_high_utility_pair` — one Bayes+GMM pair under SLURM and DPS;
//! * `fig6_spark_npb_pair`  — one Bayes+FT pair under SLURM and DPS;
//! * `fig7_fairness`        — fairness accounting over a pair run.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use dps_bench::bench_config;
use dps_cluster::run_pair;
use dps_core::manager::{ManagerKind, PowerManager};
use dps_experiments::config_from_env;
use dps_workloads::catalog::find;
use dps_workloads::generator::{build_program, capped_duration};

fn fig1_motivational(c: &mut Criterion) {
    c.bench_function("fig1_motivational_dps", |b| {
        let mut exp = config_from_env();
        exp.sim.topology = dps_rapl::Topology::new(2, 1, 1);
        exp.sim.budget_fraction = 220.0 / 330.0;
        b.iter(|| {
            let mut mgr = exp.build_manager(ManagerKind::Dps);
            let mut caps = vec![110.0; 2];
            let demand: [[f64; 2]; 5] = [
                [55.0, 55.0],
                [165.0, 55.0],
                [165.0, 110.0],
                [165.0, 165.0],
                [165.0, 165.0],
            ];
            for d in demand {
                for _ in 0..8 {
                    let measured = [d[0].min(caps[0]), d[1].min(caps[1])];
                    mgr.assign_caps(&measured, &mut caps, 1.0);
                }
            }
            black_box(caps)
        });
    });
}

fn fig2_trace_generation(c: &mut Criterion) {
    let cfg = bench_config();
    let mut group = c.benchmark_group("fig2_trace_generation");
    for name in ["LDA", "Bayes", "LR"] {
        let spec = find(name).unwrap();
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| black_box(build_program(spec, &cfg.sim.perf, 42)));
        });
    }
    group.finish();
}

fn tables_calibration(c: &mut Criterion) {
    let cfg = bench_config();
    let spec = find("Kmeans").unwrap();
    let program = build_program(spec, &cfg.sim.perf, 42);
    c.bench_function("tables_capped_duration_kmeans", |b| {
        b.iter(|| black_box(capped_duration(&program, &cfg.sim.perf, 110.0)));
    });
}

fn pair_bench(c: &mut Criterion, bench_name: &str, a: &str, b_name: &str, kinds: &[ManagerKind]) {
    let cfg = bench_config();
    let spec_a = find(a).unwrap();
    let spec_b = find(b_name).unwrap();
    let mut group = c.benchmark_group(bench_name);
    group.sample_size(10);
    for &kind in kinds {
        group.bench_function(BenchmarkId::from_parameter(kind), |bch| {
            bch.iter(|| black_box(run_pair(spec_a, spec_b, kind, &cfg)));
        });
    }
    group.finish();
}

fn fig4_low_utility_pair(c: &mut Criterion) {
    pair_bench(
        c,
        "fig4_low_utility_pair",
        "LDA",
        "Sort",
        &[
            ManagerKind::Constant,
            ManagerKind::Slurm,
            ManagerKind::Dps,
            ManagerKind::Oracle,
        ],
    );
}

fn fig5_high_utility_pair(c: &mut Criterion) {
    pair_bench(
        c,
        "fig5_high_utility_pair",
        "Bayes",
        "GMM",
        &[ManagerKind::Slurm, ManagerKind::Dps],
    );
}

fn fig6_spark_npb_pair(c: &mut Criterion) {
    pair_bench(
        c,
        "fig6_spark_npb_pair",
        "Bayes",
        "FT",
        &[ManagerKind::Slurm, ManagerKind::Dps],
    );
}

fn fig7_fairness(c: &mut Criterion) {
    // Fairness accounting end-to-end: a pair run plus the Eq. 1-2 readout.
    let cfg = bench_config();
    let spec_a = find("LR").unwrap();
    let spec_b = find("FT").unwrap();
    c.bench_function("fig7_fairness_pair", |b| {
        b.iter(|| {
            let outcome = run_pair(spec_a, spec_b, ManagerKind::Dps, &cfg);
            black_box(outcome.fairness)
        });
    });
}

fn overhead_cycle(c: &mut Criterion) {
    // The §6.5 decision-cycle measurement also exists as a proper bench in
    // manager_scaling.rs; this one covers the full simulator cycle (demand
    // eval + RAPL + manager + progress) at paper topology.
    let exp = config_from_env();
    let spec_a = find("Bayes").unwrap();
    let spec_b = find("CG").unwrap();
    let program_a = build_program(spec_a, &exp.sim.perf, 1);
    let program_b = build_program(spec_b, &exp.sim.perf, 2);
    let mgr: Box<dyn PowerManager> = exp.build_manager(ManagerKind::Dps);
    let rng = dps_sim_core::RngStream::new(9, "bench-cycle");
    let mut sim =
        dps_cluster::ClusterSim::new(exp.sim.clone(), vec![program_a, program_b], mgr, &rng);
    c.bench_function("cluster_cycle_20_units", |b| {
        b.iter(|| sim.cycle());
    });
}

criterion_group!(
    benches,
    fig1_motivational,
    fig2_trace_generation,
    tables_calibration,
    fig4_low_utility_pair,
    fig5_high_utility_pair,
    fig6_spark_npb_pair,
    fig7_fairness,
    overhead_cycle,
);
criterion_main!(benches);
