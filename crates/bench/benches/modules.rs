//! Per-module microbenches backing the §6.5 overhead analysis: the cost of
//! each DPS building block per unit per decision cycle.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dps_core::budget::distribute_weighted;
use dps_core::config::DpsConfig;
use dps_core::history::UnitState;
use dps_core::priority::set_priorities;
use dps_sim_core::kalman::KalmanFilter;
use dps_sim_core::rng::RngStream;
use dps_sim_core::signal;

fn bench_kalman(c: &mut Criterion) {
    c.bench_function("kalman_update", |b| {
        let mut kf = KalmanFilter::new(25.0, 4.0);
        let mut z = 100.0;
        b.iter(|| {
            z = if z > 150.0 { 60.0 } else { z + 1.0 };
            black_box(kf.update(black_box(z)))
        });
    });
}

fn bench_peaks(c: &mut Criterion) {
    // A realistic 20-sample Kalman-smoothed history window.
    let mut rng = RngStream::new(5, "bench-peaks");
    let window: Vec<f64> = (0..20)
        .map(|i| {
            if (i / 4) % 2 == 0 {
                145.0 + rng.normal(0.0, 1.0)
            } else {
                55.0 + rng.normal(0.0, 1.0)
            }
        })
        .collect();
    c.bench_function("count_prominent_peaks_20", |b| {
        b.iter(|| black_box(signal::count_prominent_peaks(black_box(&window), 30.0)));
    });
}

fn bench_derivative(c: &mut Criterion) {
    let powers: Vec<f64> = (0..20).map(|i| 50.0 + 5.0 * i as f64).collect();
    let durations = vec![1.0; 20];
    c.bench_function("windowed_derivative_20", |b| {
        b.iter(|| black_box(signal::windowed_derivative(&powers, &durations, 3)));
    });
}

fn bench_priority_module(c: &mut Criterion) {
    let config = DpsConfig::default();
    let mut states: Vec<UnitState> = (0..20).map(|_| UnitState::new(&config)).collect();
    let mut rng = RngStream::new(6, "bench-prio");
    for state in &mut states {
        for _ in 0..20 {
            state.observe(rng.range(40.0..160.0), 1.0);
        }
    }
    let caps = vec![110.0; 20];
    c.bench_function("priority_module_20_units", |b| {
        b.iter(|| set_priorities(black_box(&mut states), black_box(&caps), &config));
    });
}

fn bench_distribute(c: &mut Criterion) {
    let selected: Vec<usize> = (0..10).collect();
    c.bench_function("distribute_weighted_10", |b| {
        b.iter(|| {
            let mut caps = vec![80.0; 20];
            let weights: Vec<f64> = selected.iter().map(|&u| 1.0 / caps[u]).collect();
            black_box(distribute_weighted(
                &mut caps, &selected, &weights, 300.0, 165.0,
            ))
        });
    });
}

fn bench_unit_observe(c: &mut Criterion) {
    let config = DpsConfig::default();
    let mut state = UnitState::new(&config);
    let mut z = 100.0;
    c.bench_function("unit_state_observe", |b| {
        b.iter(|| {
            z = if z > 150.0 { 60.0 } else { z + 3.0 };
            black_box(state.observe(black_box(z), 1.0))
        });
    });
}

criterion_group!(
    benches,
    bench_kalman,
    bench_peaks,
    bench_derivative,
    bench_priority_module,
    bench_distribute,
    bench_unit_observe,
);
criterion_main!(benches);
