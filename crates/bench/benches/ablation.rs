//! Ablation benches: the marginal cost of each DPS mechanism.
//!
//! DESIGN.md calls out the design choices (Kalman filtering, frequency
//! detection, the restore step); these benches price them — each variant's
//! decision-cycle cost at testbed scale — complementing the quality
//! ablation in `dps-experiments --bin ablation`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dps_bench::Churn;
use dps_core::manager::{PowerManager, UnitLimits};
use dps_core::{DpsConfig, DpsManager};
use dps_sim_core::rng::RngStream;

fn variant(name: &str) -> DpsConfig {
    let base = DpsConfig::default();
    match name {
        "no-kalman" => base.without_kalman(),
        "no-freq" => base.without_frequency_detection(),
        "no-restore" => base.without_restore(),
        _ => base,
    }
}

fn bench_variants(c: &mut Criterion) {
    let mut group = c.benchmark_group("dps_variant_step_20_units");
    for name in ["full", "no-kalman", "no-freq", "no-restore"] {
        let cfg = variant(name);
        let mut mgr: Box<dyn PowerManager> = Box::new(DpsManager::new(
            20,
            2200.0,
            UnitLimits::xeon_gold_6240(),
            cfg,
            RngStream::new(1, "bench-ablation"),
        ));
        let mut churn = Churn::new(20);
        for _ in 0..32 {
            churn.drive(mgr.as_mut());
        }
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| churn.drive(mgr.as_mut()));
        });
    }
    group.finish();
}

fn bench_history_length(c: &mut Criterion) {
    // The history window is DPS's only state; its length is the paper's
    // principal tunable (default 20, §6.5). Cost should scale ~linearly.
    let mut group = c.benchmark_group("dps_history_length_step");
    for &len in &[10usize, 20, 40, 80] {
        let cfg = DpsConfig {
            history_len: len,
            ..DpsConfig::default()
        };
        let mut mgr: Box<dyn PowerManager> = Box::new(DpsManager::new(
            20,
            2200.0,
            UnitLimits::xeon_gold_6240(),
            cfg,
            RngStream::new(2, "bench-histlen"),
        ));
        let mut churn = Churn::new(20);
        for _ in 0..(len + 12) {
            churn.drive(mgr.as_mut());
        }
        group.bench_function(BenchmarkId::from_parameter(len), |b| {
            b.iter(|| churn.drive(mgr.as_mut()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_variants, bench_history_length);
criterion_main!(benches);
