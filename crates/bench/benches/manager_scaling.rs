//! §6.5 controller-scaling bench: decision-cycle cost of every manager at
//! testbed scale, and DPS/SLURM scaling toward "tens of thousands of
//! nodes". The paper's claim is that the controller's compute stays a
//! negligible fraction of the one-second decision period; the
//! `Criterion` throughput lines make the per-unit cost visible.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dps_bench::{dps_manager_with_mode, manager_for, Churn};
use dps_core::config::StatsMode;
use dps_core::manager::ManagerKind;

fn bench_all_managers_testbed(c: &mut Criterion) {
    let mut group = c.benchmark_group("manager_step_20_units");
    for kind in [
        ManagerKind::Constant,
        ManagerKind::Slurm,
        ManagerKind::Dps,
        ManagerKind::Oracle,
    ] {
        let mut mgr = manager_for(kind, 20);
        let mut churn = Churn::new(20);
        // Warm the histories so DPS benches its steady state.
        for _ in 0..32 {
            churn.drive(mgr.as_mut());
        }
        group.bench_function(BenchmarkId::from_parameter(kind), |b| {
            b.iter(|| churn.drive(mgr.as_mut()));
        });
    }
    group.finish();
}

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("manager_step_scaling");
    group.sample_size(20);
    for &n in &[20usize, 200, 2_000, 20_000] {
        group.throughput(Throughput::Elements(n as u64));
        for kind in [ManagerKind::Slurm, ManagerKind::Dps] {
            let mut mgr = manager_for(kind, n);
            let mut churn = Churn::new(n);
            for _ in 0..24 {
                churn.drive(mgr.as_mut());
            }
            group.bench_function(BenchmarkId::new(kind.to_string(), n), |b| {
                b.iter(|| churn.drive(mgr.as_mut()));
            });
        }
    }
    group.finish();
}

/// Incremental rolling statistics vs the pre-optimization full-window
/// rescan, at the unit counts the scaling claim quotes. The wall-clock
/// evidence for the speedup table lives in the `scale` experiment
/// (`results/BENCH_manager_scaling.json`); this group keeps both paths
/// under Criterion so regressions in either show up in `cargo bench`.
fn bench_stats_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("dps_step_stats_mode");
    group.sample_size(10);
    for &n in &[64usize, 1_024, 16_384] {
        group.throughput(Throughput::Elements(n as u64));
        for (label, mode) in [
            ("incremental", StatsMode::Incremental),
            ("rescan", StatsMode::Rescan),
        ] {
            let mut mgr = dps_manager_with_mode(n, mode);
            let mut churn = Churn::new(n);
            for _ in 0..24 {
                churn.drive(&mut mgr);
            }
            group.bench_function(BenchmarkId::new(label, n), |b| {
                b.iter(|| churn.drive(&mut mgr));
            });
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_all_managers_testbed,
    bench_scaling,
    bench_stats_modes
);
criterion_main!(benches);
