//! Shared helpers for the Criterion benches.
//!
//! The benches mirror the paper's evaluation at reduced scale so `cargo
//! bench` finishes in minutes: per-module microbenches quantify the §6.5
//! overhead claims, `manager_scaling` reproduces the controller-scaling
//! argument, `figures` runs one representative pair per figure, and
//! `ablation` prices each DPS mechanism.

use dps_cluster::ExperimentConfig;
use dps_core::config::StatsMode;
use dps_core::manager::{ManagerKind, PowerManager};
use dps_core::DpsManager;
use dps_rapl::Topology;
use dps_sim_core::rng::RngStream;

/// A reduced experiment configuration for benches: paper parameters but a
/// 2×1×2 topology, one repetition, and no measurement noise.
pub fn bench_config() -> ExperimentConfig {
    let mut cfg = ExperimentConfig::paper_default(42, 1);
    cfg.sim.topology = Topology::new(2, 1, 2);
    cfg.sim.noise = dps_rapl::NoiseModel::None;
    cfg.max_steps = 60_000;
    cfg
}

/// Builds a manager of `kind` for `n` units at 110 W/unit budget.
pub fn manager_for(kind: ManagerKind, n: usize) -> Box<dyn PowerManager> {
    let mut cfg = ExperimentConfig::paper_default(7, 1);
    cfg.sim.topology = Topology::new(1, n, 1);
    cfg.build_manager(kind)
}

/// Builds a DPS manager for `n` units with an explicit statistics mode —
/// `Rescan` is the pre-optimization O(window) reference path, `Incremental`
/// the rolling-accumulator path; the `manager_scaling` bench compares them.
pub fn dps_manager_with_mode(n: usize, mode: StatsMode) -> DpsManager {
    let mut cfg = ExperimentConfig::paper_default(7, 1);
    cfg.sim.topology = Topology::new(1, n, 1);
    cfg.dps = cfg.dps.with_stats_mode(mode);
    let budget = cfg.sim.total_budget();
    let limits = cfg.limits();
    DpsManager::new(n, budget, limits, cfg.dps, RngStream::new(7, "manager/DPS"))
}

/// A deterministic churning load driver for manager-step benches.
pub struct Churn {
    pub measured: Vec<f64>,
    pub caps: Vec<f64>,
    step: usize,
}

impl Churn {
    /// Creates a churn of `n` units with warmed-up phases.
    pub fn new(n: usize) -> Self {
        let mut rng = RngStream::new(3, "bench-churn");
        let measured = (0..n).map(|_| rng.range(40.0..160.0)).collect();
        Self {
            measured,
            caps: vec![110.0; n],
            step: 0,
        }
    }

    /// Advances the synthetic load one cycle and drives the manager.
    pub fn drive(&mut self, mgr: &mut dyn PowerManager) {
        self.step += 1;
        for (u, m) in self.measured.iter_mut().enumerate() {
            let phase = ((self.step + u) % 20) as f64 / 20.0;
            *m = (40.0 + 120.0 * phase).min(self.caps[u]);
        }
        mgr.observe_demands(&self.measured);
        mgr.assign_caps(&self.measured, &mut self.caps, 1.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_config_is_small() {
        let cfg = bench_config();
        assert_eq!(cfg.sim.topology.total_units(), 4);
        assert_eq!(cfg.reps, 1);
    }

    #[test]
    fn churn_drives_all_managers() {
        for kind in [
            ManagerKind::Constant,
            ManagerKind::Slurm,
            ManagerKind::Dps,
            ManagerKind::Oracle,
        ] {
            let mut mgr = manager_for(kind, 8);
            let mut churn = Churn::new(8);
            for _ in 0..50 {
                churn.drive(mgr.as_mut());
            }
            let sum: f64 = churn.caps.iter().sum();
            assert!(sum <= mgr.total_budget() + 1e-6, "{kind}: {sum}");
        }
    }
}
