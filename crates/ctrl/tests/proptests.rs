//! Property tests for the framed control plane's transport layer.

use dps_ctrl::{Frame, LinkConfig, LossyLink};
use dps_sim_core::RngStream;
use proptest::prelude::*;

/// Drains a link far past every in-flight due time.
fn drain(link: &mut LossyLink, until: f64) -> Vec<(u32, Option<Frame>)> {
    let mut out = Vec::new();
    let mut now = 0.0;
    while now <= until {
        out.extend(link.deliver(now));
        now += 0.05;
    }
    out
}

proptest! {
    /// Decoding never panics, whatever three bytes arrive; it returns
    /// `Some` exactly for the four known tags.
    #[test]
    fn decode_never_panics(bytes in any::<[u8; 3]>()) {
        let decoded = Frame::decode(bytes);
        prop_assert_eq!(decoded.is_some(), (0x01..=0x04).contains(&bytes[0]));
        // And whatever decoded must re-encode to the same bytes.
        if let Some(frame) = decoded {
            prop_assert_eq!(frame.encode(), bytes);
        }
    }

    /// Every valid frame of every variant survives encode → decode.
    #[test]
    fn all_variants_roundtrip(payload in any::<u16>(), variant in 0u8..4) {
        let frame = match variant {
            0 => Frame::PowerReport { deciwatts: payload },
            1 => Frame::SetCap { deciwatts: payload },
            2 => Frame::Poll { seq: payload },
            _ => Frame::CapAck { deciwatts: payload },
        };
        prop_assert_eq!(Frame::decode(frame.encode()), Some(frame));
    }

    /// Whatever the loss configuration, the delivered set is a subset of
    /// the sent set: every delivered, uncorrupted frame is one the sender
    /// put on the wire (identified by its unique unit id), and no frame
    /// arrives more than the duplication config allows.
    #[test]
    fn delivered_is_subset_of_sent(
        seed in any::<u64>(),
        drop_prob in 0.0f64..1.0,
        duplicate in any::<bool>(),
        n_frames in 1usize..60,
    ) {
        let config = LinkConfig {
            drop_prob,
            duplicate_prob: if duplicate { 0.3 } else { 0.0 },
            ..LinkConfig::default()
        };
        let mut link = LossyLink::new(config, RngStream::new(seed, "prop-link"));
        for unit in 0..n_frames as u32 {
            link.send(unit as f64 * 0.01, unit, Frame::SetCap { deciwatts: unit as u16 });
        }
        let delivered = drain(&mut link, 2.0);
        prop_assert_eq!(link.pending(), 0);
        let mut copies = vec![0usize; n_frames];
        for (unit, frame) in delivered {
            // Subset: the unit id was sent, and (corruption is off) the
            // payload is exactly what that send carried.
            prop_assert!((unit as usize) < n_frames, "unknown frame delivered");
            prop_assert_eq!(frame, Some(Frame::SetCap { deciwatts: unit as u16 }));
            copies[unit as usize] += 1;
        }
        let max_copies = if duplicate { 2 } else { 1 };
        for (unit, &c) in copies.iter().enumerate() {
            prop_assert!(
                c <= max_copies,
                "unit {unit} delivered {c} times (max {max_copies})"
            );
        }
    }

    /// With a lossless configuration every frame arrives exactly once.
    #[test]
    fn lossless_link_delivers_exactly_once(seed in any::<u64>(), n_frames in 1usize..60) {
        let mut link = LossyLink::new(LinkConfig::default(), RngStream::new(seed, "prop-link"));
        for unit in 0..n_frames as u32 {
            link.send(0.0, unit, Frame::Poll { seq: unit as u16 });
        }
        let delivered = drain(&mut link, 1.0);
        prop_assert_eq!(delivered.len(), n_frames);
    }

    /// Two links built from the same seed replay the identical delivery
    /// sequence — drops, jitter, duplication and all.
    #[test]
    fn per_seed_determinism(
        seed in any::<u64>(),
        sends in prop::collection::vec(0u16..1000, 1..40),
    ) {
        let config = LinkConfig {
            drop_prob: 0.2,
            duplicate_prob: 0.1,
            corrupt_prob: 0.1,
            jitter: 20e-6,
            ..LinkConfig::default()
        };
        let build = || LossyLink::new(config, RngStream::new(seed, "prop-link"));
        let mut a = build();
        let mut b = build();
        for (i, &dw) in sends.iter().enumerate() {
            let t = i as f64 * 0.001;
            a.send(t, i as u32, Frame::PowerReport { deciwatts: dw });
            b.send(t, i as u32, Frame::PowerReport { deciwatts: dw });
        }
        prop_assert_eq!(drain(&mut a, 1.0), drain(&mut b, 1.0));
        prop_assert_eq!(a.counters(), b.counters());
    }
}
