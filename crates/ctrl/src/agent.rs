//! The per-node client agent.
//!
//! One agent runs on every compute node and owns the node's RAPL
//! interface for the control plane: it answers [`Frame::Poll`] requests
//! with power reports and applies [`Frame::SetCap`] assignments,
//! acknowledging the cap it actually programmed. The agent is
//! deliberately dumb — all policy lives in the controller — but it
//! encodes the two safety behaviours the cluster relies on:
//!
//! * **Hold through silence.** A cap stays programmed until replaced.
//!   Losing contact with the controller never changes the node's power
//!   draw (the hardware keeps the last value even if the agent itself
//!   dies).
//! * **Boot at the floor.** A (re)starting agent programs the minimum cap
//!   on all its units before answering traffic, so a rejoining node is
//!   always safe to readmit once its floor assignment is acknowledged.

use crate::frame::Frame;
use dps_core::manager::UnitLimits;
use dps_sim_core::units::Watts;

/// The control-plane daemon of one node.
#[derive(Debug, Clone)]
pub struct NodeAgent {
    /// First flat unit index this agent owns.
    unit_base: usize,
    /// Caps currently programmed into the node's units. Indexed by local
    /// unit (0..units_per_node); survives agent crashes — this models the
    /// hardware registers, which outlive the daemon.
    caps: Vec<Watts>,
    /// Hardware capping limits (known locally; used to sanity-clamp
    /// requested caps, which bounds the damage of a corrupted payload).
    limits: UnitLimits,
    /// Whether the daemon is running.
    up: bool,
}

impl NodeAgent {
    /// An agent owning flat units `unit_base .. unit_base + n_units`, with
    /// `initial_cap` programmed (the cluster's boot-time constant split).
    pub fn new(unit_base: usize, n_units: usize, initial_cap: Watts, limits: UnitLimits) -> Self {
        Self {
            unit_base,
            caps: vec![limits.clamp(initial_cap); n_units],
            limits,
            up: true,
        }
    }

    /// Whether the daemon is running.
    pub fn is_up(&self) -> bool {
        self.up
    }

    /// Caps currently programmed (local unit order). Valid even while the
    /// daemon is down — hardware holds the last programmed values.
    pub fn caps(&self) -> &[Watts] {
        &self.caps
    }

    /// Kills the daemon. Programmed caps stay in the hardware.
    pub fn crash(&mut self) {
        self.up = false;
    }

    /// Restarts the daemon. Every unit is programmed to the floor cap
    /// before the agent answers any traffic: the controller's readmission
    /// reserve assumes exactly this.
    pub fn reboot(&mut self) {
        self.up = true;
        for cap in &mut self.caps {
            *cap = self.limits.min_cap;
        }
    }

    /// Handles one incoming frame addressed to flat unit `unit`, given the
    /// node's current raw power readings (indexed by flat unit). Returns
    /// the response frame to send back, if any. A down agent (or a frame
    /// for a unit this agent does not own) is silent.
    pub fn handle(&mut self, unit: u32, frame: Frame, readings: &[Watts]) -> Option<Frame> {
        if !self.up {
            return None;
        }
        let local = (unit as usize).checked_sub(self.unit_base)?;
        if local >= self.caps.len() {
            return None;
        }
        match frame {
            Frame::Poll { .. } => Some(Frame::power_report(readings[unit as usize])),
            Frame::SetCap { deciwatts } => {
                let requested = Frame::SetCap { deciwatts }.watts();
                let applied = self.limits.clamp(requested);
                self.caps[local] = applied;
                Some(Frame::cap_ack(applied))
            }
            // Server-bound frames make no sense here; drop them (they can
            // only appear via corruption flipping a tag into another valid
            // tag).
            Frame::PowerReport { .. } | Frame::CapAck { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn limits() -> UnitLimits {
        UnitLimits {
            min_cap: 40.0,
            max_cap: 165.0,
        }
    }

    fn agent() -> NodeAgent {
        NodeAgent::new(4, 2, 110.0, limits())
    }

    #[test]
    fn poll_reports_unit_reading() {
        let mut a = agent();
        let mut readings = vec![0.0; 8];
        readings[5] = 123.45;
        let resp = a.handle(5, Frame::Poll { seq: 1 }, &readings).unwrap();
        assert_eq!(resp, Frame::power_report(123.45));
    }

    #[test]
    fn set_cap_applies_and_acks() {
        let mut a = agent();
        let resp = a.handle(4, Frame::set_cap(95.3), &[0.0; 8]).unwrap();
        assert_eq!(resp, Frame::cap_ack(95.3));
        assert!((a.caps()[0] - 95.3).abs() < 1e-9);
        assert!((a.caps()[1] - 110.0).abs() < 1e-9, "other unit untouched");
    }

    #[test]
    fn corrupted_cap_clamped_to_limits() {
        let mut a = agent();
        // A corrupted payload asking for 6000 W gets clamped to TDP, and
        // the ack reports the clamped value so the controller notices.
        let resp = a.handle(4, Frame::set_cap(6000.0), &[0.0; 8]).unwrap();
        assert_eq!(resp, Frame::cap_ack(165.0));
        assert_eq!(a.caps()[0], 165.0);
    }

    #[test]
    fn down_agent_is_silent_but_holds_caps() {
        let mut a = agent();
        a.handle(4, Frame::set_cap(90.0), &[0.0; 8]);
        a.crash();
        assert!(a.handle(4, Frame::Poll { seq: 0 }, &[0.0; 8]).is_none());
        assert!(a.handle(4, Frame::set_cap(50.0), &[0.0; 8]).is_none());
        assert!((a.caps()[0] - 90.0).abs() < 1e-9, "hardware holds the cap");
    }

    #[test]
    fn reboot_programs_floor() {
        let mut a = agent();
        a.handle(4, Frame::set_cap(150.0), &[0.0; 8]);
        a.crash();
        a.reboot();
        assert!(a.is_up());
        assert_eq!(a.caps(), &[40.0, 40.0]);
    }

    #[test]
    fn foreign_units_ignored() {
        let mut a = agent();
        assert!(a.handle(3, Frame::Poll { seq: 0 }, &[0.0; 8]).is_none());
        assert!(a.handle(6, Frame::set_cap(50.0), &[0.0; 8]).is_none());
    }

    #[test]
    fn server_bound_frames_dropped() {
        let mut a = agent();
        assert!(a.handle(4, Frame::power_report(10.0), &[0.0; 8]).is_none());
        assert!(a.handle(4, Frame::cap_ack(10.0), &[0.0; 8]).is_none());
    }
}
