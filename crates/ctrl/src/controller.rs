//! The server-side controller bookkeeping.
//!
//! This module is the pure decision core of the framed control plane: it
//! tracks what each node last reported (hold-last telemetry), which nodes
//! are live or stale, and — the part everything else bends around — a
//! *believed-applied* cap per unit that is maintained pessimistically
//! high, so that
//!
//! > **the sum of caps believed applied on live nodes never exceeds the
//! > cluster budget** (plus the deciwatt quantization slack of
//! > [`wire_slack`]).
//!
//! The rules that make the invariant hold:
//!
//! * A sent cap *raises* the believed value immediately (the assignment
//!   may land even if its ack is lost); an acknowledged cap *replaces* it.
//!   Lowering therefore only takes effect on ack, raising at send time —
//!   belief always errs high.
//! * Raises are granted one unit at a time against the live believed sum,
//!   after lowers have been given the chance to complete (the plane's
//!   two-phase scatter).
//! * A node missing `stale_after` consecutive gathers is declared stale:
//!   its budget share above the per-unit floor is reclaimed for live
//!   nodes, and the floor itself stays reserved. A stale node is readmitted
//!   only after acknowledging floor caps, which is exactly what the
//!   reserve guarantees fits — so readmission can never break the budget,
//!   whether the node crashed (rebooting agents program the floor) or was
//!   merely partitioned (the floor assignment lands when the partition
//!   heals, before readmission).
//!
//! Transport, timing and retries live in [`crate::plane`]; nothing here
//! touches a link.

use crate::frame::{wire_slack, Frame};
use crate::stats::CtrlStats;
use dps_core::manager::UnitLimits;
use dps_sim_core::units::Watts;

/// Controller-side cluster state.
#[derive(Debug, Clone)]
pub struct Controller {
    n_nodes: usize,
    units_per_node: usize,
    budget: Watts,
    limits: UnitLimits,
    stale_after: u32,
    /// The floor cap as it comes back over the wire (min_cap quantized).
    floor_wire: Watts,

    /// Hold-last power telemetry per unit.
    telemetry: Vec<Watts>,
    /// Cap believed applied per unit (pessimistically high).
    believed: Vec<Watts>,
    /// Liveness per node.
    live: Vec<bool>,
    /// Consecutive fully-missed gather cycles per node.
    misses: Vec<u32>,
    /// Per-epoch: unit reported this gather.
    reported: Vec<bool>,
    /// Per-epoch: unit acknowledged a floor cap (readmission evidence).
    floor_acked: Vec<bool>,

    gather_misses: u64,
    stale_transitions: u64,
    readmissions: u64,
    raises_deferred: u64,
    reclaimed_watt_cycles: f64,
    cycles: u64,
    worst_budget_excess: Watts,
}

impl Controller {
    /// A controller for `n_nodes × units_per_node` units under `budget`,
    /// with `initial_cap` programmed everywhere (the cluster's boot
    /// constant split).
    pub fn new(
        n_nodes: usize,
        units_per_node: usize,
        budget: Watts,
        limits: UnitLimits,
        initial_cap: Watts,
    ) -> Self {
        let n = n_nodes * units_per_node;
        assert!(n > 0, "topology must have at least one unit");
        limits
            .check_feasible(budget, n)
            .expect("budget covers the floor");
        Self {
            n_nodes,
            units_per_node,
            budget,
            limits,
            stale_after: 1,
            floor_wire: Frame::set_cap(limits.min_cap).watts(),
            telemetry: vec![0.0; n],
            believed: vec![limits.clamp(initial_cap); n],
            live: vec![true; n_nodes],
            misses: vec![0; n_nodes],
            reported: vec![false; n],
            floor_acked: vec![false; n],
            gather_misses: 0,
            stale_transitions: 0,
            readmissions: 0,
            raises_deferred: 0,
            reclaimed_watt_cycles: 0.0,
            cycles: 0,
            worst_budget_excess: 0.0,
        }
    }

    /// Sets the staleness threshold (consecutive missed gathers).
    pub fn set_stale_after(&mut self, k: u32) {
        assert!(k >= 1, "stale_after must be at least 1");
        self.stale_after = k;
    }

    /// Rebases the controller onto a new cluster budget (dynamic budget
    /// schedules). Beliefs are untouched — they describe what the hardware
    /// holds, not what it should hold; after a downward move the next
    /// epoch's lowers complete before raises are granted against the new
    /// headroom, so the believed-cap invariant re-converges within one
    /// decide→scatter round.
    pub fn set_budget(&mut self, budget: Watts) {
        assert!(
            budget.is_finite() && budget > 0.0,
            "budget must be finite and positive"
        );
        self.limits
            .check_feasible(budget, self.believed.len())
            .expect("budget covers the floor");
        self.budget = budget;
    }

    fn node_of(&self, unit: usize) -> usize {
        unit / self.units_per_node
    }

    fn node_units(&self, node: usize) -> std::ops::Range<usize> {
        node * self.units_per_node..(node + 1) * self.units_per_node
    }

    /// Starts a gather→decide→scatter epoch.
    pub fn begin_epoch(&mut self) {
        self.reported.fill(false);
        self.floor_acked.fill(false);
    }

    /// Records a power report for a unit (updates hold-last telemetry).
    pub fn record_report(&mut self, unit: usize, watts: Watts) {
        self.telemetry[unit] = watts;
        self.reported[unit] = true;
    }

    /// Has the unit reported this epoch?
    pub fn unit_reported(&self, unit: usize) -> bool {
        self.reported[unit]
    }

    /// Closes the gather phase: updates per-node miss counters and demotes
    /// nodes that crossed the staleness threshold.
    pub fn end_gather(&mut self) {
        for node in 0..self.n_nodes {
            let complete = self.node_units(node).all(|u| self.reported[u]);
            if complete {
                self.misses[node] = 0;
            } else {
                self.misses[node] = self.misses[node].saturating_add(1);
                self.gather_misses += 1;
                if self.live[node] && self.misses[node] >= self.stale_after {
                    self.live[node] = false;
                    self.stale_transitions += 1;
                }
            }
        }
    }

    /// Hold-last telemetry (what the manager sees). Units on stale nodes
    /// keep their last known value — the staleness policy is "hold, don't
    /// zero": a missing report says nothing about the node's power.
    pub fn telemetry(&self) -> &[Watts] {
        &self.telemetry
    }

    /// Liveness of a node.
    pub fn node_live(&self, node: usize) -> bool {
        self.live[node]
    }

    /// Number of live nodes.
    pub fn live_count(&self) -> usize {
        self.live.iter().filter(|l| **l).count()
    }

    /// Rewrites the manager's proposals for the cluster's actual health:
    /// every unit on a non-live node is pinned to the floor cap (the
    /// readmission reserve), and the budget thereby freed is redistributed
    /// to live units proportionally to their proposals, clamped at the
    /// unit maximum. With every node live this is the identity.
    pub fn postprocess(&mut self, proposals: &mut [Watts]) {
        debug_assert_eq!(proposals.len(), self.believed.len());
        let floor = self.limits.min_cap;
        let mut spare = 0.0;
        let mut live_sum = 0.0;
        let mut live_units = 0usize;
        for (u, p) in proposals.iter_mut().enumerate() {
            if self.live[self.node_of(u)] {
                live_sum += *p;
                live_units += 1;
            } else {
                spare += (*p - floor).max(0.0);
                *p = floor;
            }
        }
        if spare <= 0.0 || live_units == 0 {
            return;
        }
        self.reclaimed_watt_cycles += spare;
        // One proportional pass; whatever the max-cap clamp refuses is
        // simply left unspent (the safe direction).
        for (u, p) in proposals.iter_mut().enumerate() {
            if self.live[self.node_of(u)] {
                let share = if live_sum > 0.0 {
                    spare * (*p / live_sum)
                } else {
                    spare / live_units as f64
                };
                *p = self.limits.clamp(*p + share);
            }
        }
    }

    /// Believed-applied caps per unit.
    pub fn believed(&self) -> &[Watts] {
        &self.believed
    }

    /// Sum of believed-applied caps over live nodes' units.
    pub fn live_believed_sum(&self) -> Watts {
        self.believed
            .iter()
            .enumerate()
            .filter(|(u, _)| self.live[self.node_of(*u)])
            .map(|(_, b)| *b)
            .sum()
    }

    /// Records that a cap assignment was put on the wire. Belief only
    /// moves *up* here: a raise must be counted the moment it might land,
    /// while a lower counts only once acknowledged.
    pub fn note_cap_sent(&mut self, unit: usize, watts: Watts) {
        self.believed[unit] = self.believed[unit].max(watts);
    }

    /// Records an acknowledged cap whose value matches the assignment the
    /// plane last sent for the unit — the agent's word for what is now
    /// programmed.
    pub fn note_cap_acked(&mut self, unit: usize, watts: Watts) {
        self.believed[unit] = watts;
        if (watts - self.floor_wire).abs() < 1e-9 {
            self.floor_acked[unit] = true;
        }
    }

    /// Records an acknowledgement that did *not* match what was sent (a
    /// corrupted assignment the agent applied anyway) after retries ran
    /// out. Belief absorbs the reported value pessimistically.
    pub fn note_unexpected_applied(&mut self, unit: usize, watts: Watts) {
        self.believed[unit] = self.believed[unit].max(watts);
    }

    /// Asks permission to raise `unit` to `target` (wire-quantized Watts).
    /// Granting updates the believed cap immediately; refusal (the raise
    /// would push the live believed sum past budget) leaves state
    /// untouched and is counted.
    pub fn grant_raise(&mut self, unit: usize, target: Watts) -> bool {
        let headroom = self.budget + wire_slack(self.believed.len());
        let sum = self.live_believed_sum() - self.believed[unit] + target;
        if sum <= headroom {
            self.believed[unit] = self.believed[unit].max(target);
            true
        } else {
            self.raises_deferred += 1;
            false
        }
    }

    /// Closes the epoch: readmits stale nodes whose every unit
    /// acknowledged a floor cap this epoch, then checks the budget-safety
    /// invariant. Returns true when the invariant held.
    pub fn end_epoch(&mut self) -> bool {
        for node in 0..self.n_nodes {
            if !self.live[node] && self.node_units(node).all(|u| self.floor_acked[u]) {
                self.live[node] = true;
                self.misses[node] = 0;
                for u in self.node_units(node) {
                    self.believed[u] = self.floor_wire;
                }
                self.readmissions += 1;
            }
        }
        self.cycles += 1;
        // No assert here: under payload corruption a rogue cap the agent
        // confirmed can push belief past budget until the corrective
        // re-send lands — the controller's job is to *observe* that
        // honestly and repair it, and callers decide how to react.
        let excess = self.live_believed_sum() - (self.budget + wire_slack(self.believed.len()));
        if excess > self.worst_budget_excess {
            self.worst_budget_excess = excess;
        }
        excess <= 0.0
    }

    /// Folds the controller's counters into a stats record.
    pub fn fill_stats(&self, stats: &mut CtrlStats) {
        stats.gather_misses = self.gather_misses;
        stats.stale_transitions = self.stale_transitions;
        stats.readmissions = self.readmissions;
        stats.raises_deferred = self.raises_deferred;
        stats.reclaimed_watt_cycles = self.reclaimed_watt_cycles;
        stats.cycles = self.cycles;
        stats.worst_budget_excess = self.worst_budget_excess;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn limits() -> UnitLimits {
        UnitLimits {
            min_cap: 40.0,
            max_cap: 165.0,
        }
    }

    /// 2 nodes × 2 units, 440 W budget, 110 W everywhere.
    fn ctrl() -> Controller {
        let mut c = Controller::new(2, 2, 440.0, limits(), 110.0);
        c.set_stale_after(2);
        c
    }

    fn full_gather(c: &mut Controller, watts: Watts) {
        c.begin_epoch();
        for u in 0..4 {
            c.record_report(u, watts);
        }
        c.end_gather();
    }

    #[test]
    fn full_reports_keep_everyone_live() {
        let mut c = ctrl();
        for _ in 0..5 {
            full_gather(&mut c, 100.0);
            assert!(c.node_live(0) && c.node_live(1));
            c.end_epoch();
        }
        assert_eq!(c.live_count(), 2);
    }

    #[test]
    fn k_misses_demote_a_node() {
        let mut c = ctrl();
        // Node 1 goes silent; k = 2.
        c.begin_epoch();
        c.record_report(0, 100.0);
        c.record_report(1, 100.0);
        c.end_gather();
        assert!(c.node_live(1), "one miss is not enough");
        c.end_epoch();
        c.begin_epoch();
        c.record_report(0, 100.0);
        c.record_report(1, 100.0);
        c.end_gather();
        assert!(!c.node_live(1), "second consecutive miss demotes");
    }

    #[test]
    fn partial_report_counts_as_miss() {
        let mut c = ctrl();
        for _ in 0..2 {
            c.begin_epoch();
            c.record_report(0, 100.0);
            c.record_report(1, 100.0);
            c.record_report(2, 100.0); // unit 3 missing
            c.end_gather();
            c.end_epoch();
        }
        assert!(!c.node_live(1));
    }

    #[test]
    fn intermittent_misses_do_not_demote() {
        let mut c = ctrl();
        for round in 0..6 {
            c.begin_epoch();
            c.record_report(0, 100.0);
            c.record_report(1, 100.0);
            if round % 2 == 0 {
                c.record_report(2, 100.0);
                c.record_report(3, 100.0);
            }
            c.end_gather();
            c.end_epoch();
        }
        assert!(c.node_live(1), "alternating misses never reach k=2");
    }

    #[test]
    fn telemetry_holds_last_value_through_silence() {
        let mut c = ctrl();
        full_gather(&mut c, 123.0);
        c.end_epoch();
        c.begin_epoch();
        c.record_report(0, 80.0);
        c.end_gather();
        assert_eq!(c.telemetry()[0], 80.0);
        assert_eq!(c.telemetry()[3], 123.0, "held through the miss");
    }

    #[test]
    fn postprocess_identity_when_all_live() {
        let mut c = ctrl();
        let mut p = vec![120.0, 100.0, 115.0, 105.0];
        let expect = p.clone();
        c.postprocess(&mut p);
        assert_eq!(p, expect);
    }

    #[test]
    fn postprocess_reclaims_stale_budget_above_floor() {
        let mut c = ctrl();
        for _ in 0..2 {
            c.begin_epoch();
            c.record_report(0, 100.0);
            c.record_report(1, 100.0);
            c.end_gather();
            c.end_epoch();
        }
        assert!(!c.node_live(1));
        let mut p = vec![110.0, 110.0, 110.0, 110.0];
        c.postprocess(&mut p);
        assert_eq!(p[2], 40.0);
        assert_eq!(p[3], 40.0);
        // 2 × 70 W reclaimed, split proportionally over the live pair,
        // clamped at 165 W.
        assert!((p[0] - 165.0).abs() < 1e-9, "{p:?}");
        assert!((p[1] - 165.0).abs() < 1e-9);
        assert!(p.iter().sum::<f64>() <= 440.0 + 1e-9);
    }

    #[test]
    fn believed_rises_on_send_falls_on_ack() {
        let mut c = ctrl();
        c.begin_epoch();
        // Lower: belief stays high until acked.
        c.note_cap_sent(0, 80.0);
        assert_eq!(c.believed()[0], 110.0);
        c.note_cap_acked(0, 80.0);
        assert_eq!(c.believed()[0], 80.0);
        // Raise: belief moves at grant time, before any ack. The sum is
        // back at 440 = budget, which the slack admits.
        assert!(c.grant_raise(0, 110.0));
        assert_eq!(c.believed()[0], 110.0);
    }

    #[test]
    fn grant_raise_enforces_budget() {
        let mut c = ctrl();
        // Believed sits at 4 × 110 = 440 = budget. Raising anyone without
        // a completed lower must be refused.
        assert!(!c.grant_raise(0, 140.0));
        assert_eq!(c.believed()[0], 110.0);
        // After a lower completes, the freed headroom admits the raise.
        c.note_cap_acked(1, 80.0);
        assert!(c.grant_raise(0, 140.0));
        let mut stats = CtrlStats::default();
        c.fill_stats(&mut stats);
        assert_eq!(stats.raises_deferred, 1);
    }

    #[test]
    fn stale_node_excluded_from_live_sum() {
        let mut c = ctrl();
        for _ in 0..2 {
            c.begin_epoch();
            c.record_report(0, 100.0);
            c.record_report(1, 100.0);
            c.end_gather();
            c.end_epoch();
        }
        assert_eq!(c.live_believed_sum(), 220.0);
        // The freed 220 W admits big raises on the live node.
        assert!(c.grant_raise(0, 165.0));
        assert!(c.grant_raise(1, 165.0));
    }

    #[test]
    fn readmission_requires_full_floor_ack() {
        let mut c = ctrl();
        for _ in 0..2 {
            c.begin_epoch();
            c.record_report(0, 100.0);
            c.record_report(1, 100.0);
            c.end_gather();
            c.end_epoch();
        }
        assert!(!c.node_live(1));
        // One unit acks floor — not enough.
        c.begin_epoch();
        c.end_gather();
        c.note_cap_acked(2, 40.0);
        c.end_epoch();
        assert!(!c.node_live(1));
        // Both units ack floor — readmitted at floor belief.
        c.begin_epoch();
        c.end_gather();
        c.note_cap_acked(2, 40.0);
        c.note_cap_acked(3, 40.0);
        assert!(c.end_epoch());
        assert!(c.node_live(1));
        assert_eq!(c.believed()[2], 40.0);
        assert_eq!(c.believed()[3], 40.0);
        let mut stats = CtrlStats::default();
        c.fill_stats(&mut stats);
        assert_eq!(stats.readmissions, 1);
    }

    #[test]
    fn readmission_after_reclaim_never_breaks_budget() {
        let mut c = ctrl();
        // Demote node 1, reclaim its budget into node 0's raises.
        for _ in 0..2 {
            c.begin_epoch();
            c.record_report(0, 100.0);
            c.record_report(1, 100.0);
            c.end_gather();
            c.end_epoch();
        }
        c.begin_epoch();
        c.record_report(0, 100.0);
        c.record_report(1, 100.0);
        c.end_gather();
        assert!(c.grant_raise(0, 165.0));
        assert!(c.grant_raise(1, 165.0));
        c.note_cap_acked(0, 165.0);
        c.note_cap_acked(1, 165.0);
        // Node 1 comes back: floor acks on both units.
        c.note_cap_acked(2, 40.0);
        c.note_cap_acked(3, 40.0);
        assert!(c.end_epoch(), "330 + 80 = 410 <= 440");
        assert!(c.node_live(1));
        assert!(c.live_believed_sum() <= 440.0 + wire_slack(4));
    }

    #[test]
    fn unexpected_applied_raises_belief_only() {
        let mut c = ctrl();
        c.note_unexpected_applied(0, 150.0);
        assert_eq!(c.believed()[0], 150.0);
        c.note_unexpected_applied(0, 90.0);
        assert_eq!(c.believed()[0], 150.0, "belief never drops without ack");
    }

    #[test]
    #[should_panic(expected = "budget covers the floor")]
    fn infeasible_budget_rejected() {
        Controller::new(2, 2, 100.0, limits(), 40.0);
    }
}
