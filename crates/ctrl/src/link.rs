//! A faulty one-way transport for 3-byte frames.
//!
//! [`LossyLink`] generalises [`crate::frame::LatencyLink`]: every frame
//! still takes a base one-way latency, but the link can additionally drop
//! it, delay it by a seeded jitter (which reorders frames relative to each
//! other), duplicate it, or flip bits in its encoded bytes. Frames travel
//! as raw `[u8; 3]` and are decoded at the receiving end, so corruption
//! exercises the real `Frame::decode → None` path. All randomness comes
//! from an [`RngStream`], making every loss pattern bit-reproducible from
//! the experiment seed.

use crate::frame::{Frame, DELIVERY_EPSILON};
use dps_sim_core::rng::RngStream;
use dps_sim_core::units::Seconds;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Static fault characteristics of one link direction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkConfig {
    /// Base one-way latency in seconds (paper §6.5: "tens of
    /// microseconds" over BSD sockets).
    pub latency: Seconds,
    /// Extra per-frame delay drawn uniformly from `[0, jitter)` seconds.
    /// Nonzero jitter reorders frames whose sends are closer together than
    /// the jitter window.
    pub jitter: Seconds,
    /// Probability a frame is silently dropped in flight.
    pub drop_prob: f64,
    /// Probability a frame is delivered twice (the copy gets its own
    /// jitter draw).
    pub duplicate_prob: f64,
    /// Probability one random byte of the frame is corrupted in flight.
    pub corrupt_prob: f64,
}

impl Default for LinkConfig {
    fn default() -> Self {
        Self {
            latency: 50e-6,
            jitter: 0.0,
            drop_prob: 0.0,
            duplicate_prob: 0.0,
            corrupt_prob: 0.0,
        }
    }
}

impl LinkConfig {
    /// Checks probabilities and delays are physically meaningful.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.latency.is_finite() && self.latency >= 0.0) {
            return Err(format!(
                "latency must be non-negative, got {}",
                self.latency
            ));
        }
        if !(self.jitter.is_finite() && self.jitter >= 0.0) {
            return Err(format!("jitter must be non-negative, got {}", self.jitter));
        }
        for (name, p) in [
            ("drop_prob", self.drop_prob),
            ("duplicate_prob", self.duplicate_prob),
            ("corrupt_prob", self.corrupt_prob),
        ] {
            if !(p.is_finite() && (0.0..=1.0).contains(&p)) {
                return Err(format!("{name} must be in [0,1], got {p}"));
            }
        }
        Ok(())
    }
}

/// Delivery counters for one link direction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkCounters {
    /// Frames handed to `send`.
    pub sent: u64,
    /// Frames dropped by the loss roll.
    pub dropped: u64,
    /// Frames dropped because the link was partitioned.
    pub blocked: u64,
    /// Frames whose bytes were corrupted in flight (they may still decode).
    pub corrupted: u64,
    /// Extra copies scheduled by the duplication roll.
    pub duplicated: u64,
    /// Frames handed to the receiver (including `None` decodes).
    pub delivered: u64,
    /// Delivered frames that failed to decode.
    pub undecodable: u64,
}

/// One in-flight encoded frame. Ordering is `(due, seq)` so simultaneous
/// deliveries resolve in send order, keeping the event loop deterministic.
#[derive(Debug, Clone, Copy)]
struct InFlight {
    due: Seconds,
    seq: u64,
    unit: u32,
    bytes: [u8; 3],
}

impl PartialEq for InFlight {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}
impl Eq for InFlight {}

impl Ord for InFlight {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap and we want earliest-due first.
        other
            .due
            .total_cmp(&self.due)
            .then(other.seq.cmp(&self.seq))
    }
}
impl PartialOrd for InFlight {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A one-way link with seeded drops, jitter/reordering, duplication and
/// byte corruption.
#[derive(Debug, Clone)]
pub struct LossyLink {
    config: LinkConfig,
    rng: RngStream,
    in_flight: BinaryHeap<InFlight>,
    next_seq: u64,
    /// While partitioned, every send is discarded (frames already in
    /// flight still deliver — they left before the partition).
    partitioned: bool,
    /// Additional corruption probability from an active fault burst.
    corrupt_boost: f64,
    counters: LinkCounters,
}

impl LossyLink {
    /// Creates a link; `rng` must be a dedicated stream for this link
    /// direction (its consumption pattern depends on traffic).
    pub fn new(config: LinkConfig, rng: RngStream) -> Self {
        config.validate().expect("invalid link config");
        Self {
            config,
            rng,
            in_flight: BinaryHeap::new(),
            next_seq: 0,
            partitioned: false,
            corrupt_boost: 0.0,
            counters: LinkCounters::default(),
        }
    }

    /// The link's static configuration.
    pub fn config(&self) -> &LinkConfig {
        &self.config
    }

    /// Sets/clears the partition state (a partitioned link discards sends).
    pub fn set_partitioned(&mut self, partitioned: bool) {
        self.partitioned = partitioned;
    }

    /// Sets the additional corruption probability of an active burst.
    pub fn set_corrupt_boost(&mut self, boost: f64) {
        self.corrupt_boost = boost.clamp(0.0, 1.0);
    }

    /// Sends a frame for `unit` at time `now`. The frame may be dropped,
    /// corrupted, jittered or duplicated according to the configuration;
    /// each outcome consumes a fixed RNG roll sequence so per-seed traffic
    /// is reproducible.
    pub fn send(&mut self, now: Seconds, unit: u32, frame: Frame) {
        self.counters.sent += 1;
        if self.partitioned {
            self.counters.blocked += 1;
            return;
        }
        if self.rng.chance(self.config.drop_prob) {
            self.counters.dropped += 1;
            return;
        }
        let mut bytes = frame.encode();
        let corrupt_prob = (self.config.corrupt_prob + self.corrupt_boost).clamp(0.0, 1.0);
        if self.rng.chance(corrupt_prob) {
            let idx = self.rng.range(0..3usize);
            let mask = self.rng.range(1..=255u8);
            bytes[idx] ^= mask;
            self.counters.corrupted += 1;
        }
        self.schedule(now, unit, bytes);
        if self.rng.chance(self.config.duplicate_prob) {
            self.counters.duplicated += 1;
            self.schedule(now, unit, bytes);
        }
    }

    fn schedule(&mut self, now: Seconds, unit: u32, bytes: [u8; 3]) {
        let jitter = if self.config.jitter > 0.0 {
            self.rng.range(0.0..self.config.jitter)
        } else {
            0.0
        };
        self.in_flight.push(InFlight {
            due: now + self.config.latency + jitter,
            seq: self.next_seq,
            unit,
            bytes,
        });
        self.next_seq += 1;
    }

    /// Drains every frame deliverable at or before `now`, in `(due, send)`
    /// order. Each entry decodes at the receiving end: `None` means the
    /// frame arrived but its tag byte was corrupted beyond recognition.
    pub fn deliver(&mut self, now: Seconds) -> Vec<(u32, Option<Frame>)> {
        let mut out = Vec::new();
        while let Some(head) = self.in_flight.peek() {
            if head.due <= now + DELIVERY_EPSILON {
                let head = self.in_flight.pop().expect("peeked entry");
                let frame = Frame::decode(head.bytes);
                self.counters.delivered += 1;
                if frame.is_none() {
                    self.counters.undecodable += 1;
                }
                out.push((head.unit, frame));
            } else {
                break;
            }
        }
        out
    }

    /// Earliest in-flight due time, if any frames are pending.
    pub fn next_due(&self) -> Option<Seconds> {
        self.in_flight.peek().map(|f| f.due)
    }

    /// Frames currently in flight.
    pub fn pending(&self) -> usize {
        self.in_flight.len()
    }

    /// Delivery counters so far.
    pub fn counters(&self) -> LinkCounters {
        self.counters
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng(label: &str) -> RngStream {
        RngStream::new(77, label)
    }

    fn clean(latency: Seconds) -> LinkConfig {
        LinkConfig {
            latency,
            ..LinkConfig::default()
        }
    }

    #[test]
    fn faultless_link_behaves_like_latency_link() {
        let mut link = LossyLink::new(clean(0.5), rng("clean"));
        link.send(0.0, 3, Frame::power_report(100.0));
        assert!(link.deliver(0.4).is_empty());
        let out = link.deliver(0.5);
        assert_eq!(out, vec![(3, Some(Frame::power_report(100.0)))]);
        assert_eq!(link.pending(), 0);
        assert_eq!(link.counters().delivered, 1);
    }

    #[test]
    fn faultless_link_preserves_order() {
        let mut link = LossyLink::new(clean(0.1), rng("order"));
        for u in 0..16u32 {
            link.send(0.0, u, Frame::set_cap(u as f64));
        }
        let order: Vec<u32> = link.deliver(1.0).iter().map(|(u, _)| *u).collect();
        assert_eq!(order, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn drops_are_seeded_and_partial() {
        let cfg = LinkConfig {
            drop_prob: 0.5,
            ..clean(0.0)
        };
        let mut a = LossyLink::new(cfg, rng("drops"));
        let mut b = LossyLink::new(cfg, rng("drops"));
        for u in 0..200u32 {
            a.send(0.0, u, Frame::power_report(1.0));
            b.send(0.0, u, Frame::power_report(1.0));
        }
        let da = a.deliver(1.0);
        let db = b.deliver(1.0);
        assert_eq!(da, db, "same seed, same losses");
        assert!(da.len() > 50 && da.len() < 150, "got {}", da.len());
        assert_eq!(a.counters().dropped + da.len() as u64, 200);
    }

    #[test]
    fn jitter_reorders_but_loses_nothing() {
        let cfg = LinkConfig {
            jitter: 1.0,
            ..clean(0.1)
        };
        let mut link = LossyLink::new(cfg, rng("jitter"));
        for u in 0..64u32 {
            link.send(0.0, u, Frame::power_report(u as f64));
        }
        let order: Vec<u32> = link.deliver(10.0).iter().map(|(u, _)| *u).collect();
        assert_eq!(order.len(), 64);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64).collect::<Vec<_>>());
        assert_ne!(order, sorted, "1 s jitter over simultaneous sends reorders");
    }

    #[test]
    fn jittered_delivery_respects_due_times() {
        let cfg = LinkConfig {
            jitter: 0.5,
            ..clean(0.2)
        };
        let mut link = LossyLink::new(cfg, rng("due"));
        for u in 0..32u32 {
            link.send(0.0, u, Frame::power_report(0.0));
        }
        // Nothing can arrive before the base latency.
        assert!(link.deliver(0.19).is_empty());
        // Everything arrives by latency + jitter.
        let mut total = link.deliver(0.45).len();
        total += link.deliver(0.7).len();
        assert_eq!(total, 32);
    }

    #[test]
    fn corruption_hits_decode_path() {
        let cfg = LinkConfig {
            corrupt_prob: 1.0,
            ..clean(0.0)
        };
        let mut link = LossyLink::new(cfg, rng("corrupt"));
        for u in 0..300u32 {
            link.send(0.0, u, Frame::power_report(110.0));
        }
        let out = link.deliver(1.0);
        assert_eq!(out.len(), 300);
        let undecodable = out.iter().filter(|(_, f)| f.is_none()).count();
        // A corrupted tag byte usually fails decode; corrupted payload
        // bytes still decode (to a wrong value).
        assert!(undecodable > 50, "{undecodable} undecodable");
        assert!(undecodable < 300, "payload corruption should still decode");
        assert_eq!(link.counters().undecodable, undecodable as u64);
        assert_eq!(link.counters().corrupted, 300);
    }

    #[test]
    fn duplication_delivers_extra_copies() {
        let cfg = LinkConfig {
            duplicate_prob: 1.0,
            ..clean(0.0)
        };
        let mut link = LossyLink::new(cfg, rng("dup"));
        for u in 0..10u32 {
            link.send(0.0, u, Frame::set_cap(50.0));
        }
        assert_eq!(link.deliver(1.0).len(), 20);
        assert_eq!(link.counters().duplicated, 10);
    }

    #[test]
    fn partition_blocks_sends_not_in_flight_frames() {
        let mut link = LossyLink::new(clean(0.5), rng("part"));
        link.send(0.0, 1, Frame::power_report(10.0));
        link.set_partitioned(true);
        link.send(0.1, 2, Frame::power_report(20.0));
        let out = link.deliver(2.0);
        assert_eq!(out.len(), 1, "pre-partition frame still delivers");
        assert_eq!(out[0].0, 1);
        assert_eq!(link.counters().blocked, 1);
        link.set_partitioned(false);
        link.send(2.0, 3, Frame::power_report(30.0));
        assert_eq!(link.deliver(3.0).len(), 1);
    }

    #[test]
    fn corrupt_boost_adds_to_base_rate() {
        let mut link = LossyLink::new(clean(0.0), rng("boost"));
        link.set_corrupt_boost(1.0);
        link.send(0.0, 0, Frame::power_report(1.0));
        assert_eq!(link.counters().corrupted, 1);
        link.set_corrupt_boost(0.0);
        link.send(0.0, 1, Frame::power_report(1.0));
        assert_eq!(link.counters().corrupted, 1);
    }

    #[test]
    fn next_due_tracks_earliest_frame() {
        let mut link = LossyLink::new(clean(0.5), rng("peek"));
        assert_eq!(link.next_due(), None);
        link.send(1.0, 0, Frame::power_report(1.0));
        link.send(0.0, 1, Frame::power_report(1.0));
        assert!((link.next_due().unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn invalid_config_rejected() {
        assert!(LinkConfig {
            drop_prob: 1.5,
            ..LinkConfig::default()
        }
        .validate()
        .is_err());
        assert!(LinkConfig {
            latency: -1.0,
            ..LinkConfig::default()
        }
        .validate()
        .is_err());
        assert!(LinkConfig::default().validate().is_ok());
    }
}
