//! The server↔client wire protocol.
//!
//! §6.5: "only 3 bytes are exchanged per request with each node". This
//! module makes that concrete: a 3-byte fixed-width frame per unit per
//! direction — a message tag plus a 16-bit payload in deciwatts (u16
//! covers 0–6553.5 W, far above any socket's TDP, at 0.1 W resolution,
//! better than RAPL's practical accuracy). The control plane runs entirely
//! through these frames, so the decision loop exercises real
//! encode/transmit/decode mechanics instead of function calls.
//!
//! Beyond the original report/assign pair, the framed control plane adds
//! two frames: an explicit [`Frame::Poll`] request (the controller asks a
//! unit for its power report instead of assuming clients push) and a
//! [`Frame::CapAck`] (the agent confirms the cap it actually applied, which
//! is what lets the controller maintain a safe believed-applied view under
//! loss and corruption).

use dps_sim_core::units::{Seconds, Watts};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Wire resolution: one least-significant unit = 0.1 W.
pub const DECIWATT: f64 = 0.1;

/// Tolerance for "due at or before now" delivery comparisons.
///
/// Simulated timestamps are sums of f64 periods and latencies, so an event
/// scheduled for exactly `t` can land at `t ± a few ulps` after
/// accumulation. Comparing with an absolute slack of 1e-12 s (one
/// picosecond, ~9 orders of magnitude below the µs-scale link latencies)
/// makes delivery insensitive to that rounding without ever reordering
/// events that are meaningfully apart. Shared by [`LatencyLink`], the lossy
/// link, and the control plane's deadline checks.
pub const DELIVERY_EPSILON: Seconds = 1e-12;

/// Budget slack introduced by wire quantization, for `n_units` units.
///
/// `watts_to_wire` rounds to the nearest deciwatt, so each applied cap can
/// sit up to 0.05 W above the requested value; a cap sum that was exactly
/// at budget can therefore exceed it by at most `n_units × 0.05 W` once
/// round-tripped through frames. Budget-safety checks on believed/applied
/// caps must allow exactly this much.
pub fn wire_slack(n_units: usize) -> Watts {
    n_units as f64 * (DECIWATT / 2.0) + 1e-9
}

/// A 3-byte control-plane frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Frame {
    /// Client → server: the unit's average power over the last window.
    PowerReport {
        /// Power in deciwatts.
        deciwatts: u16,
    },
    /// Server → client: the unit's new power cap.
    SetCap {
        /// Cap in deciwatts.
        deciwatts: u16,
    },
    /// Server → client: request a power report for the unit.
    Poll {
        /// Gather-epoch sequence number (wraps; used only for diagnostics).
        seq: u16,
    },
    /// Client → server: confirms the cap the agent actually applied.
    CapAck {
        /// Applied cap in deciwatts.
        deciwatts: u16,
    },
}

impl Frame {
    /// Frame tags.
    const TAG_POWER: u8 = 0x01;
    const TAG_CAP: u8 = 0x02;
    const TAG_POLL: u8 = 0x03;
    const TAG_ACK: u8 = 0x04;

    /// Builds a power report from Watts (saturating at the u16 range).
    pub fn power_report(watts: Watts) -> Self {
        Frame::PowerReport {
            deciwatts: watts_to_wire(watts),
        }
    }

    /// Builds a cap assignment from Watts.
    pub fn set_cap(watts: Watts) -> Self {
        Frame::SetCap {
            deciwatts: watts_to_wire(watts),
        }
    }

    /// Builds a cap acknowledgement from Watts.
    pub fn cap_ack(watts: Watts) -> Self {
        Frame::CapAck {
            deciwatts: watts_to_wire(watts),
        }
    }

    /// The carried value in Watts; 0 for [`Frame::Poll`], whose payload is
    /// a sequence number rather than a power.
    pub fn watts(&self) -> Watts {
        match *self {
            Frame::PowerReport { deciwatts }
            | Frame::SetCap { deciwatts }
            | Frame::CapAck { deciwatts } => deciwatts as f64 * DECIWATT,
            Frame::Poll { .. } => 0.0,
        }
    }

    /// Encodes to the 3-byte wire format: `[tag, lo, hi]`.
    pub fn encode(&self) -> [u8; 3] {
        let (tag, payload) = match *self {
            Frame::PowerReport { deciwatts } => (Self::TAG_POWER, deciwatts),
            Frame::SetCap { deciwatts } => (Self::TAG_CAP, deciwatts),
            Frame::Poll { seq } => (Self::TAG_POLL, seq),
            Frame::CapAck { deciwatts } => (Self::TAG_ACK, deciwatts),
        };
        let [lo, hi] = payload.to_le_bytes();
        [tag, lo, hi]
    }

    /// Decodes a 3-byte frame; `None` on an unknown tag.
    pub fn decode(bytes: [u8; 3]) -> Option<Self> {
        let payload = u16::from_le_bytes([bytes[1], bytes[2]]);
        match bytes[0] {
            Self::TAG_POWER => Some(Frame::PowerReport { deciwatts: payload }),
            Self::TAG_CAP => Some(Frame::SetCap { deciwatts: payload }),
            Self::TAG_POLL => Some(Frame::Poll { seq: payload }),
            Self::TAG_ACK => Some(Frame::CapAck { deciwatts: payload }),
            _ => None,
        }
    }
}

/// Converts Watts to wire deciwatts, clamping into the representable range.
pub fn watts_to_wire(watts: Watts) -> u16 {
    let dw = (watts / DECIWATT).round();
    if dw.is_nan() || dw < 0.0 {
        0
    } else if dw > u16::MAX as f64 {
        u16::MAX
    } else {
        dw as u16
    }
}

/// A latency-delayed frame queue between one endpoint pair: frames sent at
/// time `t` become deliverable at `t + latency`, in send order. The
/// fault-capable generalisation (drops, jitter, reordering, corruption)
/// is [`crate::link::LossyLink`].
#[derive(Debug, Clone, Default)]
pub struct LatencyLink {
    latency: Seconds,
    in_flight: VecDeque<(Seconds, u32, Frame)>,
}

impl LatencyLink {
    /// Creates a link with one-way `latency` seconds.
    pub fn new(latency: Seconds) -> Self {
        assert!(latency >= 0.0, "latency must be non-negative");
        Self {
            latency,
            in_flight: VecDeque::new(),
        }
    }

    /// Sends a frame for `unit` at time `now`.
    pub fn send(&mut self, now: Seconds, unit: u32, frame: Frame) {
        self.in_flight.push_back((now + self.latency, unit, frame));
    }

    /// Drains every frame deliverable at or before `now`, in send order.
    pub fn deliver(&mut self, now: Seconds) -> Vec<(u32, Frame)> {
        let mut out = Vec::new();
        while let Some(&(due, unit, frame)) = self.in_flight.front() {
            if due <= now + DELIVERY_EPSILON {
                self.in_flight.pop_front();
                out.push((unit, frame));
            } else {
                break;
            }
        }
        out
    }

    /// Frames currently in flight.
    pub fn pending(&self) -> usize {
        self.in_flight.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_are_three_bytes() {
        // The §6.5 traffic claim rests on this.
        assert_eq!(Frame::power_report(110.0).encode().len(), 3);
        assert_eq!(std::mem::size_of_val(&Frame::set_cap(0.0).encode()), 3);
        assert_eq!(Frame::Poll { seq: 9 }.encode().len(), 3);
        assert_eq!(Frame::cap_ack(110.0).encode().len(), 3);
    }

    #[test]
    fn encode_decode_roundtrip() {
        for watts in [0.0, 40.0, 110.55, 164.9, 165.0] {
            for frame in [
                Frame::power_report(watts),
                Frame::set_cap(watts),
                Frame::cap_ack(watts),
            ] {
                let decoded = Frame::decode(frame.encode()).unwrap();
                assert_eq!(decoded, frame);
                assert!((decoded.watts() - watts).abs() <= DECIWATT / 2.0 + 1e-12);
            }
        }
        for seq in [0u16, 1, 65535] {
            let frame = Frame::Poll { seq };
            assert_eq!(Frame::decode(frame.encode()).unwrap(), frame);
        }
    }

    #[test]
    fn wire_resolution_is_deciwatts() {
        let f = Frame::power_report(110.04);
        assert!((f.watts() - 110.0).abs() < 1e-9);
        let g = Frame::power_report(110.06);
        assert!((g.watts() - 110.1).abs() < 1e-9);
    }

    #[test]
    fn out_of_range_values_saturate() {
        assert_eq!(watts_to_wire(-5.0), 0);
        assert_eq!(watts_to_wire(f64::NAN), 0);
        assert_eq!(watts_to_wire(1e9), u16::MAX);
    }

    #[test]
    fn unknown_tag_rejected() {
        assert_eq!(Frame::decode([0xFF, 0, 0]), None);
        assert_eq!(Frame::decode([0x00, 1, 2]), None);
        assert_eq!(Frame::decode([0x05, 1, 2]), None);
    }

    #[test]
    fn poll_carries_no_power() {
        assert_eq!(Frame::Poll { seq: 500 }.watts(), 0.0);
    }

    #[test]
    fn wire_slack_scales_with_units() {
        assert!(wire_slack(20) < 20.0 * DECIWATT);
        assert!((wire_slack(20) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn latency_link_delays_delivery() {
        let mut link = LatencyLink::new(0.5);
        link.send(0.0, 7, Frame::power_report(100.0));
        assert!(link.deliver(0.4).is_empty());
        let delivered = link.deliver(0.5);
        assert_eq!(delivered.len(), 1);
        assert_eq!(delivered[0].0, 7);
        assert_eq!(link.pending(), 0);
    }

    #[test]
    fn delivery_preserves_send_order() {
        let mut link = LatencyLink::new(0.1);
        for u in 0..10u32 {
            link.send(0.0, u, Frame::set_cap(u as f64));
        }
        let order: Vec<u32> = link.deliver(1.0).iter().map(|(u, _)| *u).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn zero_latency_immediate() {
        let mut link = LatencyLink::new(0.0);
        link.send(2.0, 1, Frame::set_cap(110.0));
        assert_eq!(link.deliver(2.0).len(), 1);
    }
}
