//! The framed control plane: a discrete-event gather→decide→scatter loop.
//!
//! [`FramedControlPlane`] owns the server-side [`Controller`], one
//! [`NodeAgent`] per node, and a pair of [`LossyLink`]s (down = controller
//! → node, up = node → controller) per node. One call to
//! [`FramedControlPlane::run_cycle`] plays out a full decision cycle in
//! simulated time:
//!
//! 1. **Faults** scheduled for this cycle take effect (crash/reboot,
//!    partition, corruption burst).
//! 2. **Gather** — the controller polls every unit (stale nodes included,
//!    so a healed node is noticed), with per-node timeouts and bounded
//!    backoff retries, inside an event loop that advances time to the next
//!    frame delivery or deadline.
//! 3. **Decide** — the power manager runs on the hold-last telemetry; the
//!    controller then pins non-live nodes to the floor and redistributes
//!    the reclaimed budget.
//! 4. **Scatter** — two phases: lower-or-equal assignments go out first
//!    and are awaited, then raises are granted one at a time against the
//!    believed live cap sum. Assignments are retried on timeout and on
//!    mismatched acknowledgements.
//! 5. **Close** — stale nodes that acknowledged floor caps are readmitted
//!    and the budget-safety invariant is checked.
//!
//! Everything is deterministic per seed: link randomness comes from
//! dedicated [`RngStream`] children and the event loop breaks time ties in
//! node/sequence order.

use crate::agent::NodeAgent;
use crate::config::{FramedConfig, RetryPolicy};
use crate::controller::Controller;
use crate::fault::FaultSchedule;
use crate::frame::{watts_to_wire, Frame, DELIVERY_EPSILON};
use crate::link::LossyLink;
use crate::stats::CtrlStats;
use dps_core::manager::{PowerManager, UnitLimits};
use dps_sim_core::rng::RngStream;
use dps_sim_core::units::{Seconds, Watts};

/// Safety bound on event-loop iterations within one phase; generous —
/// traffic per cycle is O(units × retries).
const MAX_EVENTS: usize = 1_000_000;

/// A cap assignment awaiting acknowledgement.
#[derive(Debug, Clone, Copy)]
struct Outstanding {
    wire: u16,
    deadline: Seconds,
    retries_left: u32,
    attempt: u32,
}

/// The framed control plane for one cluster.
#[derive(Debug)]
pub struct FramedControlPlane {
    policy: RetryPolicy,
    faults: FaultSchedule,
    n_nodes: usize,
    units_per_node: usize,
    controller: Controller,
    agents: Vec<NodeAgent>,
    down: Vec<LossyLink>,
    up: Vec<LossyLink>,
    /// Raw power readings snapshot the agents answer polls from.
    readings: Vec<Watts>,
    /// Flat mirror of the agents' programmed caps, refreshed per cycle.
    applied: Vec<Watts>,
    /// Per-unit outstanding cap assignment.
    outstanding: Vec<Option<Outstanding>>,
    /// Last cap intentionally sent per unit (wire deciwatts) — what a
    /// stray acknowledgement is compared against to spot rogue caps.
    last_sent: Vec<u16>,
    // Per-node gather state.
    node_deadline: Vec<Seconds>,
    node_retries_left: Vec<u32>,
    node_attempt: Vec<u32>,
    node_done: Vec<bool>,
    /// Scratch: units deferred to the raise phase.
    raises: Vec<usize>,
    retries: u64,
    epoch: u64,
}

impl FramedControlPlane {
    /// Builds the plane for `n_nodes × units_per_node` units under
    /// `budget`, all units starting at `initial_cap`. Link streams derive
    /// from `rng`, so two planes built from equal streams replay identical
    /// loss patterns.
    pub fn new(
        n_nodes: usize,
        units_per_node: usize,
        budget: Watts,
        limits: UnitLimits,
        initial_cap: Watts,
        config: FramedConfig,
        rng: &RngStream,
    ) -> Self {
        config
            .faults
            .validate(n_nodes)
            .expect("fault schedule fits topology");
        let n = n_nodes * units_per_node;
        let mut controller = Controller::new(n_nodes, units_per_node, budget, limits, initial_cap);
        controller.set_stale_after(config.policy.stale_after);
        let agents = (0..n_nodes)
            .map(|node| NodeAgent::new(node * units_per_node, units_per_node, initial_cap, limits))
            .collect();
        let link = |dir: &str, node: usize| {
            LossyLink::new(config.link, rng.child(&format!("link/{dir}/{node}")))
        };
        Self {
            policy: config.policy,
            faults: config.faults,
            n_nodes,
            units_per_node,
            controller,
            agents,
            down: (0..n_nodes).map(|n| link("down", n)).collect(),
            up: (0..n_nodes).map(|n| link("up", n)).collect(),
            readings: vec![0.0; n],
            applied: vec![limits.clamp(initial_cap); n],
            outstanding: vec![None; n],
            last_sent: vec![watts_to_wire(limits.clamp(initial_cap)); n],
            node_deadline: vec![0.0; n_nodes],
            node_retries_left: vec![0; n_nodes],
            node_attempt: vec![0; n_nodes],
            node_done: vec![false; n_nodes],
            raises: Vec::with_capacity(n),
            retries: 0,
            epoch: 0,
        }
    }

    /// Runs one decision cycle starting at `now` with decision period
    /// `period`. `readings` are the units' raw power readings for the
    /// closing window; `manager` decides on the controller's telemetry;
    /// `proposals` receives the manager's (post-processed) cap proposals.
    /// Returns whether the budget-safety invariant held at cycle close.
    pub fn run_cycle(
        &mut self,
        now: Seconds,
        period: Seconds,
        readings: &[Watts],
        manager: &mut dyn PowerManager,
        proposals: &mut [Watts],
    ) -> bool {
        assert_eq!(readings.len(), self.readings.len());
        assert_eq!(proposals.len(), self.readings.len());
        self.epoch += 1;
        let deadline = now + period;

        self.apply_faults(now);
        self.readings.copy_from_slice(readings);

        self.controller.begin_epoch();
        let t = self.gather(now, deadline);
        self.controller.end_gather();

        manager.assign_caps(self.controller.telemetry(), proposals, period);
        self.controller.postprocess(proposals);

        self.scatter(t, deadline, proposals);
        let ok = self.controller.end_epoch();

        for node in 0..self.n_nodes {
            let base = node * self.units_per_node;
            self.applied[base..base + self.units_per_node]
                .copy_from_slice(self.agents[node].caps());
        }
        ok
    }

    /// Applies the fault schedule as of cycle start `now`.
    fn apply_faults(&mut self, now: Seconds) {
        for node in 0..self.n_nodes {
            let crashed = self.faults.crashed(node, now);
            if crashed && self.agents[node].is_up() {
                self.agents[node].crash();
            } else if !crashed && !self.agents[node].is_up() {
                self.agents[node].reboot();
            }
            let partitioned = self.faults.partitioned(node, now);
            self.down[node].set_partitioned(partitioned);
            self.up[node].set_partitioned(partitioned);
            let boost = self.faults.corrupt_boost(node, now);
            self.down[node].set_corrupt_boost(boost);
            self.up[node].set_corrupt_boost(boost);
        }
    }

    /// Delivers everything due at `t` on every link, feeding agents and
    /// controller. Node order breaks simultaneous-delivery ties.
    fn pump(&mut self, t: Seconds) {
        for node in 0..self.n_nodes {
            for (unit, maybe) in self.down[node].deliver(t) {
                let Some(frame) = maybe else { continue };
                if let Some(resp) = self.agents[node].handle(unit, frame, &self.readings) {
                    self.up[node].send(t, unit, resp);
                }
            }
            for (unit, maybe) in self.up[node].deliver(t) {
                match maybe {
                    Some(Frame::PowerReport { deciwatts }) => {
                        self.controller
                            .record_report(unit as usize, Frame::PowerReport { deciwatts }.watts());
                    }
                    Some(Frame::CapAck { deciwatts }) => self.on_ack(t, unit as usize, deciwatts),
                    // Client-bound frames on the up link can only be
                    // corruption artifacts; drop them.
                    _ => {}
                }
            }
        }
    }

    /// Handles an acknowledged cap for `unit` carrying `dw` deciwatts.
    fn on_ack(&mut self, t: Seconds, unit: usize, dw: u16) {
        let Some(mut out) = self.outstanding[unit] else {
            // No assignment pending: a duplicate, a late ack of a resolved
            // assignment, or the agent confirming a *rogue* cap — a
            // corrupted frame that decoded as a valid SetCap the
            // controller never sent (unauthenticated 3-byte frames cannot
            // prevent this). Belief absorbs the value upward (a no-op for
            // duplicates, where belief is already at or above it), and a
            // rogue value triggers an immediate corrective re-send of the
            // intended cap.
            self.controller
                .note_unexpected_applied(unit, Frame::CapAck { deciwatts: dw }.watts());
            if dw != self.last_sent[unit] {
                let intended = self.last_sent[unit];
                self.retries += 1;
                self.outstanding[unit] = Some(Outstanding {
                    wire: intended,
                    deadline: t + self.policy.timeout,
                    retries_left: self.policy.max_retries,
                    attempt: 0,
                });
                let node = unit / self.units_per_node;
                self.down[node].send(
                    t,
                    unit as u32,
                    Frame::SetCap {
                        deciwatts: intended,
                    },
                );
            }
            return;
        };
        if out.wire == dw {
            self.outstanding[unit] = None;
            self.controller
                .note_cap_acked(unit, Frame::CapAck { deciwatts: dw }.watts());
        } else if out.retries_left > 0 {
            // The agent applied something else (corrupted assignment):
            // re-send the intended value.
            out.retries_left -= 1;
            out.attempt += 1;
            out.deadline = t + self.policy.timeout_for_attempt(out.attempt);
            self.retries += 1;
            let node = unit / self.units_per_node;
            self.down[node].send(
                t,
                unit as u32,
                Frame::SetCap {
                    deciwatts: out.wire,
                },
            );
            self.outstanding[unit] = Some(out);
        } else {
            // Out of retries: accept reality, pessimistically.
            self.outstanding[unit] = None;
            self.controller
                .note_unexpected_applied(unit, Frame::CapAck { deciwatts: dw }.watts());
        }
    }

    /// The earliest pending event across links and the given deadlines.
    fn next_event(&self, extra_deadlines: impl Iterator<Item = Seconds>) -> Seconds {
        let mut next = f64::INFINITY;
        for node in 0..self.n_nodes {
            if let Some(due) = self.down[node].next_due() {
                next = next.min(due);
            }
            if let Some(due) = self.up[node].next_due() {
                next = next.min(due);
            }
        }
        for d in extra_deadlines {
            next = next.min(d);
        }
        next
    }

    /// Polls every unit and runs the gather event loop until every node
    /// either reported fully or exhausted its retries, or `deadline`
    /// passes. Returns the simulated time gather ended.
    fn gather(&mut self, start: Seconds, deadline: Seconds) -> Seconds {
        let seq = (self.epoch & 0xFFFF) as u16;
        for node in 0..self.n_nodes {
            let base = node * self.units_per_node;
            for local in 0..self.units_per_node {
                self.down[node].send(start, (base + local) as u32, Frame::Poll { seq });
            }
            self.node_deadline[node] = start + self.policy.timeout;
            self.node_retries_left[node] = self.policy.max_retries;
            self.node_attempt[node] = 0;
            self.node_done[node] = false;
        }

        let mut t = start;
        for _ in 0..MAX_EVENTS {
            for node in 0..self.n_nodes {
                if !self.node_done[node] && self.node_units_reported(node) {
                    self.node_done[node] = true;
                }
            }
            if self.node_done.iter().all(|d| *d) {
                break;
            }
            let next = self.next_event(
                (0..self.n_nodes)
                    .filter(|n| !self.node_done[*n])
                    .map(|n| self.node_deadline[n]),
            );
            if next > deadline + DELIVERY_EPSILON {
                t = deadline;
                break;
            }
            t = next.max(t);
            self.pump(t);
            for node in 0..self.n_nodes {
                if self.node_done[node] || self.node_units_reported(node) {
                    continue;
                }
                if self.node_deadline[node] <= t + DELIVERY_EPSILON {
                    if self.node_retries_left[node] > 0 {
                        self.node_retries_left[node] -= 1;
                        self.node_attempt[node] += 1;
                        let base = node * self.units_per_node;
                        for local in 0..self.units_per_node {
                            let unit = base + local;
                            if !self.controller.unit_reported(unit) {
                                self.down[node].send(t, unit as u32, Frame::Poll { seq });
                                self.retries += 1;
                            }
                        }
                        self.node_deadline[node] =
                            t + self.policy.timeout_for_attempt(self.node_attempt[node]);
                    } else {
                        self.node_done[node] = true;
                    }
                }
            }
        }
        t
    }

    fn node_units_reported(&self, node: usize) -> bool {
        let base = node * self.units_per_node;
        (base..base + self.units_per_node).all(|u| self.controller.unit_reported(u))
    }

    /// Two-phase cap distribution. Phase one sends every lower-or-equal
    /// assignment (plus the floor to non-live nodes) and waits for acks;
    /// phase two grants raises against the believed live sum.
    fn scatter(&mut self, start: Seconds, deadline: Seconds, proposals: &[Watts]) {
        self.raises.clear();
        for (unit, &proposal) in proposals.iter().enumerate() {
            let node = unit / self.units_per_node;
            let target = Frame::set_cap(proposal).watts();
            if !self.controller.node_live(node) || target <= self.controller.believed()[unit] + 1e-9
            {
                self.send_set_cap(start, unit, proposal);
            } else {
                self.raises.push(unit);
            }
        }
        let t = self.settle(start, deadline);

        let raises = std::mem::take(&mut self.raises);
        for &unit in &raises {
            let target = Frame::set_cap(proposals[unit]).watts();
            if self.controller.grant_raise(unit, target) {
                self.send_set_cap(t, unit, proposals[unit]);
            }
        }
        self.raises = raises;
        self.settle(t, deadline);
    }

    /// Puts one cap assignment on the wire and registers it for acks.
    fn send_set_cap(&mut self, t: Seconds, unit: usize, watts: Watts) {
        let frame = Frame::set_cap(watts);
        let Frame::SetCap { deciwatts } = frame else {
            unreachable!()
        };
        self.outstanding[unit] = Some(Outstanding {
            wire: deciwatts,
            deadline: t + self.policy.timeout,
            retries_left: self.policy.max_retries,
            attempt: 0,
        });
        self.last_sent[unit] = deciwatts;
        let node = unit / self.units_per_node;
        self.down[node].send(t, unit as u32, frame);
    }

    /// Runs the event loop until every outstanding assignment resolved
    /// (acked or out of retries) or `deadline` passes. Returns the time it
    /// ended.
    fn settle(&mut self, start: Seconds, deadline: Seconds) -> Seconds {
        let mut t = start;
        for _ in 0..MAX_EVENTS {
            if self.outstanding.iter().all(|o| o.is_none()) {
                break;
            }
            let next = self.next_event(self.outstanding.iter().flatten().map(|o| o.deadline));
            if next > deadline + DELIVERY_EPSILON {
                t = deadline;
                for o in &mut self.outstanding {
                    // Past the cycle boundary: give up. Belief stays
                    // pessimistic (raises were counted at send).
                    *o = None;
                }
                break;
            }
            t = next.max(t);
            self.pump(t);
            for unit in 0..self.outstanding.len() {
                let Some(mut out) = self.outstanding[unit] else {
                    continue;
                };
                if out.deadline <= t + DELIVERY_EPSILON {
                    if out.retries_left > 0 {
                        out.retries_left -= 1;
                        out.attempt += 1;
                        out.deadline = t + self.policy.timeout_for_attempt(out.attempt);
                        self.retries += 1;
                        let node = unit / self.units_per_node;
                        self.down[node].send(
                            t,
                            unit as u32,
                            Frame::SetCap {
                                deciwatts: out.wire,
                            },
                        );
                        self.outstanding[unit] = Some(out);
                    } else {
                        self.outstanding[unit] = None;
                    }
                }
            }
        }
        t
    }

    /// Caps actually programmed in the units' hardware (flat unit order),
    /// as of the last cycle.
    pub fn applied_caps(&self) -> &[Watts] {
        &self.applied
    }

    /// Rebases the plane's controller onto a new cluster budget (dynamic
    /// budget schedules). Takes effect from the next
    /// [`FramedControlPlane::run_cycle`]: lowers scatter first, so the
    /// believed-cap invariant re-converges to the new budget within one
    /// epoch on a healthy wire.
    pub fn set_budget(&mut self, budget: Watts) {
        self.controller.set_budget(budget);
    }

    /// The controller's hold-last telemetry.
    pub fn telemetry(&self) -> &[Watts] {
        self.controller.telemetry()
    }

    /// The controller's liveness view of a node.
    pub fn node_live(&self, node: usize) -> bool {
        self.controller.node_live(node)
    }

    /// Whether the node's agent daemon is actually running.
    pub fn agent_up(&self, node: usize) -> bool {
        self.agents[node].is_up()
    }

    /// Ground truth for the safety invariant: the sum of caps *actually
    /// programmed* on nodes the controller considers live.
    pub fn live_applied_sum(&self) -> Watts {
        (0..self.n_nodes)
            .filter(|n| self.controller.node_live(*n))
            .flat_map(|n| self.agents[n].caps())
            .sum()
    }

    /// The controller's believed version of [`Self::live_applied_sum`].
    pub fn live_believed_sum(&self) -> Watts {
        self.controller.live_believed_sum()
    }

    /// Decision cycles run so far.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Aggregated statistics (links + controller + retries).
    pub fn stats(&self) -> CtrlStats {
        let mut stats = CtrlStats::default();
        for node in 0..self.n_nodes {
            stats.absorb_link(self.down[node].counters());
            stats.absorb_link(self.up[node].counters());
        }
        self.controller.fill_stats(&mut stats);
        stats.retries = self.retries;
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultEvent;
    use crate::frame::wire_slack;
    use dps_core::manager::{constant_cap, ManagerKind};

    const PERIOD: Seconds = 1.0;

    fn limits() -> UnitLimits {
        UnitLimits {
            min_cap: 40.0,
            max_cap: 165.0,
        }
    }

    /// A trivial manager: proposes a fixed pattern each cycle.
    struct FixedManager {
        caps: Vec<Watts>,
        budget: Watts,
    }

    impl PowerManager for FixedManager {
        fn kind(&self) -> ManagerKind {
            ManagerKind::Constant
        }
        fn num_units(&self) -> usize {
            self.caps.len()
        }
        fn total_budget(&self) -> Watts {
            self.budget
        }
        fn set_budget(&mut self, new_budget: Watts) -> Result<(), String> {
            self.budget = new_budget;
            Ok(())
        }
        fn assign_caps(&mut self, _measured: &[Watts], caps: &mut [Watts], _dt: Seconds) {
            caps.copy_from_slice(&self.caps);
        }
        fn reset(&mut self) {}
    }

    fn plane(n_nodes: usize, upn: usize, config: FramedConfig) -> FramedControlPlane {
        let budget = (n_nodes * upn) as f64 * 110.0;
        FramedControlPlane::new(
            n_nodes,
            upn,
            budget,
            limits(),
            constant_cap(budget, n_nodes * upn, limits()),
            config,
            &RngStream::new(11, "plane-test"),
        )
    }

    /// Runs cycles `start .. start + cycles` (simulated time keeps going
    /// across calls so fault windows line up). With `strict` — correct for
    /// every fault mix except payload corruption, which can forge caps no
    /// controller can pre-authorize — asserts the believed-cap invariant
    /// and its applied-cap ground truth each cycle.
    fn run(
        plane: &mut FramedControlPlane,
        manager: &mut FixedManager,
        start: usize,
        cycles: usize,
        strict: bool,
    ) {
        let n = manager.num_units();
        let mut proposals = vec![0.0; n];
        let readings = vec![90.0; n];
        for c in start..start + cycles {
            let now = c as f64 * PERIOD;
            let ok = plane.run_cycle(now, PERIOD, &readings, manager, &mut proposals);
            if strict {
                assert!(ok, "believed-cap invariant broke at cycle {c}");
                let truth = plane.live_applied_sum();
                assert!(
                    truth <= manager.budget + wire_slack(n),
                    "applied caps {truth} exceed budget at cycle {c}"
                );
            }
        }
    }

    #[test]
    fn faultless_cycle_converges_to_targets() {
        let mut p = plane(2, 2, FramedConfig::default());
        let mut m = FixedManager {
            caps: vec![150.0, 70.0, 120.0, 100.0],
            budget: 440.0,
        };
        run(&mut p, &mut m, 0, 3, true);
        for (a, want) in p.applied_caps().iter().zip(&m.caps) {
            assert!((a - want).abs() < 1e-9, "{a} vs {want}");
        }
        assert_eq!(p.telemetry(), &[90.0; 4]);
        let stats = p.stats();
        assert_eq!(stats.retries, 0);
        assert_eq!(stats.gather_misses, 0);
        assert_eq!(stats.frames_dropped, 0);
    }

    #[test]
    fn lossy_links_still_converge_and_stay_safe() {
        let mut config = FramedConfig::default();
        config.link.drop_prob = 0.1;
        let mut p = plane(2, 2, config);
        let mut m = FixedManager {
            caps: vec![150.0, 70.0, 120.0, 100.0],
            budget: 440.0,
        };
        run(&mut p, &mut m, 0, 30, true);
        let stats = p.stats();
        assert!(stats.frames_dropped > 0, "losses actually happened");
        assert!(stats.retries > 0, "retries covered the losses");
        // With retries over 30 cycles the targets land anyway.
        for (a, want) in p.applied_caps().iter().zip(&m.caps) {
            assert!((a - want).abs() < 1e-9, "{a} vs {want}");
        }
    }

    #[test]
    fn crash_demotes_then_floor_readmits() {
        let mut config = FramedConfig::default();
        config.faults.push(FaultEvent::Crash {
            node: 1,
            at: 2.0,
            until: 6.0,
        });
        let mut p = plane(2, 2, config);
        let mut m = FixedManager {
            caps: vec![110.0; 4],
            budget: 440.0,
        };
        run(&mut p, &mut m, 0, 2, true);
        assert!(p.node_live(1));
        // Crash at t=2; stale after 3 missed cycles → demoted by t=4.
        run(&mut p, &mut m, 2, 4, true);
        assert!(!p.agent_up(1));
        assert!(!p.node_live(1), "node demoted while down");
        // Live node got the reclaimed budget.
        assert!(p.applied_caps()[0] > 110.0 + 1.0);
        // Reboot at t=6; floor ack readmits within a cycle or two.
        run(&mut p, &mut m, 6, 3, true);
        assert!(p.agent_up(1));
        assert!(p.node_live(1), "rebooted node readmitted");
        assert_eq!(p.stats().stale_transitions, 1);
        assert_eq!(p.stats().readmissions, 1);
        // And the caps relax back toward the symmetric split.
        run(&mut p, &mut m, 9, 3, true);
        for a in p.applied_caps() {
            assert!((a - 110.0).abs() < 1e-9, "{:?}", p.applied_caps());
        }
    }

    #[test]
    fn partition_heals_without_agent_restart() {
        let mut config = FramedConfig::default();
        config.faults.push(FaultEvent::Partition {
            node: 0,
            at: 1.0,
            until: 7.0,
        });
        let mut p = plane(2, 2, config);
        let mut m = FixedManager {
            caps: vec![110.0; 4],
            budget: 440.0,
        };
        run(&mut p, &mut m, 0, 6, true);
        assert!(p.agent_up(0), "partition never kills the daemon");
        assert!(!p.node_live(0));
        // Partitioned node still holds its last caps (hold through
        // silence).
        assert!((p.applied_caps()[0] - 110.0).abs() < 1e-9);
        run(&mut p, &mut m, 6, 4, true);
        assert!(p.node_live(0), "healed partition readmits via floor ack");
    }

    #[test]
    fn corrupt_burst_survived() {
        let mut config = FramedConfig::default();
        config.faults.push(FaultEvent::CorruptBurst {
            node: 0,
            at: 2.0,
            until: 10.0,
            prob: 0.3,
        });
        let mut p = plane(2, 2, config);
        let mut m = FixedManager {
            caps: vec![130.0, 90.0, 120.0, 100.0],
            budget: 440.0,
        };
        // Non-strict through the burst: a corrupted frame can forge a
        // SetCap no controller can pre-authorize; the plane's job is to
        // detect (stray acks) and repair (corrective re-sends) it.
        run(&mut p, &mut m, 0, 12, false);
        // Clean cycles after the burst: fully repaired and safe again.
        run(&mut p, &mut m, 12, 4, true);
        assert!(p.stats().frames_corrupted > 0);
        assert!(p.stats().frames_undecodable > 0, "decode-None path hit");
        for (a, want) in p.applied_caps().iter().zip(&m.caps) {
            assert!((a - want).abs() < 1e-9, "{a} vs {want}");
        }
        assert!(p.live_believed_sum() <= m.budget + wire_slack(4));
    }

    #[test]
    fn determinism_per_seed() {
        let build = || {
            let mut config = FramedConfig::default();
            config.link.drop_prob = 0.15;
            config.link.jitter = 20e-6;
            plane(2, 2, config)
        };
        let mut a = build();
        let mut b = build();
        let mut ma = FixedManager {
            caps: vec![150.0, 70.0, 120.0, 100.0],
            budget: 440.0,
        };
        let mut mb = FixedManager {
            caps: ma.caps.clone(),
            budget: 440.0,
        };
        run(&mut a, &mut ma, 0, 20, false);
        run(&mut b, &mut mb, 0, 20, false);
        assert_eq!(a.applied_caps(), b.applied_caps());
        assert_eq!(a.stats(), b.stats());
    }
}
