//! Aggregated control-plane statistics.

use crate::link::LinkCounters;
use dps_sim_core::units::Watts;

/// Counters accumulated by a framed control plane over a run. Transport
/// counters aggregate both directions of every node link; the rest come
/// from the controller's bookkeeping.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CtrlStats {
    /// Frames handed to the transport (both directions).
    pub frames_sent: u64,
    /// Frames delivered to a receiver.
    pub frames_delivered: u64,
    /// Frames lost to the random drop roll.
    pub frames_dropped: u64,
    /// Frames discarded because a partition was active.
    pub frames_blocked: u64,
    /// Frames whose bytes were corrupted in flight.
    pub frames_corrupted: u64,
    /// Delivered frames that failed to decode.
    pub frames_undecodable: u64,
    /// Extra copies created by duplication.
    pub frames_duplicated: u64,
    /// Requests re-sent after a timeout or a mismatched acknowledgement.
    pub retries: u64,
    /// Node-cycles in which gather ended without a full report.
    pub gather_misses: u64,
    /// Live → stale transitions.
    pub stale_transitions: u64,
    /// Stale → live readmissions.
    pub readmissions: u64,
    /// Raise assignments deferred by the budget-headroom check.
    pub raises_deferred: u64,
    /// Cumulative budget reclaimed from non-live nodes (Watt-cycles:
    /// Watts summed over decision cycles).
    pub reclaimed_watt_cycles: f64,
    /// Decision cycles executed.
    pub cycles: u64,
    /// Worst observed excess of the live believed-cap sum over budget +
    /// wire slack (should stay 0; nonzero means the safety invariant broke).
    pub worst_budget_excess: Watts,
}

impl CtrlStats {
    /// Folds one link direction's counters into the transport totals.
    pub fn absorb_link(&mut self, c: LinkCounters) {
        self.frames_sent += c.sent;
        self.frames_delivered += c.delivered;
        self.frames_dropped += c.dropped;
        self.frames_blocked += c.blocked;
        self.frames_corrupted += c.corrupted;
        self.frames_undecodable += c.undecodable;
        self.frames_duplicated += c.duplicated;
    }

    /// Fraction of sent frames that were delivered (1.0 when nothing was
    /// sent).
    pub fn delivery_rate(&self) -> f64 {
        if self.frames_sent == 0 {
            1.0
        } else {
            self.frames_delivered as f64 / self.frames_sent as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_accumulates() {
        let mut s = CtrlStats::default();
        let c = LinkCounters {
            sent: 10,
            delivered: 8,
            dropped: 2,
            ..Default::default()
        };
        s.absorb_link(c);
        s.absorb_link(c);
        assert_eq!(s.frames_sent, 20);
        assert_eq!(s.frames_delivered, 16);
        assert_eq!(s.frames_dropped, 4);
        assert!((s.delivery_rate() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn delivery_rate_defined_when_idle() {
        assert_eq!(CtrlStats::default().delivery_rate(), 1.0);
    }
}
