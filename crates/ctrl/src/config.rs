//! Configuration of the framed control plane.

use crate::fault::FaultSchedule;
use crate::link::LinkConfig;
use dps_sim_core::units::Seconds;
use serde::{Deserialize, Serialize};

/// Parameters of the framed (request/response) control plane.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FramedConfig {
    /// Fault characteristics of every link direction (all node links share
    /// one configuration; per-node asymmetry comes from the fault
    /// schedule).
    pub link: LinkConfig,
    /// Timing/retry/staleness policy.
    pub policy: RetryPolicy,
    /// Timed fault windows for this run.
    pub faults: FaultSchedule,
}

/// Timeout, retry and staleness policy of the controller.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Seconds the controller waits for a response before retrying.
    pub timeout: Seconds,
    /// Retries per request after the first attempt.
    pub max_retries: u32,
    /// Multiplier applied to the timeout after each retry (≥ 1).
    pub backoff: f64,
    /// Consecutive fully-missed gather cycles after which a node is
    /// declared stale (the `k` of the staleness policy).
    pub stale_after: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            // 100× the default 50 µs one-way latency: far past any jitter,
            // still 1/200th of the 1 s decision period even after retries.
            timeout: 5e-3,
            max_retries: 2,
            backoff: 2.0,
            stale_after: 3,
        }
    }
}

impl RetryPolicy {
    /// The deadline extension for attempt `attempt` (0 = first retry).
    pub fn timeout_for_attempt(&self, attempt: u32) -> Seconds {
        self.timeout * self.backoff.powi(attempt.min(16) as i32)
    }
}

impl FramedConfig {
    /// Checks the configuration is coherent for a topology of `n_nodes`
    /// nodes under decision period `period`.
    pub fn validate(&self, n_nodes: usize, period: Seconds) -> Result<(), String> {
        self.link.validate()?;
        self.faults.validate(n_nodes)?;
        let p = &self.policy;
        if !(p.timeout.is_finite() && p.timeout > 0.0) {
            return Err(format!("timeout must be positive, got {}", p.timeout));
        }
        if !(p.backoff.is_finite() && p.backoff >= 1.0) {
            return Err(format!("backoff must be >= 1, got {}", p.backoff));
        }
        if p.stale_after == 0 {
            return Err("stale_after must be at least 1".to_string());
        }
        // The believed-cap safety argument relies on frames not straddling
        // whole decision cycles: a SetCap from one epoch must not arrive
        // after a later epoch's floor assignment. Keeping worst-case
        // transit well inside the period guarantees that ordering.
        let worst_transit = self.link.latency + self.link.jitter;
        if worst_transit * 10.0 > period {
            return Err(format!(
                "latency+jitter ({worst_transit} s) must stay below a tenth \
                 of the decision period ({period} s)"
            ));
        }
        if p.timeout >= period {
            return Err(format!(
                "timeout {} s must be below the decision period {period} s",
                p.timeout
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_validates() {
        assert!(FramedConfig::default().validate(10, 1.0).is_ok());
    }

    #[test]
    fn backoff_grows_timeouts() {
        let p = RetryPolicy::default();
        assert_eq!(p.timeout_for_attempt(0), 5e-3);
        assert_eq!(p.timeout_for_attempt(1), 10e-3);
        assert_eq!(p.timeout_for_attempt(2), 20e-3);
    }

    #[test]
    fn slow_links_rejected_against_period() {
        let mut cfg = FramedConfig::default();
        cfg.link.latency = 0.2;
        assert!(cfg.validate(4, 1.0).is_err());
        assert!(cfg.validate(4, 10.0).is_ok());
    }

    #[test]
    fn degenerate_policy_rejected() {
        let mut cfg = FramedConfig::default();
        cfg.policy.stale_after = 0;
        assert!(cfg.validate(1, 1.0).is_err());
        let mut cfg = FramedConfig::default();
        cfg.policy.backoff = 0.5;
        assert!(cfg.validate(1, 1.0).is_err());
        let mut cfg = FramedConfig::default();
        cfg.policy.timeout = 2.0;
        assert!(cfg.validate(1, 1.0).is_err());
    }

    #[test]
    fn fault_schedule_validated_against_topology() {
        let mut cfg = FramedConfig::default();
        cfg.faults.push(crate::fault::FaultEvent::Crash {
            node: 9,
            at: 0.0,
            until: 1.0,
        });
        assert!(cfg.validate(4, 1.0).is_err());
        assert!(cfg.validate(10, 1.0).is_ok());
    }
}
