//! Deterministic fault schedules for control-plane experiments.
//!
//! A [`FaultSchedule`] is a list of timed fault windows — agent crashes
//! with later rejoin, bidirectional network partitions, and corruption
//! bursts — evaluated against simulated time at each decision-cycle
//! boundary. Schedules are plain data (no randomness of their own; the
//! *effects* of a fault on traffic come from the seeded links), so a fault
//! scenario is exactly reproducible and composable with any seed.

use dps_sim_core::units::Seconds;
use dps_sim_core::window::TimeWindow;
use serde::{Deserialize, Serialize};

/// One timed fault window. All windows are half-open `[at, until)` in
/// simulated seconds and are sampled at decision-cycle boundaries: a fault
/// is in effect for every cycle whose start time falls inside the window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultEvent {
    /// The node's control agent crashes at `at` and reboots at `until`.
    /// The power hardware keeps its last programmed caps while the daemon
    /// is down; on reboot the agent programs the safe floor cap before
    /// answering traffic.
    Crash {
        /// Affected node.
        node: usize,
        /// Crash time.
        at: Seconds,
        /// Reboot time.
        until: Seconds,
    },
    /// Bidirectional partition: frames sent to or from the node during the
    /// window are discarded (frames already in flight still arrive).
    Partition {
        /// Affected node.
        node: usize,
        /// Partition start.
        at: Seconds,
        /// Partition heal.
        until: Seconds,
    },
    /// Corruption burst: the node's links corrupt frames with `prob`
    /// additional probability during the window.
    CorruptBurst {
        /// Affected node.
        node: usize,
        /// Burst start.
        at: Seconds,
        /// Burst end.
        until: Seconds,
        /// Additional per-frame corruption probability.
        prob: f64,
    },
}

impl FaultEvent {
    /// The affected node and activity window, in the shared
    /// [`TimeWindow`] vocabulary (same half-open semantics as the
    /// sensor/actuator schedules in `dps-rapl`).
    fn window(&self) -> (usize, TimeWindow) {
        match *self {
            FaultEvent::Crash { node, at, until }
            | FaultEvent::Partition { node, at, until }
            | FaultEvent::CorruptBurst {
                node, at, until, ..
            } => (node, TimeWindow::new(at, until)),
        }
    }
}

/// A deterministic list of fault windows.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultSchedule {
    events: Vec<FaultEvent>,
}

impl FaultSchedule {
    /// The empty schedule (no faults).
    pub fn none() -> Self {
        Self::default()
    }

    /// A schedule from a list of events.
    pub fn new(events: Vec<FaultEvent>) -> Self {
        Self { events }
    }

    /// Appends an event.
    pub fn push(&mut self, event: FaultEvent) {
        self.events.push(event);
    }

    /// The scheduled events.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// True when no faults are scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Is the node's agent crashed at time `t`?
    pub fn crashed(&self, node: usize, t: Seconds) -> bool {
        self.events.iter().any(|e| {
            matches!(e, FaultEvent::Crash { .. }) && {
                let (n, w) = e.window();
                n == node && w.contains(t)
            }
        })
    }

    /// Is the node partitioned from the controller at time `t`?
    pub fn partitioned(&self, node: usize, t: Seconds) -> bool {
        self.events.iter().any(|e| {
            matches!(e, FaultEvent::Partition { .. }) && {
                let (n, w) = e.window();
                n == node && w.contains(t)
            }
        })
    }

    /// The strongest corruption boost active for the node at time `t`
    /// (0 when no burst is active).
    pub fn corrupt_boost(&self, node: usize, t: Seconds) -> f64 {
        self.events
            .iter()
            .filter_map(|e| match *e {
                FaultEvent::CorruptBurst {
                    node: n,
                    at,
                    until,
                    prob,
                } if n == node && TimeWindow::new(at, until).contains(t) => Some(prob),
                _ => None,
            })
            .fold(0.0, f64::max)
    }

    /// Checks windows are well-formed and node indices fit the topology.
    pub fn validate(&self, n_nodes: usize) -> Result<(), String> {
        for e in &self.events {
            let (node, w) = e.window();
            if node >= n_nodes {
                return Err(format!("fault names node {node}, only {n_nodes} exist"));
            }
            w.validate().map_err(|e| format!("fault window: {e}"))?;
            if let FaultEvent::CorruptBurst { prob, .. } = *e {
                if !(prob.is_finite() && (0.0..=1.0).contains(&prob)) {
                    return Err(format!("corrupt burst prob must be in [0,1], got {prob}"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schedule() -> FaultSchedule {
        FaultSchedule::new(vec![
            FaultEvent::Crash {
                node: 1,
                at: 10.0,
                until: 20.0,
            },
            FaultEvent::Partition {
                node: 0,
                at: 5.0,
                until: 8.0,
            },
            FaultEvent::CorruptBurst {
                node: 1,
                at: 30.0,
                until: 40.0,
                prob: 0.25,
            },
        ])
    }

    #[test]
    fn windows_are_half_open() {
        let s = schedule();
        assert!(!s.crashed(1, 9.99));
        assert!(s.crashed(1, 10.0));
        assert!(s.crashed(1, 19.99));
        assert!(!s.crashed(1, 20.0));
    }

    #[test]
    fn faults_are_per_node() {
        let s = schedule();
        assert!(!s.crashed(0, 15.0));
        assert!(s.partitioned(0, 6.0));
        assert!(!s.partitioned(1, 6.0));
    }

    #[test]
    fn corrupt_boost_max_over_bursts() {
        let mut s = schedule();
        s.push(FaultEvent::CorruptBurst {
            node: 1,
            at: 35.0,
            until: 38.0,
            prob: 0.9,
        });
        assert_eq!(s.corrupt_boost(1, 31.0), 0.25);
        assert_eq!(s.corrupt_boost(1, 36.0), 0.9);
        assert_eq!(s.corrupt_boost(1, 50.0), 0.0);
    }

    #[test]
    fn validate_catches_bad_windows() {
        let s = schedule();
        assert!(s.validate(2).is_ok());
        assert!(s.validate(1).is_err(), "node 1 out of range");
        let bad = FaultSchedule::new(vec![FaultEvent::Crash {
            node: 0,
            at: 5.0,
            until: 5.0,
        }]);
        assert!(bad.validate(1).is_err(), "empty window");
        let neg = FaultSchedule::new(vec![FaultEvent::CorruptBurst {
            node: 0,
            at: 0.0,
            until: 1.0,
            prob: 1.5,
        }]);
        assert!(neg.validate(1).is_err());
    }

    #[test]
    fn empty_schedule_is_quiet() {
        let s = FaultSchedule::none();
        assert!(s.is_empty());
        assert!(!s.crashed(0, 0.0));
        assert!(!s.partitioned(0, 0.0));
        assert_eq!(s.corrupt_boost(0, 0.0), 0.0);
        assert!(s.validate(0).is_ok());
    }
}
