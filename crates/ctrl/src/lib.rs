//! `dps-ctrl` — the framed control plane for the DPS cluster simulation.
//!
//! The paper's control plane (§6.5) talks to node agents over a 3-byte
//! framed wire protocol. The rest of this repository models that exchange
//! as either instantaneous shared memory ("direct") or a lossless
//! quantization pass ("quantized"). This crate supplies the third, most
//! faithful mode: a deterministic discrete-event control plane in which
//! every poll, report, cap assignment and acknowledgement is a [`Frame`]
//! on a [`LossyLink`] that can drop, delay, reorder, duplicate or corrupt
//! it — with a [`Controller`] that keeps the cluster inside its power
//! budget anyway.
//!
//! Components, bottom-up:
//!
//! * [`frame`] — the 3-byte wire protocol and the ideal [`LatencyLink`].
//! * [`link`] — [`LossyLink`], the faulty transport.
//! * [`agent`] — [`NodeAgent`], the per-node daemon.
//! * [`controller`] — [`Controller`], liveness tracking, hold-last
//!   telemetry and the believed-cap budget-safety invariant.
//! * [`plane`] — [`FramedControlPlane`], the gather→decide→scatter event
//!   loop gluing the above together.
//! * [`fault`] / [`config`] / [`stats`] — fault schedules, configuration,
//!   and run counters.
//!
//! Everything is seeded through [`dps_sim_core::rng::RngStream`]: the same
//! seed replays the same drops, the same retries, the same cap history.

#![warn(missing_docs)]

pub mod agent;
pub mod config;
pub mod controller;
pub mod fault;
pub mod frame;
pub mod link;
pub mod plane;
pub mod stats;

pub use agent::NodeAgent;
pub use config::{FramedConfig, RetryPolicy};
pub use controller::Controller;
pub use fault::{FaultEvent, FaultSchedule};
pub use frame::{watts_to_wire, wire_slack, Frame, LatencyLink, DECIWATT, DELIVERY_EPSILON};
pub use link::{LinkConfig, LinkCounters, LossyLink};
pub use plane::FramedControlPlane;
pub use stats::CtrlStats;
