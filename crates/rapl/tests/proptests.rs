//! Property tests for the simulated RAPL substrate.

use dps_rapl::counter::DEFAULT_ENERGY_UNIT;
use dps_rapl::{DomainSpec, EnergyCounter, EnergyReader, NoiseModel, PowerDomain, Topology};
use dps_sim_core::rng::RngStream;
use proptest::prelude::*;

proptest! {
    /// The reader recovers the average power fed into the counter for any
    /// sequence of windows, including across counter wraps.
    #[test]
    fn reader_recovers_power(
        windows in prop::collection::vec((0.0f64..300.0, 0.1f64..5.0), 1..200),
    ) {
        let mut hw = EnergyCounter::new();
        let mut reader = EnergyReader::new(hw.unit());
        let mut now = 0.0;
        reader.sample(hw.raw(), now);
        for (power, dt) in windows {
            hw.accumulate(power, dt);
            now += dt;
            let measured = reader.sample(hw.raw(), now).unwrap();
            // Quantization error: one counter unit over the window.
            let tolerance = hw.unit() / dt + 1e-9;
            prop_assert!(
                (measured - power).abs() <= tolerance,
                "measured {measured} vs {power} (tol {tolerance})"
            );
        }
    }

    /// A corrupted or backwards-jumping counter can never panic the reader
    /// or produce NaN/negative power: whatever raw values arrive (including
    /// garbage above the 32-bit range), every decoded power is finite,
    /// non-negative and bounded by one full counter wrap over the window.
    #[test]
    fn reader_survives_arbitrary_raw_sequences(
        reads in prop::collection::vec((any::<u64>(), 0.001f64..10.0), 1..100),
    ) {
        let unit = DEFAULT_ENERGY_UNIT;
        let mut r = EnergyReader::new(unit);
        let mut now = 0.0;
        for (raw, dt) in reads {
            now += dt;
            if let Some(p) = r.sample(raw, now) {
                prop_assert!(p.is_finite(), "power must be finite, got {p}");
                prop_assert!(p >= 0.0, "power must be non-negative, got {p}");
                let wrap_bound = (1u64 << 32) as f64 * unit / dt;
                prop_assert!(p <= wrap_bound + 1e-9, "{p} exceeds wrap span {wrap_bound}");
            }
        }
    }

    /// One corrupted raw read in an otherwise honest stream perturbs at most
    /// the two samples that difference against it; from the next honest read
    /// on, the reader recovers the true power exactly.
    #[test]
    fn reader_recovers_after_one_corrupted_read(
        corrupt_at in 2usize..40,
        corrupt_raw in any::<u64>(),
        extra in 2usize..40,
    ) {
        let truth = 120.0;
        let mut hw = EnergyCounter::new();
        let mut r = EnergyReader::new(hw.unit());
        r.sample(hw.raw(), 0.0);
        for i in 1..corrupt_at + extra {
            hw.accumulate(truth, 1.0);
            let raw = if i == corrupt_at { corrupt_raw } else { hw.raw() };
            let p = r.sample(raw, i as f64);
            // The read of the corrupted value and the first read after it
            // (differencing against the corrupted baseline) may be wild but
            // must stay finite and non-negative; all others must be exact up
            // to quantization.
            match p {
                Some(p) => {
                    prop_assert!(p.is_finite() && p >= 0.0);
                    if i != corrupt_at && i != corrupt_at + 1 {
                        let tol = hw.unit() + 1e-9;
                        prop_assert!((p - truth).abs() <= tol, "step {i}: {p} vs {truth}");
                    }
                }
                None => prop_assert!(false, "time advanced, sample expected"),
            }
        }
    }

    /// Delivered power is always within [idle, cap-or-idle-max] and never
    /// exceeds demand when demand is above idle.
    #[test]
    fn domain_power_envelope(
        demands in prop::collection::vec(0.0f64..250.0, 1..100),
        cap in 0.0f64..300.0,
    ) {
        let spec = DomainSpec::xeon_gold_6240();
        let mut d = PowerDomain::new(spec, NoiseModel::None, RngStream::new(1, "prop"));
        let effective_cap = d.set_cap(cap);
        prop_assert!(effective_cap >= spec.min_cap && effective_cap <= spec.tdp);
        for demand in demands {
            let actual = d.step(demand, 1.0);
            prop_assert!(actual >= spec.idle_power - 1e-9);
            prop_assert!(actual <= effective_cap.max(spec.idle_power) + 1e-9);
            if demand > spec.idle_power {
                prop_assert!(actual <= demand + 1e-9);
            }
        }
    }

    /// Energy conservation through the measurement path: with no noise,
    /// window-by-window measurements integrate to the same energy as the
    /// true delivered powers.
    #[test]
    fn domain_measurements_integrate_to_delivered_energy(
        demands in prop::collection::vec(0.0f64..200.0, 1..50),
    ) {
        let spec = DomainSpec::xeon_gold_6240();
        let mut d = PowerDomain::new(spec, NoiseModel::None, RngStream::new(2, "prop"));
        d.set_cap(120.0);
        let mut true_joules = 0.0;
        let mut measured_joules = 0.0;
        for demand in demands {
            true_joules += d.step(demand, 1.0);
            measured_joules += d.measure();
        }
        prop_assert!(
            (true_joules - measured_joules).abs() < 0.001 * (1.0 + true_joules),
            "{true_joules} vs {measured_joules}"
        );
    }

    /// Noise is zero-mean in aggregate: long-run average of measurements
    /// approaches true power.
    #[test]
    fn noise_zero_mean(std_dev in 0.1f64..8.0, truth in 50.0f64..160.0) {
        let model = NoiseModel::Gaussian { std_dev };
        let mut rng = RngStream::new(7, "prop-noise");
        let n = 4000;
        let mean: f64 = (0..n).map(|_| model.apply(truth, &mut rng)).sum::<f64>() / n as f64;
        prop_assert!((mean - truth).abs() < 5.0 * std_dev / (n as f64).sqrt() + 0.05);
    }

    /// Topology flatten/unflatten is a bijection for arbitrary shapes.
    #[test]
    fn topology_bijection(c in 1usize..5, n in 1usize..8, s in 1usize..4) {
        let topo = Topology::new(c, n, s);
        let mut seen = vec![false; topo.total_units()];
        for id in topo.iter_units() {
            let flat = topo.flatten(id);
            prop_assert!(!seen[flat], "duplicate flat index {flat}");
            seen[flat] = true;
            prop_assert_eq!(topo.unflatten(flat), id);
        }
        prop_assert!(seen.iter().all(|&b| b));
    }

    /// Cluster ranges partition the flat index space.
    #[test]
    fn cluster_ranges_partition(c in 1usize..6, n in 1usize..6, s in 1usize..4) {
        let topo = Topology::new(c, n, s);
        let mut covered = 0;
        for cluster in 0..c {
            let range = topo.cluster_range(cluster);
            covered += range.len();
            for i in range {
                prop_assert_eq!(topo.cluster_of(i), cluster);
            }
        }
        prop_assert_eq!(covered, topo.total_units());
    }
}
