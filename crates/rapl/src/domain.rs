//! One simulated power-capping unit (a socket package).
//!
//! A [`PowerDomain`] enforces its cap the way RAPL's long-term power limit
//! does on a one-second control window: average power over the window never
//! exceeds the cap (RAPL reacts in milliseconds, far below the manager's
//! decision period, so within a window enforcement is effectively exact —
//! the paper relies on "in all cases ... the power caps are respected",
//! §6). Demand above the cap is clipped; the clipping ratio is what the
//! workload model uses to slow progress.

use crate::counter::{EnergyCounter, EnergyReader};
use crate::noise::NoiseModel;
use dps_sim_core::rng::RngStream;
use dps_sim_core::units::{clamp_power, Seconds, Watts};
use serde::{Deserialize, Serialize};

/// Static capabilities of a power domain.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DomainSpec {
    /// Thermal design power: the maximum settable cap (165 W per socket on
    /// the paper's Xeon Gold 6240 testbed).
    pub tdp: Watts,
    /// Lowest operational cap RAPL will honour.
    pub min_cap: Watts,
    /// Idle draw: power consumed even when demand is zero (uncore, DRAM
    /// refresh, leakage). Actual power never falls below this.
    pub idle_power: Watts,
}

impl DomainSpec {
    /// The paper's socket: 165 W TDP. Minimum cap and idle power are not
    /// published; 40 W / 15 W are representative of Cascade Lake sockets.
    pub fn xeon_gold_6240() -> Self {
        Self {
            tdp: 165.0,
            min_cap: 40.0,
            idle_power: 15.0,
        }
    }

    /// Validates internal consistency.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.tdp.is_finite() && self.tdp > 0.0) {
            return Err(format!("tdp must be positive, got {}", self.tdp));
        }
        if !(self.min_cap.is_finite() && self.min_cap >= 0.0 && self.min_cap <= self.tdp) {
            return Err(format!(
                "min_cap must be in [0, tdp], got {} (tdp {})",
                self.min_cap, self.tdp
            ));
        }
        if !(self.idle_power.is_finite() && self.idle_power >= 0.0 && self.idle_power <= self.tdp) {
            return Err(format!(
                "idle_power must be in [0, tdp], got {}",
                self.idle_power
            ));
        }
        Ok(())
    }
}

impl Default for DomainSpec {
    fn default() -> Self {
        Self::xeon_gold_6240()
    }
}

/// Simulated power-capping unit.
///
/// Drive it with [`PowerDomain::step`] once per control window, then read the
/// (noisy) measurement with [`PowerDomain::measure`]:
///
/// ```
/// use dps_rapl::{DomainSpec, NoiseModel, PowerDomain};
/// use dps_sim_core::RngStream;
/// let rng = RngStream::new(0, "doc");
/// let mut d = PowerDomain::new(DomainSpec::xeon_gold_6240(), NoiseModel::None, rng);
/// d.set_cap(110.0);
/// let actual = d.step(160.0, 1.0); // demand 160 W, capped at 110 W
/// assert_eq!(actual, 110.0);
/// assert_eq!(d.measure(), 110.0);
/// ```
#[derive(Debug, Clone)]
pub struct PowerDomain {
    spec: DomainSpec,
    cap: Watts,
    counter: EnergyCounter,
    reader: EnergyReader,
    noise: NoiseModel,
    rng: RngStream,
    now: Seconds,
    /// True average power over the last completed window.
    last_actual: Watts,
    /// Most recent noisy measurement handed out.
    last_measured: Watts,
}

impl PowerDomain {
    /// Creates a domain with its cap initially at TDP (uncapped).
    ///
    /// # Panics
    /// Panics if the spec is inconsistent.
    pub fn new(spec: DomainSpec, noise: NoiseModel, rng: RngStream) -> Self {
        spec.validate().expect("invalid domain spec");
        let counter = EnergyCounter::new();
        let reader = EnergyReader::new(counter.unit());
        Self {
            spec,
            cap: spec.tdp,
            counter,
            reader,
            noise,
            rng,
            now: 0.0,
            last_actual: 0.0,
            last_measured: 0.0,
        }
    }

    /// The domain's static spec.
    #[inline]
    pub fn spec(&self) -> &DomainSpec {
        &self.spec
    }

    /// Currently programmed cap.
    #[inline]
    pub fn cap(&self) -> Watts {
        self.cap
    }

    /// Programs a new cap, clamped into `[min_cap, tdp]` the way the RAPL
    /// driver clamps out-of-range requests. Returns the effective cap.
    pub fn set_cap(&mut self, cap: Watts) -> Watts {
        self.cap = clamp_power(cap, self.spec.min_cap, self.spec.tdp);
        self.cap
    }

    /// Advances one control window of length `dt`: the workload demands
    /// `demand` Watts; the domain delivers
    /// `min(max(demand, idle), cap)`... except idle draw is physical and is
    /// never capped below (RAPL cannot turn off leakage). Returns the true
    /// average power over the window.
    pub fn step(&mut self, demand: Watts, dt: Seconds) -> Watts {
        debug_assert!(dt > 0.0, "window must have positive duration");
        let demand = demand.max(0.0);
        // Physical floor: the package draws idle power regardless of load.
        let wanted = demand.max(self.spec.idle_power);
        let actual = wanted
            .min(self.cap)
            .max(self.spec.idle_power.min(self.spec.tdp));
        self.counter.accumulate(actual, dt);
        self.now += dt;
        self.last_actual = actual;
        actual
    }

    /// Samples the energy counter and returns a noisy average-power
    /// measurement for the last window — what the node client reports to the
    /// power manager. Falls back to the last true power if the reader has no
    /// baseline yet (first call).
    pub fn measure(&mut self) -> Watts {
        let truth = self
            .reader
            .sample(self.counter.raw(), self.now)
            .unwrap_or(self.last_actual);
        self.last_measured = self.noise.apply(truth, &mut self.rng);
        self.last_measured
    }

    /// True power over the last window (ground truth — used by the oracle
    /// and by satisfaction accounting, never by realistic managers).
    #[inline]
    pub fn true_power(&self) -> Watts {
        self.last_actual
    }

    /// The most recent measurement handed out by [`PowerDomain::measure`].
    #[inline]
    pub fn last_measurement(&self) -> Watts {
        self.last_measured
    }

    /// Simulated time at the end of the last completed window.
    #[inline]
    pub fn now(&self) -> Seconds {
        self.now
    }

    /// Resolution of the underlying energy counter in Joules per count
    /// (needed to decode corrupted counter deltas into powers).
    #[inline]
    pub fn energy_unit(&self) -> f64 {
        self.counter.unit()
    }

    /// The fraction of demanded power actually granted in the last window
    /// (1.0 when uncapped or idle). The workload model scales progress by
    /// this ratio.
    pub fn grant_ratio(&self, demand: Watts) -> f64 {
        if demand <= self.spec.idle_power {
            return 1.0;
        }
        (self.last_actual / demand).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn domain(noise: NoiseModel) -> PowerDomain {
        PowerDomain::new(
            DomainSpec::xeon_gold_6240(),
            noise,
            RngStream::new(42, "domain-test"),
        )
    }

    #[test]
    fn uncapped_power_follows_demand() {
        let mut d = domain(NoiseModel::None);
        assert_eq!(d.step(120.0, 1.0), 120.0);
        assert_eq!(d.step(60.0, 1.0), 60.0);
    }

    #[test]
    fn cap_clips_demand() {
        let mut d = domain(NoiseModel::None);
        d.set_cap(110.0);
        assert_eq!(d.step(160.0, 1.0), 110.0);
        assert_eq!(d.step(90.0, 1.0), 90.0);
    }

    #[test]
    fn idle_floor_always_drawn() {
        let mut d = domain(NoiseModel::None);
        d.set_cap(110.0);
        assert_eq!(d.step(0.0, 1.0), 15.0);
        // Even a cap below idle cannot push power under the physical floor;
        // set_cap also clamps to min_cap=40 first.
        d.set_cap(0.0);
        assert_eq!(d.cap(), 40.0);
        assert_eq!(d.step(0.0, 1.0), 15.0);
    }

    #[test]
    fn set_cap_clamps_to_spec() {
        let mut d = domain(NoiseModel::None);
        assert_eq!(d.set_cap(500.0), 165.0);
        assert_eq!(d.set_cap(10.0), 40.0);
        assert_eq!(d.set_cap(f64::NAN), 40.0);
    }

    #[test]
    fn measurement_matches_truth_without_noise() {
        let mut d = domain(NoiseModel::None);
        d.set_cap(110.0);
        d.step(160.0, 1.0);
        assert!((d.measure() - 110.0).abs() < 0.01);
        d.step(50.0, 1.0);
        assert!((d.measure() - 50.0).abs() < 0.01);
    }

    #[test]
    fn measurement_noise_applied() {
        let mut d = domain(NoiseModel::Gaussian { std_dev: 2.0 });
        d.set_cap(110.0);
        let mut diffs = Vec::new();
        for _ in 0..500 {
            d.step(160.0, 1.0);
            diffs.push((d.measure() - 110.0).abs());
        }
        let mean_abs = diffs.iter().sum::<f64>() / diffs.len() as f64;
        // E|N(0,2)| ≈ 1.6; definitely non-zero, definitely below 3.
        assert!(mean_abs > 0.5 && mean_abs < 3.0, "mean abs err {mean_abs}");
    }

    #[test]
    fn caps_respected_over_long_run() {
        // The paper's safety claim: power caps are respected in all cases.
        let mut d = domain(NoiseModel::None);
        d.set_cap(90.0);
        for i in 0..1000 {
            let demand = 50.0 + (i % 140) as f64;
            let actual = d.step(demand, 1.0);
            assert!(actual <= d.cap() + 1e-9, "step {i}: {actual} > cap");
        }
    }

    #[test]
    fn grant_ratio_reflects_throttling() {
        let mut d = domain(NoiseModel::None);
        d.set_cap(80.0);
        d.step(160.0, 1.0);
        assert!((d.grant_ratio(160.0) - 0.5).abs() < 1e-12);
        d.set_cap(165.0);
        d.step(160.0, 1.0);
        assert_eq!(d.grant_ratio(160.0), 1.0);
        // Idle demand is always fully granted.
        d.step(0.0, 1.0);
        assert_eq!(d.grant_ratio(0.0), 1.0);
    }

    #[test]
    fn negative_demand_treated_as_idle() {
        let mut d = domain(NoiseModel::None);
        assert_eq!(d.step(-50.0, 1.0), 15.0);
    }

    #[test]
    fn clock_advances_with_steps() {
        let mut d = domain(NoiseModel::None);
        d.step(100.0, 0.5);
        d.step(100.0, 0.5);
        assert!((d.now() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn first_measure_without_step_is_zero() {
        let mut d = domain(NoiseModel::None);
        assert_eq!(d.measure(), 0.0);
    }
}
