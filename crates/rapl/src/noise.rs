//! Measurement-noise models for simulated RAPL readings.
//!
//! The paper: "Although RAPL has been verified by previous work to deliver
//! reliably high accuracy, noise exists in power usage traces and we further
//! assume pessimistically that RAPL bares certain measurement noise.
//! Therefore we assume the exact power is not known, but is a hidden variable
//! that must be estimated from these noisy measurements" (§4.3). The DPS
//! Kalman filter exists to absorb exactly this noise, so the substrate must
//! be able to inject it.

use dps_sim_core::rng::RngStream;
use dps_sim_core::units::Watts;
use serde::{Deserialize, Serialize};

/// A measurement-noise model applied to true power before the manager sees it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum NoiseModel {
    /// Perfect measurements (useful for oracle runs and unit tests).
    None,
    /// Additive zero-mean Gaussian noise with the given standard deviation in
    /// Watts. Khan et al. (TOMPECS '18) report RAPL errors of a few percent;
    /// the experiments default to ~1.5 W on a 110 W signal.
    Gaussian {
        /// Standard deviation in Watts.
        std_dev: Watts,
    },
    /// Gaussian noise plus quantization to the reader's resolution, modelling
    /// coarse energy units on a short read interval.
    QuantizedGaussian {
        /// Standard deviation in Watts.
        std_dev: Watts,
        /// Quantization step in Watts.
        step: Watts,
    },
}

impl Default for NoiseModel {
    /// The experiments' default: 1.5 W Gaussian.
    fn default() -> Self {
        NoiseModel::Gaussian { std_dev: 1.5 }
    }
}

impl NoiseModel {
    /// Applies the model to a true power value. Measurements are clamped at
    /// zero: a power meter never reports negative draw.
    pub fn apply(&self, truth: Watts, rng: &mut RngStream) -> Watts {
        match *self {
            NoiseModel::None => truth,
            NoiseModel::Gaussian { std_dev } => (truth + rng.normal(0.0, std_dev)).max(0.0),
            NoiseModel::QuantizedGaussian { std_dev, step } => {
                let noisy = (truth + rng.normal(0.0, std_dev)).max(0.0);
                if step > 0.0 {
                    (noisy / step).round() * step
                } else {
                    noisy
                }
            }
        }
    }

    /// The model's measurement variance (R for the Kalman filter).
    /// Quantization contributes `step²/12` (uniform quantization noise).
    pub fn variance(&self) -> f64 {
        match *self {
            NoiseModel::None => 0.0,
            NoiseModel::Gaussian { std_dev } => std_dev * std_dev,
            NoiseModel::QuantizedGaussian { std_dev, step } => {
                std_dev * std_dev + step * step / 12.0
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_identity() {
        let mut rng = RngStream::new(1, "noise");
        assert_eq!(NoiseModel::None.apply(123.4, &mut rng), 123.4);
        assert_eq!(NoiseModel::None.variance(), 0.0);
    }

    #[test]
    fn gaussian_statistics() {
        let mut rng = RngStream::new(2, "noise");
        let model = NoiseModel::Gaussian { std_dev: 2.0 };
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| model.apply(110.0, &mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 110.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
        assert!((model.variance() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn measurements_never_negative() {
        let mut rng = RngStream::new(3, "noise");
        let model = NoiseModel::Gaussian { std_dev: 50.0 };
        for _ in 0..1000 {
            assert!(model.apply(5.0, &mut rng) >= 0.0);
        }
    }

    #[test]
    fn quantization_snaps_to_grid() {
        let mut rng = RngStream::new(4, "noise");
        let model = NoiseModel::QuantizedGaussian {
            std_dev: 0.0,
            step: 0.5,
        };
        for truth in [110.1, 110.2, 110.3] {
            let m = model.apply(truth, &mut rng);
            let snapped = (m / 0.5).round() * 0.5;
            assert!((m - snapped).abs() < 1e-12);
        }
    }

    #[test]
    fn quantized_variance_includes_quantization_term() {
        let model = NoiseModel::QuantizedGaussian {
            std_dev: 1.0,
            step: 1.2,
        };
        assert!((model.variance() - (1.0 + 1.44 / 12.0)).abs() < 1e-12);
    }

    #[test]
    fn default_is_mild_gaussian() {
        match NoiseModel::default() {
            NoiseModel::Gaussian { std_dev } => assert!(std_dev > 0.0 && std_dev < 5.0),
            other => panic!("unexpected default {other:?}"),
        }
    }
}
