//! The hardware abstraction power managers are written against.
//!
//! Paper §4.2: "Although DPS uses RAPL to read power and set the power caps,
//! it is not tied to the RAPL interface. DPS only needs to interact with the
//! hardware in these two ways and it can be implemented with any interface
//! with these functionalities." [`PowerInterface`] is exactly those two
//! operations (plus the static limits a controller must know to clamp its
//! decisions), implemented here by a bank of simulated [`PowerDomain`]s and
//! implementable on real hardware by an MSR- or sysfs-backed type.

use crate::domain::{DomainSpec, PowerDomain};
use crate::noise::NoiseModel;
use dps_sim_core::rng::RngStream;
use dps_sim_core::units::{Seconds, Watts};

/// Read-power / set-cap abstraction over a fixed set of power-capping units,
/// indexed densely `0..num_units()`.
pub trait PowerInterface {
    /// Number of power-capping units.
    fn num_units(&self) -> usize;

    /// Reads the (possibly noisy) average power of unit `unit` over the last
    /// control window.
    fn read_power(&mut self, unit: usize) -> Watts;

    /// Programs a power cap; the implementation clamps to its own limits and
    /// returns the effective cap.
    fn set_cap(&mut self, unit: usize, cap: Watts) -> Watts;

    /// The currently programmed cap.
    fn cap(&self, unit: usize) -> Watts;

    /// Maximum settable cap (TDP) of the unit.
    fn max_cap(&self, unit: usize) -> Watts;

    /// Minimum settable cap of the unit.
    fn min_cap(&self, unit: usize) -> Watts;
}

/// A bank of simulated domains behind the [`PowerInterface`] trait.
///
/// The cluster simulator drives demand into the bank each window via
/// [`DomainBank::step_all`]; managers then read power and set caps through
/// the trait, exactly as they would against real RAPL.
#[derive(Debug, Clone)]
pub struct DomainBank {
    domains: Vec<PowerDomain>,
}

impl DomainBank {
    /// Creates `n` identical domains with per-domain noise RNG streams
    /// derived from `rng`.
    pub fn homogeneous(n: usize, spec: DomainSpec, noise: NoiseModel, rng: &RngStream) -> Self {
        let domains = (0..n)
            .map(|i| PowerDomain::new(spec, noise.clone(), rng.child(&format!("domain/{i}"))))
            .collect();
        Self { domains }
    }

    /// Advances every domain one window with the given per-unit demands;
    /// returns the true power of each unit.
    ///
    /// # Panics
    /// Panics if `demands.len() != num_units()`.
    pub fn step_all(&mut self, demands: &[Watts], dt: Seconds) -> Vec<Watts> {
        assert_eq!(
            demands.len(),
            self.domains.len(),
            "one demand per domain required"
        );
        self.domains
            .iter_mut()
            .zip(demands)
            .map(|(d, &demand)| d.step(demand, dt))
            .collect()
    }

    /// Direct access to a domain (satisfaction accounting needs ground truth).
    pub fn domain(&self, unit: usize) -> &PowerDomain {
        &self.domains[unit]
    }

    /// Mutable access to a domain.
    pub fn domain_mut(&mut self, unit: usize) -> &mut PowerDomain {
        &mut self.domains[unit]
    }

    /// All current caps, densely indexed.
    pub fn caps(&self) -> Vec<Watts> {
        self.domains.iter().map(|d| d.cap()).collect()
    }
}

impl PowerInterface for DomainBank {
    fn num_units(&self) -> usize {
        self.domains.len()
    }

    fn read_power(&mut self, unit: usize) -> Watts {
        self.domains[unit].measure()
    }

    fn set_cap(&mut self, unit: usize, cap: Watts) -> Watts {
        self.domains[unit].set_cap(cap)
    }

    fn cap(&self, unit: usize) -> Watts {
        self.domains[unit].cap()
    }

    fn max_cap(&self, unit: usize) -> Watts {
        self.domains[unit].spec().tdp
    }

    fn min_cap(&self, unit: usize) -> Watts {
        self.domains[unit].spec().min_cap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bank(n: usize) -> DomainBank {
        DomainBank::homogeneous(
            n,
            DomainSpec::xeon_gold_6240(),
            NoiseModel::None,
            &RngStream::new(7, "bank-test"),
        )
    }

    #[test]
    fn bank_has_requested_units() {
        let b = bank(20);
        assert_eq!(b.num_units(), 20);
        assert_eq!(b.caps().len(), 20);
    }

    #[test]
    fn step_all_returns_true_powers() {
        let mut b = bank(3);
        b.set_cap(1, 100.0);
        let powers = b.step_all(&[50.0, 160.0, 0.0], 1.0);
        assert_eq!(powers, vec![50.0, 100.0, 15.0]);
    }

    #[test]
    fn read_power_after_step() {
        let mut b = bank(2);
        b.step_all(&[120.0, 80.0], 1.0);
        assert!((b.read_power(0) - 120.0).abs() < 0.01);
        assert!((b.read_power(1) - 80.0).abs() < 0.01);
    }

    #[test]
    fn trait_limits_match_spec() {
        let b = bank(1);
        assert_eq!(b.max_cap(0), 165.0);
        assert_eq!(b.min_cap(0), 40.0);
    }

    #[test]
    fn set_cap_via_trait_clamps() {
        let mut b = bank(1);
        assert_eq!(PowerInterface::set_cap(&mut b, 0, 1000.0), 165.0);
        assert_eq!(b.cap(0), 165.0);
    }

    #[test]
    fn per_domain_noise_streams_differ() {
        let mut b = DomainBank::homogeneous(
            2,
            DomainSpec::xeon_gold_6240(),
            NoiseModel::Gaussian { std_dev: 3.0 },
            &RngStream::new(1, "noisy-bank"),
        );
        b.step_all(&[110.0, 110.0], 1.0);
        let m0 = b.read_power(0);
        let m1 = b.read_power(1);
        assert_ne!(m0, m1, "independent noise streams expected");
    }

    #[test]
    #[should_panic(expected = "one demand per domain")]
    fn step_all_length_mismatch_panics() {
        bank(2).step_all(&[1.0], 1.0);
    }
}
