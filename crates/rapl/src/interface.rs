//! The hardware abstraction power managers are written against.
//!
//! Paper §4.2: "Although DPS uses RAPL to read power and set the power caps,
//! it is not tied to the RAPL interface. DPS only needs to interact with the
//! hardware in these two ways and it can be implemented with any interface
//! with these functionalities." [`PowerInterface`] is exactly those two
//! operations (plus the static limits a controller must know to clamp its
//! decisions), implemented here by a bank of simulated [`PowerDomain`]s and
//! implementable on real hardware by an MSR- or sysfs-backed type.

use crate::domain::{DomainSpec, PowerDomain};
use crate::fault::{ActuatorFault, UnitFaultSchedule};
use crate::noise::NoiseModel;
use dps_sim_core::rng::RngStream;
use dps_sim_core::units::{clamp_power, Seconds, Watts};

/// Read-power / set-cap abstraction over a fixed set of power-capping units,
/// indexed densely `0..num_units()`.
pub trait PowerInterface {
    /// Number of power-capping units.
    fn num_units(&self) -> usize;

    /// Reads the (possibly noisy) average power of unit `unit` over the last
    /// control window.
    fn read_power(&mut self, unit: usize) -> Watts;

    /// Programs a power cap; the implementation clamps to its own limits and
    /// returns the effective cap.
    fn set_cap(&mut self, unit: usize, cap: Watts) -> Watts;

    /// The currently programmed cap.
    fn cap(&self, unit: usize) -> Watts;

    /// Maximum settable cap (TDP) of the unit.
    fn max_cap(&self, unit: usize) -> Watts;

    /// Minimum settable cap of the unit.
    fn min_cap(&self, unit: usize) -> Watts;
}

/// A bank of simulated domains behind the [`PowerInterface`] trait.
///
/// The cluster simulator drives demand into the bank each window via
/// [`DomainBank::step_all`]; managers then read power and set caps through
/// the trait, exactly as they would against real RAPL.
///
/// An optional [`UnitFaultSchedule`] corrupts the two trait operations:
/// sensor faults transform what [`PowerInterface::read_power`] returns
/// (after the noise model), actuator faults subvert what
/// [`PowerInterface::set_cap`] programs — silently, so only a readback via
/// [`PowerInterface::cap`] shows the truth.
#[derive(Debug, Clone)]
pub struct DomainBank {
    domains: Vec<PowerDomain>,
    faults: UnitFaultSchedule,
    /// Per-unit streams for probabilistic faults (spikes, corruption).
    fault_rngs: Vec<RngStream>,
    /// End time of the last completed window — when reads and writes happen.
    now: Seconds,
    /// Length of the last completed window (for decoding counter deltas).
    last_dt: Seconds,
    /// Delayed cap writes still in flight: `(applies_at, cap)` per unit, in
    /// issue order.
    pending_writes: Vec<Vec<(Seconds, Watts)>>,
}

impl DomainBank {
    /// Creates `n` identical domains with per-domain noise RNG streams
    /// derived from `rng`.
    pub fn homogeneous(n: usize, spec: DomainSpec, noise: NoiseModel, rng: &RngStream) -> Self {
        let domains = (0..n)
            .map(|i| PowerDomain::new(spec, noise.clone(), rng.child(&format!("domain/{i}"))))
            .collect();
        Self {
            domains,
            faults: UnitFaultSchedule::none(),
            fault_rngs: Vec::new(),
            now: 0.0,
            last_dt: 1.0,
            pending_writes: vec![Vec::new(); n],
        }
    }

    /// Installs a sensor/actuator fault schedule. Per-unit fault RNG streams
    /// are derived from `rng` (children `fault/{i}`), independent of the
    /// noise streams, so adding faults never perturbs the noise realisation.
    ///
    /// # Panics
    /// Panics if the schedule fails [`UnitFaultSchedule::validate`].
    pub fn set_faults(&mut self, faults: UnitFaultSchedule, rng: &RngStream) {
        faults
            .validate(self.domains.len())
            .expect("invalid fault schedule");
        self.fault_rngs = (0..self.domains.len())
            .map(|i| rng.child(&format!("fault/{i}")))
            .collect();
        self.faults = faults;
    }

    /// The installed fault schedule (empty when fault-free).
    pub fn fault_schedule(&self) -> &UnitFaultSchedule {
        &self.faults
    }

    /// Advances every domain one window with the given per-unit demands;
    /// returns the true power of each unit. Delayed cap writes whose latency
    /// has elapsed are applied before the window runs.
    ///
    /// # Panics
    /// Panics if `demands.len() != num_units()`.
    pub fn step_all(&mut self, demands: &[Watts], dt: Seconds) -> Vec<Watts> {
        let mut powers = vec![0.0; self.domains.len()];
        self.step_all_into(demands, dt, &mut powers);
        powers
    }

    /// [`DomainBank::step_all`] writing into a caller-provided slice — the
    /// simulation hot loop uses this to avoid a per-window allocation.
    ///
    /// # Panics
    /// Panics if `demands.len()` or `out.len()` differs from `num_units()`.
    pub fn step_all_into(&mut self, demands: &[Watts], dt: Seconds, out: &mut [Watts]) {
        assert_eq!(
            demands.len(),
            self.domains.len(),
            "one demand per domain required"
        );
        assert_eq!(
            out.len(),
            self.domains.len(),
            "one output slot per domain required"
        );
        let now = self.now;
        for (unit, pending) in self.pending_writes.iter_mut().enumerate() {
            // Due writes land in issue order, so when several have matured
            // the most recently issued one wins — like a slow MSR queue.
            for &(_, cap) in pending.iter().filter(|&&(due, _)| due <= now) {
                self.domains[unit].set_cap(cap);
            }
            pending.retain(|&(due, _)| due > now);
        }
        for ((d, &demand), slot) in self.domains.iter_mut().zip(demands).zip(out.iter_mut()) {
            *slot = d.step(demand, dt);
        }
        self.now += dt;
        self.last_dt = dt;
    }

    /// Direct access to a domain (satisfaction accounting needs ground truth).
    pub fn domain(&self, unit: usize) -> &PowerDomain {
        &self.domains[unit]
    }

    /// Mutable access to a domain.
    pub fn domain_mut(&mut self, unit: usize) -> &mut PowerDomain {
        &mut self.domains[unit]
    }

    /// All current caps, densely indexed.
    pub fn caps(&self) -> Vec<Watts> {
        self.domains.iter().map(|d| d.cap()).collect()
    }
}

impl PowerInterface for DomainBank {
    fn num_units(&self) -> usize {
        self.domains.len()
    }

    fn read_power(&mut self, unit: usize) -> Watts {
        let measured = self.domains[unit].measure();
        if self.faults.is_empty() {
            return measured;
        }
        self.faults.corrupt_reading(
            unit,
            self.now,
            measured,
            self.last_dt,
            self.domains[unit].energy_unit(),
            &mut self.fault_rngs[unit],
        )
    }

    fn set_cap(&mut self, unit: usize, cap: Watts) -> Watts {
        let Some(fault) = self.faults.actuator(unit, self.now) else {
            return self.domains[unit].set_cap(cap);
        };
        // Silent faults: return what a healthy driver would have returned
        // (the request clamped to spec limits), whatever actually happened.
        let spec = *self.domains[unit].spec();
        let honest = clamp_power(cap, spec.min_cap, spec.tdp);
        match fault {
            ActuatorFault::DropWrites => {}
            ActuatorFault::ClampWrites { floor, ceil } => {
                self.domains[unit].set_cap(honest.clamp(floor, ceil));
            }
            ActuatorFault::DelayWrites { delay } => {
                self.pending_writes[unit].push((self.now + delay, honest));
            }
        }
        honest
    }

    fn cap(&self, unit: usize) -> Watts {
        self.domains[unit].cap()
    }

    fn max_cap(&self, unit: usize) -> Watts {
        self.domains[unit].spec().tdp
    }

    fn min_cap(&self, unit: usize) -> Watts {
        self.domains[unit].spec().min_cap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bank(n: usize) -> DomainBank {
        DomainBank::homogeneous(
            n,
            DomainSpec::xeon_gold_6240(),
            NoiseModel::None,
            &RngStream::new(7, "bank-test"),
        )
    }

    #[test]
    fn bank_has_requested_units() {
        let b = bank(20);
        assert_eq!(b.num_units(), 20);
        assert_eq!(b.caps().len(), 20);
    }

    #[test]
    fn step_all_returns_true_powers() {
        let mut b = bank(3);
        b.set_cap(1, 100.0);
        let powers = b.step_all(&[50.0, 160.0, 0.0], 1.0);
        assert_eq!(powers, vec![50.0, 100.0, 15.0]);
    }

    #[test]
    fn read_power_after_step() {
        let mut b = bank(2);
        b.step_all(&[120.0, 80.0], 1.0);
        assert!((b.read_power(0) - 120.0).abs() < 0.01);
        assert!((b.read_power(1) - 80.0).abs() < 0.01);
    }

    #[test]
    fn trait_limits_match_spec() {
        let b = bank(1);
        assert_eq!(b.max_cap(0), 165.0);
        assert_eq!(b.min_cap(0), 40.0);
    }

    #[test]
    fn set_cap_via_trait_clamps() {
        let mut b = bank(1);
        assert_eq!(PowerInterface::set_cap(&mut b, 0, 1000.0), 165.0);
        assert_eq!(b.cap(0), 165.0);
    }

    #[test]
    fn per_domain_noise_streams_differ() {
        let mut b = DomainBank::homogeneous(
            2,
            DomainSpec::xeon_gold_6240(),
            NoiseModel::Gaussian { std_dev: 3.0 },
            &RngStream::new(1, "noisy-bank"),
        );
        b.step_all(&[110.0, 110.0], 1.0);
        let m0 = b.read_power(0);
        let m1 = b.read_power(1);
        assert_ne!(m0, m1, "independent noise streams expected");
    }

    #[test]
    #[should_panic(expected = "one demand per domain")]
    fn step_all_length_mismatch_panics() {
        bank(2).step_all(&[1.0], 1.0);
    }

    use crate::fault::{ActuatorFault, SensorFault, UnitFaultEvent, UnitFaultSchedule};

    fn faulty_bank(n: usize, events: Vec<UnitFaultEvent>) -> DomainBank {
        let mut b = bank(n);
        b.set_faults(
            UnitFaultSchedule::new(events),
            &RngStream::new(3, "bank-faults"),
        );
        b
    }

    #[test]
    fn sensor_fault_corrupts_reads_only_in_window() {
        let mut b = faulty_bank(
            2,
            vec![UnitFaultEvent::sensor(
                0,
                2.0,
                4.0,
                SensorFault::StuckAt { value: 33.0 },
            )],
        );
        for t in 0..6 {
            b.step_all(&[100.0, 100.0], 1.0);
            let m0 = b.read_power(0);
            let now = t as f64 + 1.0; // reads happen at the window's end time
            if (2.0..4.0).contains(&now) {
                assert_eq!(m0, 33.0, "stuck inside window (t={now})");
            } else {
                assert!((m0 - 100.0).abs() < 0.01, "clean outside window (t={now})");
            }
            assert!((b.read_power(1) - 100.0).abs() < 0.01, "other unit clean");
        }
    }

    #[test]
    fn dropped_cap_writes_lie_in_return_but_not_in_readback() {
        let mut b = faulty_bank(
            1,
            vec![UnitFaultEvent::actuator(
                0,
                0.0,
                100.0,
                ActuatorFault::DropWrites,
            )],
        );
        let before = b.cap(0);
        let returned = b.set_cap(0, 90.0);
        assert_eq!(returned, 90.0, "silent fault returns the honest value");
        assert_eq!(b.cap(0), before, "readback exposes the dropped write");
        // And the cap actually in force still clips power.
        let powers = b.step_all(&[160.0], 1.0);
        assert_eq!(powers[0], before.min(160.0));
    }

    #[test]
    fn delayed_cap_writes_land_after_latency() {
        let mut b = faulty_bank(
            1,
            vec![UnitFaultEvent::actuator(
                0,
                0.0,
                100.0,
                ActuatorFault::DelayWrites { delay: 2.0 },
            )],
        );
        b.set_cap(0, 80.0); // issued at t=0, lands at t=2
        b.step_all(&[160.0], 1.0); // window [0,1): old cap
        assert_eq!(b.cap(0), 165.0);
        b.step_all(&[160.0], 1.0); // window [1,2): old cap
        assert_eq!(b.cap(0), 165.0);
        let powers = b.step_all(&[160.0], 1.0); // window [2,3): new cap in force
        assert_eq!(b.cap(0), 80.0);
        assert_eq!(powers[0], 80.0);
    }

    #[test]
    fn clamped_cap_writes_apply_the_clamped_value() {
        let mut b = faulty_bank(
            1,
            vec![UnitFaultEvent::actuator(
                0,
                0.0,
                100.0,
                ActuatorFault::ClampWrites {
                    floor: 120.0,
                    ceil: 165.0,
                },
            )],
        );
        let returned = b.set_cap(0, 60.0);
        assert_eq!(returned, 60.0, "honest return");
        assert_eq!(b.cap(0), 120.0, "firmware refused to go below its floor");
    }

    #[test]
    fn faults_do_not_perturb_noise_realisation() {
        let noise = NoiseModel::Gaussian { std_dev: 2.0 };
        let seed = RngStream::new(11, "iso");
        let mut clean =
            DomainBank::homogeneous(1, DomainSpec::xeon_gold_6240(), noise.clone(), &seed);
        let mut faulty = DomainBank::homogeneous(1, DomainSpec::xeon_gold_6240(), noise, &seed);
        // A fault on this unit that never fires a draw-free transform.
        faulty.set_faults(
            UnitFaultSchedule::new(vec![UnitFaultEvent::sensor(
                0,
                1000.0,
                2000.0,
                SensorFault::Dropout,
            )]),
            &RngStream::new(12, "iso-faults"),
        );
        for _ in 0..50 {
            clean.step_all(&[120.0], 1.0);
            faulty.step_all(&[120.0], 1.0);
            assert_eq!(clean.read_power(0), faulty.read_power(0));
        }
    }
}
