//! Cluster topology: clusters of nodes of power-capping units (sockets).
//!
//! The paper's testbed is 10 client nodes forming **two clusters of five
//! dual-socket nodes** (plus a server node that runs the controller and is
//! not capped). Power capping is at socket granularity, so the manageable
//! unit set is 2 × 5 × 2 = 20 sockets. The flat unit index below is the
//! identifier the control plane ships around (3 bytes per unit per cycle,
//! §6.5).

use serde::{Deserialize, Serialize};

/// Hierarchical identity of one power-capping unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct UnitId {
    /// Which workload cluster the unit belongs to.
    pub cluster: usize,
    /// Node index within the cluster.
    pub node: usize,
    /// Socket index within the node.
    pub socket: usize,
}

impl std::fmt::Display for UnitId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "c{}n{}s{}", self.cluster, self.node, self.socket)
    }
}

/// A regular cluster topology.
///
/// ```
/// use dps_rapl::Topology;
/// let topo = Topology::paper_testbed();
/// assert_eq!(topo.total_units(), 20);
/// assert_eq!(topo.units_per_cluster(), 10);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Topology {
    /// Number of workload clusters run side by side.
    pub clusters: usize,
    /// Nodes per cluster.
    pub nodes_per_cluster: usize,
    /// Power-capping units (sockets) per node.
    pub sockets_per_node: usize,
}

impl Topology {
    /// Creates a topology; every dimension must be non-zero.
    pub fn new(clusters: usize, nodes_per_cluster: usize, sockets_per_node: usize) -> Self {
        assert!(
            clusters > 0 && nodes_per_cluster > 0 && sockets_per_node > 0,
            "all topology dimensions must be non-zero"
        );
        Self {
            clusters,
            nodes_per_cluster,
            sockets_per_node,
        }
    }

    /// The paper's evaluation platform: 2 clusters × 5 nodes × 2 sockets.
    pub fn paper_testbed() -> Self {
        Self::new(2, 5, 2)
    }

    /// Total power-capping units.
    pub fn total_units(&self) -> usize {
        self.clusters * self.nodes_per_cluster * self.sockets_per_node
    }

    /// Units in one cluster.
    pub fn units_per_cluster(&self) -> usize {
        self.nodes_per_cluster * self.sockets_per_node
    }

    /// Flattens a [`UnitId`] into a dense index in `[0, total_units)`.
    /// Cluster-major, then node, then socket — so one cluster's units are
    /// contiguous.
    pub fn flatten(&self, id: UnitId) -> usize {
        debug_assert!(self.contains(id), "unit {id} out of topology bounds");
        (id.cluster * self.nodes_per_cluster + id.node) * self.sockets_per_node + id.socket
    }

    /// Inverse of [`Topology::flatten`].
    pub fn unflatten(&self, index: usize) -> UnitId {
        debug_assert!(index < self.total_units());
        let socket = index % self.sockets_per_node;
        let node_global = index / self.sockets_per_node;
        let node = node_global % self.nodes_per_cluster;
        let cluster = node_global / self.nodes_per_cluster;
        UnitId {
            cluster,
            node,
            socket,
        }
    }

    /// Whether the id is inside this topology.
    pub fn contains(&self, id: UnitId) -> bool {
        id.cluster < self.clusters
            && id.node < self.nodes_per_cluster
            && id.socket < self.sockets_per_node
    }

    /// Iterates all unit ids in flat order.
    pub fn iter_units(&self) -> impl Iterator<Item = UnitId> + '_ {
        (0..self.total_units()).map(move |i| self.unflatten(i))
    }

    /// Flat index range `[lo, hi)` of one cluster's units.
    pub fn cluster_range(&self, cluster: usize) -> std::ops::Range<usize> {
        assert!(cluster < self.clusters, "cluster {cluster} out of range");
        let per = self.units_per_cluster();
        cluster * per..(cluster + 1) * per
    }

    /// Which cluster a flat unit index belongs to.
    pub fn cluster_of(&self, flat_index: usize) -> usize {
        debug_assert!(flat_index < self.total_units());
        flat_index / self.units_per_cluster()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_testbed_dimensions() {
        let t = Topology::paper_testbed();
        assert_eq!(t.clusters, 2);
        assert_eq!(t.total_units(), 20);
        assert_eq!(t.units_per_cluster(), 10);
    }

    #[test]
    fn flatten_unflatten_roundtrip() {
        let t = Topology::new(3, 4, 2);
        for i in 0..t.total_units() {
            let id = t.unflatten(i);
            assert_eq!(t.flatten(id), i);
            assert!(t.contains(id));
        }
    }

    #[test]
    fn cluster_units_contiguous() {
        let t = Topology::paper_testbed();
        let range = t.cluster_range(1);
        assert_eq!(range, 10..20);
        for i in range {
            assert_eq!(t.unflatten(i).cluster, 1);
            assert_eq!(t.cluster_of(i), 1);
        }
        for i in t.cluster_range(0) {
            assert_eq!(t.cluster_of(i), 0);
        }
    }

    #[test]
    fn iter_units_covers_all_exactly_once() {
        let t = Topology::new(2, 3, 2);
        let ids: Vec<UnitId> = t.iter_units().collect();
        assert_eq!(ids.len(), 12);
        let mut dedup = ids.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), 12);
    }

    #[test]
    fn contains_rejects_out_of_range() {
        let t = Topology::new(1, 2, 2);
        assert!(!t.contains(UnitId {
            cluster: 1,
            node: 0,
            socket: 0
        }));
        assert!(!t.contains(UnitId {
            cluster: 0,
            node: 2,
            socket: 0
        }));
        assert!(!t.contains(UnitId {
            cluster: 0,
            node: 0,
            socket: 2
        }));
    }

    #[test]
    fn display_format() {
        let id = UnitId {
            cluster: 1,
            node: 3,
            socket: 0,
        };
        assert_eq!(id.to_string(), "c1n3s0");
    }

    #[test]
    #[should_panic(expected = "must be non-zero")]
    fn zero_dimension_rejected() {
        Topology::new(0, 5, 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn cluster_range_bounds_checked() {
        Topology::new(2, 2, 2).cluster_range(2);
    }
}
