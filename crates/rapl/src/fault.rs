//! Sensor and actuator fault injection for the simulated RAPL substrate.
//!
//! The paper's evaluation assumes RAPL itself is honest: readings carry only
//! zero-mean noise and every cap write lands. Real fleets see worse — stuck
//! telemetry, dropped samples, drifting calibration, firmware that silently
//! ignores limit writes. This module scripts those failures per unit as
//! half-open [`TimeWindow`]s (the same vocabulary as `dps-ctrl`'s wire-fault
//! schedule, so one experiment can compose wire, sensor and actuator faults
//! on a single timeline):
//!
//! * [`SensorFault`] corrupts what [`read_power`] returns — *after* the
//!   configured [`NoiseModel`](crate::noise::NoiseModel) is applied, so
//!   faults compose with ordinary measurement noise.
//! * [`ActuatorFault`] corrupts what [`set_cap`] does — silently, in that
//!   the *return value* is exactly what a healthy write would have returned;
//!   only a readback of the programmed cap can expose the lie.
//!
//! Everything is seeded: the spike/corruption draws come from per-unit
//! [`RngStream`] children, so a schedule replays bit-identically.
//!
//! [`read_power`]: crate::interface::PowerInterface::read_power
//! [`set_cap`]: crate::interface::PowerInterface::set_cap

use dps_sim_core::rng::RngStream;
use dps_sim_core::units::{Seconds, Watts};
use dps_sim_core::window::TimeWindow;

/// A sensor-side fault: corrupts power readings while its window is active.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SensorFault {
    /// The reading is pinned at a constant value (frozen telemetry).
    StuckAt {
        /// The value every read reports.
        value: Watts,
    },
    /// The sample is absent: reads return NaN.
    Dropout,
    /// Slow calibration drift: the reading gains `rate · (t − window start)`
    /// Watts of offset, growing over the window.
    Drift {
        /// Drift rate in Watts per second (may be negative).
        rate: f64,
    },
    /// Intermittent spikes: with probability `prob` per read, `magnitude`
    /// Watts (signed) is added to the reading.
    SpikeBurst {
        /// Spike amplitude added to the reading when triggered.
        magnitude: Watts,
        /// Per-read trigger probability in `[0, 1]`.
        prob: f64,
    },
    /// Energy-counter corruption: with probability `prob` per read, the
    /// reading is replaced by what a random 32-bit counter delta would
    /// decode to over the window — typically an absurdly large power, the
    /// signature of a corrupted or backwards-jumping `MSR_PKG_ENERGY_STATUS`.
    CounterCorrupt {
        /// Per-read corruption probability in `[0, 1]`.
        prob: f64,
    },
}

/// An actuator-side fault: corrupts cap writes while its window is active.
///
/// All variants are *silent*: the write returns the value a healthy RAPL
/// driver would have returned, and only reading the programmed cap back
/// reveals what actually happened.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ActuatorFault {
    /// Cap writes are dropped: the previously programmed cap stays in force.
    DropWrites,
    /// Cap writes are clamped into `[floor, ceil]` before being applied
    /// (firmware refusing to leave a range).
    ClampWrites {
        /// Lowest cap the faulty firmware will program.
        floor: Watts,
        /// Highest cap the faulty firmware will program.
        ceil: Watts,
    },
    /// Cap writes land, but only `delay` seconds after they were issued.
    DelayWrites {
        /// Latency between the write and the cap taking effect.
        delay: Seconds,
    },
}

/// Either side of the fault taxonomy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum UnitFault {
    /// Telemetry-path fault.
    Sensor(SensorFault),
    /// Cap-write-path fault.
    Actuator(ActuatorFault),
}

/// One scripted fault: a unit, an activity window, and what goes wrong.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UnitFaultEvent {
    /// Flat unit index the fault targets.
    pub unit: usize,
    /// Half-open `[at, until)` activity window, sampled at cycle boundaries.
    pub window: TimeWindow,
    /// The fault in force during the window.
    pub fault: UnitFault,
}

impl UnitFaultEvent {
    /// Builds a sensor-fault event.
    pub fn sensor(unit: usize, at: Seconds, until: Seconds, fault: SensorFault) -> Self {
        Self {
            unit,
            window: TimeWindow::new(at, until),
            fault: UnitFault::Sensor(fault),
        }
    }

    /// Builds an actuator-fault event.
    pub fn actuator(unit: usize, at: Seconds, until: Seconds, fault: ActuatorFault) -> Self {
        Self {
            unit,
            window: TimeWindow::new(at, until),
            fault: UnitFault::Actuator(fault),
        }
    }

    fn validate_params(&self) -> Result<(), String> {
        match self.fault {
            UnitFault::Sensor(SensorFault::StuckAt { value }) => {
                if !value.is_finite() {
                    return Err(format!("StuckAt value must be finite: {value}"));
                }
            }
            UnitFault::Sensor(SensorFault::Drift { rate }) => {
                if !rate.is_finite() {
                    return Err(format!("Drift rate must be finite: {rate}"));
                }
            }
            UnitFault::Sensor(SensorFault::SpikeBurst { magnitude, prob }) => {
                if !magnitude.is_finite() {
                    return Err(format!("SpikeBurst magnitude must be finite: {magnitude}"));
                }
                if !(0.0..=1.0).contains(&prob) {
                    return Err(format!("SpikeBurst prob must be in [0,1]: {prob}"));
                }
            }
            UnitFault::Sensor(SensorFault::CounterCorrupt { prob }) => {
                if !(0.0..=1.0).contains(&prob) {
                    return Err(format!("CounterCorrupt prob must be in [0,1]: {prob}"));
                }
            }
            UnitFault::Sensor(SensorFault::Dropout) => {}
            UnitFault::Actuator(ActuatorFault::ClampWrites { floor, ceil }) => {
                if !floor.is_finite() || !ceil.is_finite() || floor > ceil {
                    return Err(format!(
                        "ClampWrites needs finite floor <= ceil: [{floor}, {ceil}]"
                    ));
                }
            }
            UnitFault::Actuator(ActuatorFault::DelayWrites { delay }) => {
                if !(delay.is_finite() && delay > 0.0) {
                    return Err(format!("DelayWrites delay must be positive: {delay}"));
                }
            }
            UnitFault::Actuator(ActuatorFault::DropWrites) => {}
        }
        Ok(())
    }
}

/// A scripted set of per-unit sensor/actuator faults.
///
/// When several sensor faults are simultaneously active on one unit they are
/// applied in schedule order (each transforming the previous reading). When
/// several actuator faults overlap, the first active event in schedule order
/// wins.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct UnitFaultSchedule {
    events: Vec<UnitFaultEvent>,
}

impl UnitFaultSchedule {
    /// The empty schedule — fault-free hardware.
    pub fn none() -> Self {
        Self::default()
    }

    /// Builds a schedule from scripted events.
    pub fn new(events: Vec<UnitFaultEvent>) -> Self {
        Self { events }
    }

    /// Appends one event.
    pub fn push(&mut self, event: UnitFaultEvent) {
        self.events.push(event);
    }

    /// All scripted events.
    pub fn events(&self) -> &[UnitFaultEvent] {
        &self.events
    }

    /// Whether the schedule has no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Checks every event targets a real unit, has a well-formed window, and
    /// carries sane parameters.
    pub fn validate(&self, n_units: usize) -> Result<(), String> {
        for event in &self.events {
            if event.unit >= n_units {
                return Err(format!(
                    "fault targets unit {} but only {n_units} exist",
                    event.unit
                ));
            }
            event.window.validate()?;
            event.validate_params()?;
        }
        Ok(())
    }

    /// Applies every sensor fault active on `unit` at time `t` to `reading`,
    /// in schedule order. `dt` is the measurement window length and
    /// `counter_unit` the energy-counter resolution in Joules (used to decode
    /// a corrupted counter delta into a power). Probabilistic faults draw
    /// from `rng`.
    pub fn corrupt_reading(
        &self,
        unit: usize,
        t: Seconds,
        reading: Watts,
        dt: Seconds,
        counter_unit: f64,
        rng: &mut RngStream,
    ) -> Watts {
        let mut value = reading;
        for event in &self.events {
            if event.unit != unit || !event.window.contains(t) {
                continue;
            }
            let UnitFault::Sensor(fault) = event.fault else {
                continue;
            };
            value = match fault {
                SensorFault::StuckAt { value: pinned } => pinned,
                SensorFault::Dropout => f64::NAN,
                SensorFault::Drift { rate } => value + rate * (t - event.window.at),
                SensorFault::SpikeBurst { magnitude, prob } => {
                    if rng.chance(prob) {
                        value + magnitude
                    } else {
                        value
                    }
                }
                SensorFault::CounterCorrupt { prob } => {
                    if rng.chance(prob) {
                        // A corrupted or backwards-jumping 32-bit counter
                        // wraps into an arbitrary delta; decode it the way
                        // the reader would.
                        let delta = rng.next_u64() & 0xFFFF_FFFF;
                        delta as f64 * counter_unit / dt.max(1e-9)
                    } else {
                        value
                    }
                }
            };
        }
        value
    }

    /// The actuator fault in force on `unit` at time `t`, if any (first
    /// active event in schedule order wins).
    pub fn actuator(&self, unit: usize, t: Seconds) -> Option<ActuatorFault> {
        self.events.iter().find_map(|event| match event.fault {
            UnitFault::Actuator(fault) if event.unit == unit && event.window.contains(t) => {
                Some(fault)
            }
            _ => None,
        })
    }

    /// Whether any *sensor* fault is active on `unit` at `t` (used by tests
    /// and experiments to bracket fault windows).
    pub fn sensor_active(&self, unit: usize, t: Seconds) -> bool {
        self.events.iter().any(|event| {
            event.unit == unit
                && event.window.contains(t)
                && matches!(event.fault, UnitFault::Sensor(_))
        })
    }

    /// Both fault paths' activity on `unit` at `t` in one pass:
    /// `(sensor_active, actuator_active)`. The observability layer samples
    /// this every cycle to turn the schedule's windows into `FaultEdge`
    /// trace events.
    pub fn active_kinds(&self, unit: usize, t: Seconds) -> (bool, bool) {
        let mut sensor = false;
        let mut actuator = false;
        for event in &self.events {
            if event.unit != unit || !event.window.contains(t) {
                continue;
            }
            match event.fault {
                UnitFault::Sensor(_) => sensor = true,
                UnitFault::Actuator(_) => actuator = true,
            }
            if sensor && actuator {
                break;
            }
        }
        (sensor, actuator)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> RngStream {
        RngStream::new(7, "fault-test")
    }

    #[test]
    fn empty_schedule_passes_readings_through() {
        let schedule = UnitFaultSchedule::none();
        let mut r = rng();
        assert_eq!(
            schedule.corrupt_reading(0, 5.0, 101.5, 1.0, 61e-6, &mut r),
            101.5
        );
        assert_eq!(schedule.actuator(0, 5.0), None);
        assert!(schedule.is_empty());
    }

    #[test]
    fn stuck_at_pins_reading_inside_window_only() {
        let schedule = UnitFaultSchedule::new(vec![UnitFaultEvent::sensor(
            1,
            10.0,
            20.0,
            SensorFault::StuckAt { value: 55.0 },
        )]);
        let mut r = rng();
        assert_eq!(
            schedule.corrupt_reading(1, 9.9, 120.0, 1.0, 61e-6, &mut r),
            120.0
        );
        assert_eq!(
            schedule.corrupt_reading(1, 10.0, 120.0, 1.0, 61e-6, &mut r),
            55.0
        );
        assert_eq!(
            schedule.corrupt_reading(1, 19.9, 80.0, 1.0, 61e-6, &mut r),
            55.0
        );
        assert_eq!(
            schedule.corrupt_reading(1, 20.0, 80.0, 1.0, 61e-6, &mut r),
            80.0
        );
        // Other units untouched.
        assert_eq!(
            schedule.corrupt_reading(0, 15.0, 120.0, 1.0, 61e-6, &mut r),
            120.0
        );
    }

    #[test]
    fn dropout_yields_nan() {
        let schedule = UnitFaultSchedule::new(vec![UnitFaultEvent::sensor(
            0,
            0.0,
            5.0,
            SensorFault::Dropout,
        )]);
        let mut r = rng();
        assert!(schedule
            .corrupt_reading(0, 1.0, 99.0, 1.0, 61e-6, &mut r)
            .is_nan());
    }

    #[test]
    fn drift_grows_linearly_from_window_start() {
        let schedule = UnitFaultSchedule::new(vec![UnitFaultEvent::sensor(
            0,
            100.0,
            200.0,
            SensorFault::Drift { rate: 0.5 },
        )]);
        let mut r = rng();
        let at_start = schedule.corrupt_reading(0, 100.0, 90.0, 1.0, 61e-6, &mut r);
        let later = schedule.corrupt_reading(0, 140.0, 90.0, 1.0, 61e-6, &mut r);
        assert!((at_start - 90.0).abs() < 1e-12);
        assert!((later - 110.0).abs() < 1e-12, "drift after 40 s: {later}");
    }

    #[test]
    fn spike_burst_respects_probability_and_seed() {
        let schedule = UnitFaultSchedule::new(vec![UnitFaultEvent::sensor(
            0,
            0.0,
            1e9,
            SensorFault::SpikeBurst {
                magnitude: 300.0,
                prob: 0.25,
            },
        )]);
        let run = |seed| {
            let mut r = RngStream::new(seed, "spikes");
            (0..4000)
                .map(|i| schedule.corrupt_reading(0, i as f64, 100.0, 1.0, 61e-6, &mut r))
                .collect::<Vec<_>>()
        };
        let a = run(1);
        let spikes = a.iter().filter(|&&v| v > 200.0).count();
        assert!(
            (600..=1400).contains(&spikes),
            "~25% of 4000 reads should spike, got {spikes}"
        );
        assert_eq!(a, run(1), "same seed replays the same spikes");
    }

    #[test]
    fn counter_corruption_produces_wild_but_decodable_readings() {
        let schedule = UnitFaultSchedule::new(vec![UnitFaultEvent::sensor(
            0,
            0.0,
            1e9,
            SensorFault::CounterCorrupt { prob: 1.0 },
        )]);
        let unit = 61e-6;
        let mut r = rng();
        for i in 0..100 {
            let v = schedule.corrupt_reading(0, i as f64, 100.0, 1.0, unit, &mut r);
            assert!(v.is_finite() && v >= 0.0);
            assert!(v <= (u32::MAX as f64) * unit + 1e-9, "bounded by wrap span");
        }
    }

    #[test]
    fn overlapping_sensor_faults_compose_in_schedule_order() {
        let schedule = UnitFaultSchedule::new(vec![
            UnitFaultEvent::sensor(0, 0.0, 10.0, SensorFault::StuckAt { value: 70.0 }),
            UnitFaultEvent::sensor(0, 0.0, 10.0, SensorFault::Drift { rate: 1.0 }),
        ]);
        let mut r = rng();
        // Stuck pins to 70, then drift adds t-at on top.
        assert_eq!(
            schedule.corrupt_reading(0, 4.0, 123.0, 1.0, 61e-6, &mut r),
            74.0
        );
    }

    #[test]
    fn first_active_actuator_fault_wins() {
        let schedule = UnitFaultSchedule::new(vec![
            UnitFaultEvent::actuator(2, 5.0, 15.0, ActuatorFault::DropWrites),
            UnitFaultEvent::actuator(2, 0.0, 20.0, ActuatorFault::DelayWrites { delay: 2.0 }),
        ]);
        assert_eq!(
            schedule.actuator(2, 3.0),
            Some(ActuatorFault::DelayWrites { delay: 2.0 })
        );
        assert_eq!(schedule.actuator(2, 7.0), Some(ActuatorFault::DropWrites));
        assert_eq!(
            schedule.actuator(2, 19.0),
            Some(ActuatorFault::DelayWrites { delay: 2.0 })
        );
        assert_eq!(schedule.actuator(2, 25.0), None);
        assert_eq!(schedule.actuator(0, 7.0), None);
    }

    #[test]
    fn validate_catches_bad_events() {
        let mut ok = UnitFaultSchedule::none();
        ok.push(UnitFaultEvent::sensor(0, 1.0, 2.0, SensorFault::Dropout));
        assert!(ok.validate(4).is_ok());

        let unit_oob = UnitFaultSchedule::new(vec![UnitFaultEvent::sensor(
            9,
            1.0,
            2.0,
            SensorFault::Dropout,
        )]);
        assert!(unit_oob.validate(4).is_err());

        let bad_window = UnitFaultSchedule::new(vec![UnitFaultEvent::sensor(
            0,
            5.0,
            5.0,
            SensorFault::Dropout,
        )]);
        assert!(bad_window.validate(4).is_err());

        let bad_prob = UnitFaultSchedule::new(vec![UnitFaultEvent::sensor(
            0,
            1.0,
            2.0,
            SensorFault::SpikeBurst {
                magnitude: 10.0,
                prob: 1.5,
            },
        )]);
        assert!(bad_prob.validate(4).is_err());

        let bad_clamp = UnitFaultSchedule::new(vec![UnitFaultEvent::actuator(
            0,
            1.0,
            2.0,
            ActuatorFault::ClampWrites {
                floor: 100.0,
                ceil: 50.0,
            },
        )]);
        assert!(bad_clamp.validate(4).is_err());

        let bad_delay = UnitFaultSchedule::new(vec![UnitFaultEvent::actuator(
            0,
            1.0,
            2.0,
            ActuatorFault::DelayWrites { delay: 0.0 },
        )]);
        assert!(bad_delay.validate(4).is_err());
    }

    #[test]
    fn sensor_active_brackets_windows() {
        let schedule = UnitFaultSchedule::new(vec![
            UnitFaultEvent::sensor(0, 3.0, 6.0, SensorFault::Dropout),
            UnitFaultEvent::actuator(1, 0.0, 9.0, ActuatorFault::DropWrites),
        ]);
        assert!(schedule.sensor_active(0, 4.0));
        assert!(!schedule.sensor_active(0, 6.0));
        assert!(
            !schedule.sensor_active(1, 4.0),
            "actuator faults don't count"
        );
    }

    #[test]
    fn active_kinds_reports_both_paths() {
        let schedule = UnitFaultSchedule::new(vec![
            UnitFaultEvent::sensor(0, 3.0, 6.0, SensorFault::Dropout),
            UnitFaultEvent::actuator(0, 5.0, 9.0, ActuatorFault::DropWrites),
            UnitFaultEvent::actuator(1, 0.0, 9.0, ActuatorFault::DropWrites),
        ]);
        assert_eq!(schedule.active_kinds(0, 4.0), (true, false));
        assert_eq!(schedule.active_kinds(0, 5.5), (true, true));
        assert_eq!(schedule.active_kinds(0, 6.0), (false, true));
        assert_eq!(schedule.active_kinds(0, 9.0), (false, false));
        assert_eq!(schedule.active_kinds(1, 4.0), (false, true));
        assert_eq!(schedule.active_kinds(2, 4.0), (false, false));
        // Half-open edges agree with sensor_active.
        assert_eq!(
            schedule.active_kinds(0, 3.0).0,
            schedule.sensor_active(0, 3.0)
        );
    }
}
