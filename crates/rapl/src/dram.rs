//! DRAM power domains and package↔DRAM coupling.
//!
//! The paper's related work (§2.1) cites Sarood et al. (CLUSTER '13):
//! "Optimizing power allocation to CPU and memory subsystems in
//! overprovisioned HPC systems" — RAPL also exposes a per-socket DRAM
//! domain, and a cluster budget that must cover both subsystems poses a
//! split question: reserving DRAM's TDP wastes Watts the memory never
//! draws, while under-reserving throttles memory bandwidth.
//!
//! This module supplies the substrate: a DRAM [`DomainSpec`] preset, an
//! activity-coupled demand model (DRAM draw rises with package activity),
//! and the throughput penalty of capping DRAM below its demand. The
//! `dram` experiment binary uses it to reproduce Sarood's qualitative
//! result inside this reproduction's pipeline.

use crate::domain::DomainSpec;
use dps_sim_core::units::Watts;
use serde::{Deserialize, Serialize};

/// A per-socket DDR4 DRAM domain: ~36 W TDP, a few Watts of refresh floor.
pub fn ddr4_spec() -> DomainSpec {
    DomainSpec {
        tdp: 36.0,
        min_cap: 8.0,
        idle_power: 3.0,
    }
}

/// Linear activity coupling between package and DRAM demand.
///
/// Memory traffic scales with core activity to first order:
/// `dram_demand = base + coeff × (pkg_demand − pkg_idle)`, clamped to the
/// DRAM TDP. The defaults put a fully-loaded 165 W package at ~30 W of
/// DRAM — in line with measured DDR4 server draws.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DramModel {
    /// Draw at package idle (refresh + standby).
    pub base: Watts,
    /// Additional DRAM Watts per package Watt above idle.
    pub coeff: f64,
    /// Package idle power the coupling is anchored at.
    pub pkg_idle: Watts,
    /// The DRAM domain being modelled.
    pub spec_tdp: Watts,
}

impl Default for DramModel {
    fn default() -> Self {
        Self {
            base: 4.0,
            coeff: 0.18,
            pkg_idle: 15.0,
            spec_tdp: ddr4_spec().tdp,
        }
    }
}

impl DramModel {
    /// DRAM demand for a given package demand.
    pub fn demand(&self, pkg_demand: Watts) -> Watts {
        let active = (pkg_demand - self.pkg_idle).max(0.0);
        (self.base + self.coeff * active).min(self.spec_tdp)
    }

    /// Progress-rate multiplier when DRAM is capped at `dram_cap` while
    /// demanding `dram_demand`: memory-bandwidth throttling slows the
    /// socket roughly in proportion to the unmet DRAM fraction above the
    /// base draw (refresh power does no work).
    pub fn throttle_factor(&self, dram_demand: Watts, dram_cap: Watts) -> f64 {
        let useful_demand = (dram_demand - self.base).max(0.0);
        if useful_demand <= 0.0 {
            return 1.0;
        }
        let granted = (dram_cap.min(dram_demand) - self.base).max(0.0);
        (granted / useful_demand).clamp(0.05, 1.0)
    }

    /// A static DRAM reservation with `margin` headroom over the demand the
    /// model predicts at `typical_pkg` Watts — Sarood's informed split,
    /// versus reserving the DRAM TDP outright.
    pub fn informed_reservation(&self, typical_pkg: Watts, margin: f64) -> Watts {
        assert!(margin >= 0.0, "margin must be non-negative");
        (self.demand(typical_pkg) * (1.0 + margin)).min(self.spec_tdp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ddr4_spec_is_valid() {
        assert!(ddr4_spec().validate().is_ok());
        assert!(
            ddr4_spec().tdp < 165.0,
            "DRAM draws far less than a package"
        );
    }

    #[test]
    fn demand_scales_with_package_activity() {
        let m = DramModel::default();
        let idle = m.demand(15.0);
        let half = m.demand(90.0);
        let full = m.demand(165.0);
        assert_eq!(idle, 4.0);
        assert!(idle < half && half < full, "{idle} {half} {full}");
        assert!((full - 31.0).abs() < 0.1, "full-load DRAM ≈ 31 W: {full}");
    }

    #[test]
    fn demand_clamped_at_tdp() {
        let m = DramModel {
            coeff: 10.0,
            ..Default::default()
        };
        assert_eq!(m.demand(165.0), 36.0);
    }

    #[test]
    fn uncapped_dram_no_throttle() {
        let m = DramModel::default();
        let d = m.demand(160.0);
        assert_eq!(m.throttle_factor(d, 36.0), 1.0);
        assert_eq!(m.throttle_factor(d, d), 1.0);
    }

    #[test]
    fn halving_useful_dram_roughly_halves_progress() {
        let m = DramModel::default();
        let demand = m.demand(160.0); // ~30 W, ~26 useful
        let cap = m.base + (demand - m.base) / 2.0;
        let f = m.throttle_factor(demand, cap);
        assert!((f - 0.5).abs() < 1e-9, "{f}");
    }

    #[test]
    fn throttle_floor_prevents_deadlock() {
        let m = DramModel::default();
        assert!(m.throttle_factor(30.0, 0.0) >= 0.05);
    }

    #[test]
    fn idle_dram_never_throttled() {
        let m = DramModel::default();
        assert_eq!(m.throttle_factor(4.0, 4.0), 1.0);
        assert_eq!(m.throttle_factor(0.0, 0.0), 1.0);
    }

    #[test]
    fn informed_reservation_between_typical_and_tdp() {
        let m = DramModel::default();
        let r = m.informed_reservation(110.0, 0.15);
        assert!(r > m.demand(110.0));
        assert!(
            r < m.spec_tdp,
            "reservation {r} should undercut the 36 W TDP"
        );
    }

    #[test]
    fn reservation_clamped_at_tdp() {
        let m = DramModel::default();
        assert_eq!(m.informed_reservation(165.0, 5.0), 36.0);
    }
}
