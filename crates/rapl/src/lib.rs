//! Simulated RAPL (Running Average Power Limit) substrate.
//!
//! The DPS paper interacts with hardware only two ways: **reading power** and
//! **setting power caps**, both through Intel RAPL at socket granularity
//! (paper §4.2: "DPS only needs to interact with the hardware in these two
//! ways and it can be implemented with any interface with these
//! functionalities"). This crate provides that interface backed by a
//! simulation instead of MSRs:
//!
//! * [`counter`] — a wrap-around energy counter mimicking the
//!   `MSR_PKG_ENERGY_STATUS` register (32-bit, ~15.3 µJ units), plus a reader
//!   that handles wraps, so the power-from-energy path is exercised the same
//!   way a real deployment would exercise it.
//! * [`noise`] — measurement-noise models. The paper "assume\[s\]
//!   pessimistically that RAPL bares certain measurement noise" and feeds a
//!   Kalman filter; the default model is additive Gaussian noise.
//! * [`domain`] — [`PowerDomain`]: one power-capping unit (a socket). Caps
//!   are enforced on the control window like RAPL's running-average limit;
//!   actual power is `min(demand, cap)` with an optional first-order slew.
//! * [`topology`] — clusters / nodes / sockets and flat unit indexing
//!   matching the paper's 2-cluster × 5-node × 2-socket testbed.
//! * [`dram`] — the per-socket DRAM domain and its activity coupling to the
//!   package (the Sarood et al. CPU/memory split from the related work).
//! * [`interface`] — the [`PowerInterface`] trait power managers are written
//!   against (read power, set cap), implemented by the simulation.
//! * [`fault`] — scripted sensor faults (stuck / dropout / drift / spikes /
//!   counter corruption) and silent actuator faults (dropped, clamped or
//!   delayed cap writes), composable with the noise model and applied by
//!   [`DomainBank`] behind the same [`PowerInterface`].

#![warn(missing_docs)]

pub mod counter;
pub mod domain;
pub mod dram;
pub mod fault;
pub mod interface;
pub mod noise;
pub mod topology;

pub use counter::{EnergyCounter, EnergyReader};
pub use domain::{DomainSpec, PowerDomain};
pub use fault::{ActuatorFault, SensorFault, UnitFault, UnitFaultEvent, UnitFaultSchedule};
pub use interface::{DomainBank, PowerInterface};
pub use noise::NoiseModel;
pub use topology::{Topology, UnitId};
