//! Wrap-around energy counter, modelled on `MSR_PKG_ENERGY_STATUS`.
//!
//! Real RAPL exposes energy as a 32-bit counter in units of
//! `1/2^ESU` Joules (ESU = 14 on most Xeons → ~61 µJ; Haswell-EP and later
//! server parts use 15.3 µJ). Software derives power by differencing two
//! reads over a known interval and must handle counter wrap-around — at
//! 165 W a 32-bit counter in 61 µJ units wraps roughly every 26 minutes, so
//! wraps happen many times per job. We emulate the register faithfully so
//! the power-reading path in the cluster simulator exercises the same
//! arithmetic a real deployment does.

use dps_sim_core::units::{Joules, Seconds, Watts};
use serde::{Deserialize, Serialize};

/// Default energy-status unit: 1/2^14 J ≈ 61 µJ (ESU = 14).
pub const DEFAULT_ENERGY_UNIT: Joules = 1.0 / ((1u64 << 14) as f64);

/// Counter width: RAPL energy-status counters are 32-bit.
const COUNTER_MODULUS: u64 = 1 << 32;

/// The emulated hardware-side counter.
///
/// ```
/// use dps_rapl::EnergyCounter;
/// let mut c = EnergyCounter::new();
/// c.accumulate(110.0, 1.0); // 110 J
/// let raw = c.raw();
/// assert!(raw > 0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnergyCounter {
    /// Raw counter value in energy-status units, modulo 2^32.
    raw: u64,
    /// Sub-unit remainder so that long runs don't lose energy to
    /// truncation (the hardware accumulates internally at finer granularity).
    fractional: f64,
    /// Joules per counter unit.
    unit: Joules,
}

impl Default for EnergyCounter {
    fn default() -> Self {
        Self::new()
    }
}

impl EnergyCounter {
    /// Creates a counter with the default ESU (61 µJ units).
    pub fn new() -> Self {
        Self::with_unit(DEFAULT_ENERGY_UNIT)
    }

    /// Creates a counter with a custom energy unit in Joules.
    ///
    /// # Panics
    /// Panics unless `unit` is positive and finite.
    pub fn with_unit(unit: Joules) -> Self {
        assert!(
            unit.is_finite() && unit > 0.0,
            "energy unit must be positive"
        );
        Self {
            raw: 0,
            fractional: 0.0,
            unit,
        }
    }

    /// Joules per counter tick.
    #[inline]
    pub fn unit(&self) -> Joules {
        self.unit
    }

    /// Advances the counter by `power × dt` Joules, wrapping at 2^32 units.
    pub fn accumulate(&mut self, power: Watts, dt: Seconds) {
        debug_assert!(power >= 0.0 && dt >= 0.0);
        let units = power * dt / self.unit + self.fractional;
        let whole = units.floor();
        self.fractional = units - whole;
        self.raw = (self.raw + whole as u64) % COUNTER_MODULUS;
    }

    /// Raw 32-bit register value.
    #[inline]
    pub fn raw(&self) -> u64 {
        self.raw
    }
}

/// Software-side reader that converts successive raw reads into average
/// power, handling wrap-around — the arithmetic every RAPL consumer
/// implements.
///
/// ```
/// use dps_rapl::{EnergyCounter, EnergyReader};
/// let mut hw = EnergyCounter::new();
/// let mut reader = EnergyReader::new(hw.unit());
/// reader.sample(hw.raw(), 0.0);
/// hw.accumulate(110.0, 1.0);
/// let p = reader.sample(hw.raw(), 1.0).unwrap();
/// assert!((p - 110.0).abs() < 0.01);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnergyReader {
    unit: Joules,
    last: Option<(u64, Seconds)>,
}

impl EnergyReader {
    /// Creates a reader for counters with the given energy unit.
    pub fn new(unit: Joules) -> Self {
        assert!(
            unit.is_finite() && unit > 0.0,
            "energy unit must be positive"
        );
        Self { unit, last: None }
    }

    /// Feeds a raw counter read at time `now`; returns the average power
    /// since the previous read, or `None` on the first read or if time has
    /// not advanced.
    pub fn sample(&mut self, raw: u64, now: Seconds) -> Option<Watts> {
        let result = match self.last {
            Some((prev_raw, prev_t)) if now > prev_t => {
                // Wrap-aware difference: counters are modulo 2^32.
                let delta_units = raw.wrapping_sub(prev_raw) % COUNTER_MODULUS;
                // `wrapping_sub` on u64 with values < 2^32: if raw < prev_raw
                // the subtraction borrows into high bits; mask them off.
                let delta_units = delta_units & (COUNTER_MODULUS - 1);
                let joules = delta_units as f64 * self.unit;
                Some(joules / (now - prev_t))
            }
            _ => None,
        };
        self.last = Some((raw, now));
        result
    }

    /// Forgets the previous sample (e.g. after reassigning the reader to a
    /// different domain).
    pub fn reset(&mut self) {
        self.last = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates_energy() {
        let mut c = EnergyCounter::new();
        c.accumulate(100.0, 2.0); // 200 J
        let joules = c.raw() as f64 * c.unit();
        assert!((joules - 200.0).abs() < 0.001, "joules {joules}");
    }

    #[test]
    fn counter_fractional_carry_no_loss() {
        // Accumulate in tiny slices; total must match one big slice closely.
        let mut a = EnergyCounter::new();
        let mut b = EnergyCounter::new();
        for _ in 0..10_000 {
            a.accumulate(33.3, 0.001);
        }
        b.accumulate(33.3, 10.0);
        let ja = a.raw() as f64 * a.unit();
        let jb = b.raw() as f64 * b.unit();
        assert!((ja - jb).abs() < 0.01, "{ja} vs {jb}");
    }

    #[test]
    fn counter_wraps_at_32_bits() {
        // 2^32 units of 61 µJ ≈ 262 kJ; accumulate past it.
        let mut c = EnergyCounter::new();
        let wrap_joules = COUNTER_MODULUS as f64 * c.unit();
        c.accumulate(wrap_joules + 500.0, 1.0);
        let joules = c.raw() as f64 * c.unit();
        assert!((joules - 500.0).abs() < 0.001, "post-wrap {joules}");
    }

    #[test]
    fn reader_first_sample_none() {
        let mut r = EnergyReader::new(DEFAULT_ENERGY_UNIT);
        assert_eq!(r.sample(1234, 0.0), None);
    }

    #[test]
    fn reader_computes_average_power() {
        let mut hw = EnergyCounter::new();
        let mut r = EnergyReader::new(hw.unit());
        r.sample(hw.raw(), 0.0);
        hw.accumulate(165.0, 0.5);
        hw.accumulate(55.0, 0.5);
        let p = r.sample(hw.raw(), 1.0).unwrap();
        assert!((p - 110.0).abs() < 0.01, "power {p}");
    }

    #[test]
    fn reader_handles_wrap() {
        let unit = DEFAULT_ENERGY_UNIT;
        let mut r = EnergyReader::new(unit);
        // Start 100 units below the wrap point, end 100 above it.
        let start = COUNTER_MODULUS - 100;
        let end = 100u64;
        r.sample(start, 0.0);
        let p = r.sample(end, 1.0).unwrap();
        let expected = 200.0 * unit;
        assert!((p - expected).abs() < 1e-9, "power {p} expected {expected}");
    }

    #[test]
    fn reader_zero_dt_none() {
        let mut r = EnergyReader::new(DEFAULT_ENERGY_UNIT);
        r.sample(0, 1.0);
        assert_eq!(r.sample(100, 1.0), None);
        // And it does not poison subsequent reads.
        let p = r.sample(200, 2.0).unwrap();
        assert!(p > 0.0);
    }

    #[test]
    fn reader_reset_forgets() {
        let mut r = EnergyReader::new(DEFAULT_ENERGY_UNIT);
        r.sample(0, 0.0);
        r.reset();
        assert_eq!(r.sample(500, 1.0), None);
    }

    #[test]
    fn long_run_wrap_count_power_stable() {
        // Simulate 30 minutes at 165 W with 1 s reads: counter wraps at least
        // once; every read must still report ~165 W.
        let mut hw = EnergyCounter::new();
        let mut r = EnergyReader::new(hw.unit());
        r.sample(hw.raw(), 0.0);
        for step in 1..=1800u64 {
            hw.accumulate(165.0, 1.0);
            let p = r.sample(hw.raw(), step as f64).unwrap();
            assert!((p - 165.0).abs() < 0.01, "step {step}: {p}");
        }
    }

    #[test]
    #[should_panic(expected = "energy unit must be positive")]
    fn bad_unit_rejected() {
        EnergyCounter::with_unit(0.0);
    }
}
