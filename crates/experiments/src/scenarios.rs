//! Pinned-seed golden-trace scenarios.
//!
//! Each scenario builds a fully deterministic end-to-end run (fixed seed,
//! fixed topology, fixed workloads), attaches a recording [`SinkHandle`],
//! and returns the encoded `dps-obs` binary trace. The committed traces
//! under `tests/golden/` are these scenarios' output; `tests/golden_trace.rs`
//! re-records them on every test run and compares byte for byte, which
//! turns any behavioural drift in the decision loop — however small — into
//! a test failure with an event-level diff (`trace_inspect diff`).
//!
//! The same builders back the `trace_inspect record` subcommand, so a human
//! can regenerate or inspect the exact scenario a failing test ran.
//!
//! Determinism ground rules baked into these runs:
//!
//! * seeds are pinned per scenario and never derived from ambient state;
//! * sinks record without timing spans ([`dps_obs::RingSink::new`]), so no
//!   wall-clock nanoseconds enter the byte stream;
//! * ring capacity is sized so no scenario ever drops an event — a change
//!   that suddenly overflows the ring is itself a regression worth seeing.

use dps_cluster::{BudgetSchedule, ChaosSchedule, ChaosWindow, ClusterSim, SimConfig};
use dps_core::manager::{PowerManager, UnitLimits};
use dps_core::{DpsConfig, DpsManager, GuardConfig, ShardedManager};
use dps_idle::{IdleConfig, IdlePolicy};
use dps_obs::SinkHandle;
use dps_rapl::{
    ActuatorFault, NoiseModel, SensorFault, Topology, UnitFaultEvent, UnitFaultSchedule,
};
use dps_sched::{ArrivalSpec, JobRequest, SchedConfig};
use dps_sim_core::RngStream;
use dps_traffic::{ProvisionerConfig, ProvisionerMode, TrafficConfig, TrafficPattern};
use dps_workloads::catalog::{PowerClass, Suite, WorkloadSpec};
use dps_workloads::{DemandProgram, Phase};

/// Ring capacity for scenario recording — far above the largest scenario's
/// event count so `dropped` is always 0 in a healthy trace.
const RING_CAPACITY: usize = 1 << 16;

/// One pinned golden scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GoldenScenario {
    /// The paper's defaults on a downsized testbed: noisy telemetry, a hot
    /// cluster against a quiet one, plain (unguarded) DPS. Exercises the
    /// core decision events: MIMD cap deltas, priority flips, readjusts.
    PaperDefault,
    /// Guarded DPS under a scripted sensor-dropout and actuator-drop
    /// window, with the controller watchdog on. Exercises guard health
    /// transitions, quarantines, NaN-cap repairs, fault edges, and
    /// checkpoint events.
    SensorFault,
    /// Scheduler mode: a pinned Poisson job stream through the EASY
    /// backfill queue. Exercises job lifecycle events, membership churn,
    /// and queue-depth accounting.
    SchedulerChurn,
    /// Traffic mode: a flash-crowd request stream through the reactive
    /// provisioner. Exercises provisioning decisions (power-ons during the
    /// crowd, hysteresis power-offs after), request milestones, and the
    /// membership churn elastic sizing drives.
    ElasticTraffic,
    /// Traffic mode with idle-state management: the same flash-crowd shape
    /// as [`GoldenScenario::ElasticTraffic`], but the provisioner's
    /// power-offs demote units down the learning-augmented sleep ladder
    /// instead of hard-killing them, and power-ons pay a wake latency
    /// before readmission. Exercises sleep transitions, wake starts and
    /// completions, predictor samples, and the wake-energy ledger.
    IdleElastic,
    /// Graceful degradation under a correlated incident: guarded DPS on
    /// the framed control plane while one rack loses its sensors *and*
    /// its links corrupt frames *and* a budget brownout ramps through —
    /// all in overlapping windows. Exercises budget shocks, the
    /// `Normal → Degraded → Normal` mode ladder, chaos-compiled fault
    /// edges, and the always-on invariant monitor (which must stay
    /// silent: zero violations is part of the golden contract).
    ChaosBrownout,
    /// Traffic mode under the hierarchical sharded manager: the
    /// [`GoldenScenario::ElasticTraffic`] flash crowd, but the fleet is
    /// split into four shards whose grants the top-level allocator trades
    /// as the crowd ramps and the provisioner churns membership.
    /// Exercises inter-shard grant events, global-index membership flips
    /// from a multi-shard tree, and the invariant monitor's per-level
    /// tree checks (silent, as everywhere).
    ShardedElastic,
}

impl GoldenScenario {
    /// Every scenario, in golden-file order.
    pub const ALL: [GoldenScenario; 7] = [
        GoldenScenario::PaperDefault,
        GoldenScenario::SensorFault,
        GoldenScenario::SchedulerChurn,
        GoldenScenario::ElasticTraffic,
        GoldenScenario::IdleElastic,
        GoldenScenario::ChaosBrownout,
        GoldenScenario::ShardedElastic,
    ];

    /// Stable scenario name (also the golden file stem).
    pub fn name(&self) -> &'static str {
        match self {
            GoldenScenario::PaperDefault => "paper_default",
            GoldenScenario::SensorFault => "sensor_fault",
            GoldenScenario::SchedulerChurn => "scheduler_churn",
            GoldenScenario::ElasticTraffic => "elastic_traffic",
            GoldenScenario::IdleElastic => "idle_elastic",
            GoldenScenario::ChaosBrownout => "chaos_brownout",
            GoldenScenario::ShardedElastic => "sharded_elastic",
        }
    }

    /// The committed golden file name under `tests/golden/`.
    pub fn file_name(&self) -> String {
        format!("{}.trace", self.name())
    }

    /// Parses a scenario name (as printed by [`GoldenScenario::name`]).
    pub fn from_name(name: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|s| s.name() == name)
    }

    /// Records the scenario with the default DPS configuration and returns
    /// the encoded binary trace.
    pub fn record(&self) -> Vec<u8> {
        self.record_with(DpsConfig::default())
    }

    /// Records the scenario under a caller-chosen [`DpsConfig`] — the hook
    /// the cross-mode equivalence tests use to check that `Incremental` vs
    /// `Rescan` statistics (and the threaded classify phase) leave the
    /// trace byte-identical.
    pub fn record_with(&self, dps: DpsConfig) -> Vec<u8> {
        let sink = SinkHandle::recording(RING_CAPACITY);
        self.drive(dps, &sink);
        sink.export().expect("recording sink exports")
    }

    /// Re-records the scenario with every flat DPS manager replaced by a
    /// `num_shards`-shard [`ShardedManager`] built from the *same* RNG
    /// stream. With `num_shards == 1` the tree must be trace-byte-identical
    /// to [`GoldenScenario::record_with`] — `tests/sharded_equivalence.rs`
    /// asserts exactly that against the committed golden files. The
    /// [`GoldenScenario::ShardedElastic`] scenario is a tree already and
    /// records itself unchanged.
    pub fn record_with_shards(&self, dps: DpsConfig, num_shards: usize) -> Vec<u8> {
        let sink = SinkHandle::recording(RING_CAPACITY);
        self.drive_flavored(dps, &sink, ManagerFlavor::Sharded(num_shards));
        sink.export().expect("recording sink exports")
    }

    /// Drives the scenario's pinned run against a caller-provided sink —
    /// the hook for recording a scenario through a
    /// [`dps_obs::SegmentSink`] (or any other [`dps_obs::TraceSink`])
    /// instead of the default in-memory ring. The event stream is a
    /// function of the scenario and `dps` alone, never of the sink, so
    /// two recordings of the same scenario through different sinks must
    /// replay identically.
    pub fn drive(&self, dps: DpsConfig, sink: &SinkHandle) {
        self.drive_flavored(dps, sink, ManagerFlavor::Flat)
    }

    fn drive_flavored(&self, dps: DpsConfig, sink: &SinkHandle, flavor: ManagerFlavor) {
        match self {
            GoldenScenario::PaperDefault => drive_paper_default(dps, sink, flavor),
            GoldenScenario::SensorFault => drive_sensor_fault(dps, sink, flavor),
            GoldenScenario::SchedulerChurn => drive_scheduler_churn(dps, sink, flavor),
            GoldenScenario::ElasticTraffic => drive_elastic_traffic(dps, sink, flavor),
            GoldenScenario::IdleElastic => drive_idle_elastic(dps, sink, flavor),
            GoldenScenario::ChaosBrownout => drive_chaos_brownout(dps, sink, flavor),
            GoldenScenario::ShardedElastic => drive_sharded_elastic(dps, sink),
        }
    }
}

/// Which decision core the flat scenarios run: the golden files are
/// recorded under [`ManagerFlavor::Flat`]; the differential harness
/// re-records with a sharded tree from the same RNG stream and demands
/// byte-identity at one shard.
#[derive(Debug, Clone, Copy)]
enum ManagerFlavor {
    /// The flat [`DpsManager`] the committed golden traces were made with.
    Flat,
    /// A [`ShardedManager`] with the given shard count (a one-shard tree
    /// consumes the RNG stream exactly like the flat manager).
    Sharded(usize),
}

/// 2 clusters × 2 nodes × 2 sockets with the paper's power numbers — big
/// enough for cross-cluster reallocation, small enough that a full golden
/// trace stays a few tens of kilobytes.
fn small_testbed() -> SimConfig {
    SimConfig {
        topology: Topology::new(2, 2, 2),
        ..SimConfig::paper_default()
    }
}

fn limits(cfg: &SimConfig) -> UnitLimits {
    UnitLimits {
        min_cap: cfg.domain_spec.min_cap,
        max_cap: cfg.domain_spec.tdp,
    }
}

fn plain_dps(
    cfg: &SimConfig,
    dps: DpsConfig,
    rng: &RngStream,
    flavor: ManagerFlavor,
) -> Box<dyn PowerManager> {
    let n = cfg.topology.total_units();
    match flavor {
        ManagerFlavor::Flat => Box::new(DpsManager::new(
            n,
            cfg.total_budget(),
            limits(cfg),
            dps,
            rng.child("mgr"),
        )),
        ManagerFlavor::Sharded(k) => Box::new(ShardedManager::new(
            n,
            cfg.total_budget(),
            limits(cfg),
            dps,
            k,
            rng.child("mgr"),
        )),
    }
}

fn guarded_dps(
    cfg: &SimConfig,
    dps: DpsConfig,
    rng: &RngStream,
    flavor: ManagerFlavor,
) -> Box<dyn PowerManager> {
    // Noise-free telemetry trips the zero-variance detector; the fault
    // scenarios run without noise so the value gates do the detecting.
    let guard = GuardConfig {
        stuck_window: 0,
        quarantine_after: 2,
        probation_after: 3,
        readmit_after: 4,
        ..Default::default()
    };
    let n = cfg.topology.total_units();
    match flavor {
        ManagerFlavor::Flat => Box::new(DpsManager::with_guard(
            n,
            cfg.total_budget(),
            limits(cfg),
            dps,
            guard,
            rng.child("mgr"),
        )),
        ManagerFlavor::Sharded(k) => Box::new(ShardedManager::with_guard(
            n,
            cfg.total_budget(),
            limits(cfg),
            dps,
            guard,
            k,
            rng.child("mgr"),
        )),
    }
}

fn run_with(mut sim: ClusterSim, cycles: u64, sink: &SinkHandle) {
    sim.set_trace_sink(sink.clone());
    for _ in 0..cycles {
        sim.cycle();
    }
}

fn drive_paper_default(dps: DpsConfig, sink: &SinkHandle, flavor: ManagerFlavor) {
    let cfg = small_testbed();
    let rng = RngStream::new(0xD50_001, "golden/paper-default");
    // A hot ramping cluster against a mostly-quiet one: drives MIMD raises,
    // priority flips both ways, and distributed readjusts.
    let hot = DemandProgram::new(vec![
        Phase::ramp(20.0, 60.0, 160.0),
        Phase::constant(60.0, 160.0),
        Phase::ramp(20.0, 160.0, 90.0),
    ]);
    let quiet = DemandProgram::new(vec![
        Phase::constant(40.0, 30.0),
        Phase::ramp(20.0, 30.0, 120.0),
        Phase::constant(40.0, 45.0),
    ]);
    let manager = plain_dps(&cfg, dps, &rng, flavor);
    let sim = ClusterSim::new(cfg, vec![hot, quiet], manager, &rng);
    run_with(sim, 90, sink)
}

fn drive_sensor_fault(dps: DpsConfig, sink: &SinkHandle, flavor: ManagerFlavor) {
    let mut cfg = small_testbed();
    cfg.noise = NoiseModel::None;
    cfg.sensor_faults = UnitFaultSchedule::new(vec![
        UnitFaultEvent::sensor(0, 15.0, 45.0, SensorFault::Dropout),
        UnitFaultEvent::actuator(2, 30.0, 60.0, ActuatorFault::DropWrites),
    ]);
    let rng = RngStream::new(0xD50_002, "golden/sensor-fault");
    let hot = DemandProgram::new(vec![Phase::constant(200.0, 160.0)]);
    let busy = DemandProgram::new(vec![Phase::constant(200.0, 140.0)]);
    let manager = guarded_dps(&cfg, dps, &rng, flavor);
    let mut sim = ClusterSim::new(cfg, vec![hot, busy], manager, &rng);
    sim.enable_watchdog(16);
    run_with(sim, 100, sink)
}

/// A synthetic short workload for the churn scenario: catalog entries run
/// for hundreds of seconds, which would bloat the committed golden file.
fn short_spec(name: &'static str, duration: f64, class: PowerClass) -> WorkloadSpec {
    WorkloadSpec {
        name,
        suite: Suite::Spark,
        data_size_gb: 1.0,
        duration_110w: duration,
        class,
        frac_above_110: match class {
            PowerClass::Low => 0.05,
            PowerClass::Mid => 0.4,
            PowerClass::High => 0.8,
        },
    }
}

fn drive_scheduler_churn(dps: DpsConfig, sink: &SinkHandle, flavor: ManagerFlavor) {
    // The generated job specs need whole-cluster headroom; the 16-unit
    // testbed (2 clusters × 4 nodes × 2 sockets) fits them comfortably.
    let mut cfg = SimConfig {
        topology: Topology::new(2, 4, 2),
        ..SimConfig::paper_default()
    };
    // An explicit trace of short jobs: full lifecycle coverage (arrive,
    // start, finish — and one walltime eviction via job 3's tight
    // request) inside a few hundred cycles.
    let jobs = vec![
        JobRequest {
            id: 0,
            spec: short_spec("golden-etl", 60.0, PowerClass::Mid),
            arrival: 0.0,
            nodes: 4,
            walltime: 150.0,
            reserve_per_socket: 110.0,
        },
        JobRequest {
            id: 1,
            spec: short_spec("golden-train", 80.0, PowerClass::High),
            arrival: 10.0,
            nodes: 3,
            walltime: 200.0,
            reserve_per_socket: 110.0,
        },
        JobRequest {
            id: 2,
            spec: short_spec("golden-report", 40.0, PowerClass::Low),
            arrival: 25.0,
            nodes: 2,
            walltime: 120.0,
            reserve_per_socket: 60.0,
        },
        JobRequest {
            id: 3,
            spec: short_spec("golden-overrun", 90.0, PowerClass::High),
            arrival: 40.0,
            nodes: 4,
            walltime: 35.0, // below its runtime → evicted
            reserve_per_socket: 110.0,
        },
        JobRequest {
            id: 4,
            spec: short_spec("golden-tail", 50.0, PowerClass::Mid),
            arrival: 70.0,
            nodes: 2,
            walltime: 140.0,
            reserve_per_socket: 110.0,
        },
    ];
    cfg.scheduler = Some(SchedConfig {
        arrivals: ArrivalSpec::Trace(jobs),
        backfill: true,
        enforce_walltime: true,
        walltime_factor: 1.6,
        slowdown_bound: 10.0,
    });
    let rng = RngStream::new(0xD50_003, "golden/scheduler-churn");
    let manager = plain_dps(&cfg, dps, &rng, flavor);
    let mut sim = ClusterSim::with_scheduler(cfg, manager, &rng);
    sim.set_trace_sink(sink.clone());
    // Run to queue drain (bounded), then a short idle tail so the trace
    // also covers the cluster going quiet.
    for _ in 0..1_000 {
        if sim.scheduler_drained() {
            break;
        }
        sim.cycle();
    }
    assert!(sim.scheduler_drained(), "churn scenario failed to drain");
    for _ in 0..5 {
        sim.cycle();
    }
}

fn drive_elastic_traffic(dps: DpsConfig, sink: &SinkHandle, flavor: ManagerFlavor) {
    // 4 nodes × 2 sockets: small enough for a compact trace, big enough
    // for the reactive provisioner to walk the fleet up and back down.
    let mut cfg = SimConfig {
        topology: Topology::new(2, 2, 2),
        ..SimConfig::paper_default()
    };
    let total_sockets = cfg.topology.total_units();
    let mut traffic = TrafficConfig::default_diurnal(total_sockets, 100.0);
    // A flash crowd that peaks near the fleet's full service capacity:
    // forces power-ons on the ramp and — after the 15 s hysteresis —
    // power-offs on the far side, all inside 220 cycles.
    traffic.pattern = TrafficPattern::FlashCrowd {
        base_rps: 100.0,
        peak_rps: 0.9 * total_sockets as f64 * 100.0,
        start: 20.0,
        ramp: 10.0,
        hold: 60.0,
        decay: 10.0,
    };
    traffic.provisioner = ProvisionerMode::Reactive(ProvisionerConfig {
        target_utilization: 0.7,
        headroom_nodes: 0,
        power_off_after: 15.0,
        min_nodes: 1,
    });
    traffic.milestone_every = 10_000;
    cfg.traffic = Some(traffic);
    let rng = RngStream::new(0xD50_004, "golden/elastic-traffic");
    let manager = plain_dps(&cfg, dps, &rng, flavor);
    let sim = ClusterSim::with_traffic(cfg, manager, &rng);
    run_with(sim, 220, sink)
}

fn drive_idle_elastic(dps: DpsConfig, sink: &SinkHandle, flavor: ManagerFlavor) {
    // Same fleet and flash-crowd shape as `elastic_traffic`, but with the
    // sleep ladder between the provisioner and the power switch: shrink
    // decisions demote down the C-state cascade (learning-augmented, so
    // the gap predictor's advice shapes the schedule and PredictorSample
    // events land in the trace), and growth pays wake latency before a
    // unit serves again. A second, smaller crowd after the first gives the
    // predictor a history to advise from.
    let mut cfg = SimConfig {
        topology: Topology::new(2, 2, 2),
        ..SimConfig::paper_default()
    };
    let total_sockets = cfg.topology.total_units();
    let mut traffic = TrafficConfig::default_diurnal(total_sockets, 100.0);
    traffic.pattern = TrafficPattern::FlashCrowd {
        base_rps: 100.0,
        peak_rps: 0.9 * total_sockets as f64 * 100.0,
        start: 20.0,
        ramp: 10.0,
        hold: 40.0,
        decay: 10.0,
    };
    traffic.provisioner = ProvisionerMode::Reactive(ProvisionerConfig {
        target_utilization: 0.7,
        headroom_nodes: 0,
        power_off_after: 15.0,
        min_nodes: 1,
    });
    traffic.milestone_every = 10_000;
    cfg.traffic = Some(traffic);
    cfg.idle = Some(IdleConfig {
        policy: IdlePolicy::LearningAugmented { lambda: 0.5 },
        ..IdleConfig::default()
    });
    let rng = RngStream::new(0xD50_006, "golden/idle-elastic");
    let manager = plain_dps(&cfg, dps, &rng, flavor);
    let sim = ClusterSim::with_traffic(cfg, manager, &rng);
    run_with(sim, 260, sink)
}

fn drive_sharded_elastic(dps: DpsConfig, sink: &SinkHandle) {
    // The elastic-traffic fleet shape and flash crowd, managed by a 4-shard
    // hierarchical tree (2 units per shard): the crowd's ramp skews demand
    // across shards so the allocator actually regrants, and the reactive
    // provisioner's node churn lands as global-index membership flips
    // emitted by the tree's top level.
    let mut cfg = SimConfig {
        topology: Topology::new(2, 2, 2),
        ..SimConfig::paper_default()
    };
    let total_sockets = cfg.topology.total_units();
    let mut traffic = TrafficConfig::default_diurnal(total_sockets, 100.0);
    traffic.pattern = TrafficPattern::FlashCrowd {
        base_rps: 100.0,
        peak_rps: 0.9 * total_sockets as f64 * 100.0,
        start: 20.0,
        ramp: 10.0,
        hold: 60.0,
        decay: 10.0,
    };
    traffic.provisioner = ProvisionerMode::Reactive(ProvisionerConfig {
        target_utilization: 0.7,
        headroom_nodes: 0,
        power_off_after: 15.0,
        min_nodes: 1,
    });
    traffic.milestone_every = 10_000;
    cfg.traffic = Some(traffic);
    let rng = RngStream::new(0xD50_007, "golden/sharded-elastic");
    let manager: Box<dyn PowerManager> = Box::new(ShardedManager::new(
        total_sockets,
        cfg.total_budget(),
        limits(&cfg),
        dps,
        4,
        rng.child("mgr"),
    ));
    let sim = ClusterSim::with_traffic(cfg, manager, &rng);
    run_with(sim, 220, sink)
}

fn drive_chaos_brownout(dps: DpsConfig, sink: &SinkHandle, flavor: ManagerFlavor) {
    // Guarded DPS on the framed plane under a correlated incident: rack 1
    // (units 4..8 — half the fleet, enough to cross the 0.35 Degraded
    // threshold but not the 0.6 SafeMode one) loses its sensors to a
    // dropout while its control-plane links corrupt frames, and a budget
    // brownout ramps through the same stretch. The ladder must descend to
    // Degraded on the quarantine wave and hysteretically re-ascend once
    // the window closes and the guard readmits — with the invariant
    // monitor silent throughout.
    let mut cfg = small_testbed();
    cfg.noise = NoiseModel::None;
    cfg.control_plane = dps_cluster::ControlPlaneMode::Framed(dps_ctrl::FramedConfig::default());
    cfg.chaos = ChaosSchedule::new(vec![ChaosWindow::new(1, 20.0, 60.0)
        .with_sensor(SensorFault::Dropout)
        .with_frame_loss(0.35)
        .with_budget_factor(0.9)]);
    cfg.budget = BudgetSchedule::brownout(30.0, 0.75, 10.0, 30.0);
    let rng = RngStream::new(0xD50_005, "golden/chaos-brownout");
    let hot = DemandProgram::new(vec![Phase::constant(200.0, 160.0)]);
    let busy = DemandProgram::new(vec![Phase::constant(200.0, 140.0)]);
    let manager = guarded_dps(&cfg, dps, &rng, flavor);
    let mut sim = ClusterSim::new(cfg, vec![hot, busy], manager, &rng);
    sim.enable_watchdog(16);
    run_with(sim, 160, sink)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_roundtrip() {
        for s in GoldenScenario::ALL {
            assert_eq!(GoldenScenario::from_name(s.name()), Some(s));
            assert!(s.file_name().ends_with(".trace"));
        }
        assert_eq!(GoldenScenario::from_name("nope"), None);
    }

    #[test]
    fn scenarios_are_deterministic_and_nonempty() {
        for s in GoldenScenario::ALL {
            let a = s.record();
            let b = s.record();
            assert_eq!(a, b, "{} is not byte-stable across runs", s.name());
            let trace = dps_obs::codec::decode(&a).expect("trace decodes");
            assert_eq!(trace.dropped, 0, "{} overflowed its ring", s.name());
            assert!(
                trace.events.len() > 100,
                "{} looks implausibly small ({} events)",
                s.name(),
                trace.events.len()
            );
        }
    }
}
