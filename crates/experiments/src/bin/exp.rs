//! The artifact's `exp.py` equivalent: run one workload pair under one
//! power manager with a chosen repetition count.
//!
//! ```text
//! exp <workload_a> <workload_b> [manager] [reps] [seed]
//!
//! exp GMM EP dps 3
//! exp Kmeans Sort slurm 10 1234
//! ```
//!
//! `manager` ∈ {constant, slurm, dps, oracle} (default dps). Prints the
//! per-run throughput times, harmonic means, speedups over a constant
//! baseline run, satisfaction and fairness.

use dps_cluster::run_pair;
use dps_core::manager::ManagerKind;
use dps_experiments::{banner, config_from_env, pct};
use dps_workloads::catalog;

fn usage() -> ! {
    eprintln!(
        "usage: exp <workload_a> <workload_b> \
         [constant|slurm|dps|oracle|feedback|predictive|twolevel] [reps] [seed]"
    );
    eprintln!("workloads: {}", all_names().join(", "));
    std::process::exit(2);
}

fn all_names() -> Vec<&'static str> {
    catalog::SPARK_WORKLOADS
        .iter()
        .chain(catalog::NPB_WORKLOADS)
        .map(|w| w.name)
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.len() < 3 {
        usage();
    }
    let spec_a = catalog::find(&args[1]).unwrap_or_else(|| {
        eprintln!("unknown workload {:?}", args[1]);
        usage()
    });
    let spec_b = catalog::find(&args[2]).unwrap_or_else(|| {
        eprintln!("unknown workload {:?}", args[2]);
        usage()
    });
    let kind = match args.get(3).map(|s| s.to_ascii_lowercase()).as_deref() {
        None | Some("dps") => ManagerKind::Dps,
        Some("constant") => ManagerKind::Constant,
        Some("slurm") => ManagerKind::Slurm,
        Some("oracle") => ManagerKind::Oracle,
        Some("feedback") => ManagerKind::Feedback,
        Some("predictive") => ManagerKind::Predictive,
        Some("twolevel") => ManagerKind::TwoLevel,
        Some(other) => {
            eprintln!("unknown manager {other:?}");
            usage()
        }
    };

    let mut config = config_from_env();
    if let Some(reps) = args.get(4).and_then(|s| s.parse().ok()) {
        if reps == 0 {
            eprintln!("reps must be at least 1");
            usage();
        }
        config.reps = reps;
    }
    if let Some(seed) = args.get(5).and_then(|s| s.parse().ok()) {
        config.seed = seed;
    }

    banner(
        &format!("exp: {} + {} under {kind}", spec_a.name, spec_b.name),
        &config,
    );

    let baseline = run_pair(spec_a, spec_b, ManagerKind::Constant, &config);
    let outcome = run_pair(spec_a, spec_b, kind, &config);

    for (label, w, base) in [
        ("cluster 0", &outcome.a, &baseline.a),
        ("cluster 1", &outcome.b, &baseline.b),
    ] {
        println!(
            "{label}: {} — runs: {:?}",
            w.name,
            w.durations
                .iter()
                .map(|d| format!("{d:.1}s"))
                .collect::<Vec<_>>()
        );
        println!(
            "  hmean {:.2} s (constant baseline {:.2} s, speedup {}); satisfaction {:.3}",
            w.hmean_duration(),
            base.hmean_duration(),
            pct(base.hmean_duration() / w.hmean_duration()),
            w.satisfaction
        );
    }
    println!(
        "pair hmean speedup {} | fairness {:.3} | {} decision cycles",
        pct(outcome.pair_speedup(baseline.a.hmean_duration(), baseline.b.hmean_duration())),
        outcome.fairness,
        outcome.steps
    );
}
