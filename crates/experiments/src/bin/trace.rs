//! Exports the per-cycle power log of one pair run as CSV — the artifact's
//! "log of the average power during every operating cycle, the power cap
//! set, and the priority ... for each socket".
//!
//! ```text
//! trace <workload_a> <workload_b> [manager] [seconds] [out_dir]
//! ```
//!
//! Writes `<out_dir>/trace_<a>_<b>_<manager>.csv` with one row per
//! (cycle, unit): `time,unit,cluster,demand,power,cap,priority`.

use dps_cluster::ClusterSim;
use dps_core::manager::ManagerKind;
use dps_experiments::config_from_env;
use dps_sim_core::rng::RngStream;
use dps_workloads::{build_program, catalog};
use std::fmt::Write as _;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let name_a = args.get(1).map(String::as_str).unwrap_or("GMM");
    let name_b = args.get(2).map(String::as_str).unwrap_or("EP");
    let manager_name = args.get(3).map(String::as_str).unwrap_or("dps");
    let seconds: u64 = args.get(4).and_then(|s| s.parse().ok()).unwrap_or(600);
    let out_dir = args.get(5).map(String::as_str).unwrap_or("results");

    let kind = match manager_name.to_ascii_lowercase().as_str() {
        "constant" => ManagerKind::Constant,
        "slurm" => ManagerKind::Slurm,
        "oracle" => ManagerKind::Oracle,
        "feedback" => ManagerKind::Feedback,
        "predictive" => ManagerKind::Predictive,
        "twolevel" => ManagerKind::TwoLevel,
        _ => ManagerKind::Dps,
    };

    let config = config_from_env();
    let spec_a = catalog::find(name_a).expect("workload a");
    let spec_b = catalog::find(name_b).expect("workload b");
    let pair_rng = RngStream::new(config.seed, &format!("pair/{name_a}+{name_b}"));
    let program_a = build_program(spec_a, &config.sim.perf, config.seed);
    let program_b = build_program(spec_b, &config.sim.perf, config.seed ^ 0x5555);

    let mut sim = ClusterSim::new(
        config.sim.clone(),
        vec![program_a, program_b],
        config.build_manager(kind),
        &pair_rng.child("sim"),
    );
    sim.enable_logging();
    for _ in 0..seconds {
        sim.cycle();
    }

    let topo = sim.config().topology;
    let mut csv = String::from("time,unit,cluster,demand,power,cap,priority\n");
    for rec in sim.log().records() {
        for u in 0..topo.total_units() {
            let prio = rec.priority.get(u).map(|p| *p as u8).unwrap_or(0);
            let _ = writeln!(
                csv,
                "{},{u},{},{:.2},{:.2},{:.2},{prio}",
                rec.time,
                topo.cluster_of(u),
                rec.demand[u],
                rec.power[u],
                rec.caps[u],
            );
        }
    }

    std::fs::create_dir_all(out_dir).expect("create output dir");
    let path = format!(
        "{out_dir}/trace_{}_{}_{}.csv",
        name_a.to_ascii_lowercase(),
        name_b.to_ascii_lowercase(),
        kind.to_string().to_ascii_lowercase()
    );
    std::fs::write(&path, csv).expect("write trace");
    println!(
        "wrote {path}: {seconds} cycles x {} units (fairness so far {:.3})",
        topo.total_units(),
        sim.fairness(0, 1)
    );
}
