//! Power-aware job scheduling: DPS vs MIMD vs constant under churn.
//!
//! The paper evaluates managers on pinned workload pairs; this experiment
//! asks what adaptive reallocation buys a *batch queue*. A seeded Poisson
//! stream of catalog jobs flows through the EASY-backfill scheduler
//! ([`dps_sched`]); every manager sees the identical arrival trace, so the
//! only difference is how fast jobs run under each manager's caps — which
//! shows up as makespan, bounded slowdown, and node utilization. DPS's
//! demand-aware caps let busy sockets run closer to TDP, so jobs finish
//! sooner and the queue drains earlier than under the uniform-share
//! baselines.
//!
//! Along the way the run re-asserts the scheduler-mode budget invariant:
//! at every cycle the sum of caps applied to *occupied* units stays within
//! the cluster budget.
//!
//! `DPS_QUICK=1` shortens the trace for CI smoke coverage.

use dps_cluster::{ClusterSim, ExperimentConfig};
use dps_core::manager::ManagerKind;
use dps_experiments::{banner, config_from_env};
use dps_metrics::csv;
use dps_metrics::jobs::{bounded_slowdowns, makespan, percentile, utilization};
use dps_metrics::Table;
use dps_rapl::Topology;
use dps_sched::{JobOutcome, SchedConfig};
use dps_sim_core::RngStream;

/// One manager's job-level results.
struct SchedOutcome {
    completed: usize,
    evicted: usize,
    makespan: f64,
    mean_slowdown: f64,
    p95_slowdown: f64,
    utilization: f64,
    worst_margin: f64,
}

fn run(config: &ExperimentConfig, kind: ManagerKind) -> SchedOutcome {
    let slowdown_bound = config
        .sim
        .scheduler
        .as_ref()
        .expect("scheduler configured")
        .slowdown_bound;
    let budget = config.sim.total_budget();
    let total_nodes = config.sim.total_nodes();
    // One shared rng label: every manager gets the identical arrival trace
    // and per-job workload realisations.
    let rng = RngStream::new(config.seed, "sched-experiment");
    let mut sim = ClusterSim::with_scheduler(config.sim.clone(), config.build_manager(kind), &rng);
    sim.enable_logging();

    let mut worst_margin = f64::NEG_INFINITY;
    let max_cycles = 2_000_000u64;
    for _ in 0..max_cycles {
        sim.cycle();
        // Budget invariant on occupied units, every cycle.
        let occupied = sim.occupied_units().expect("scheduler mode");
        let occupied_sum: f64 = sim
            .caps()
            .iter()
            .zip(occupied)
            .filter(|&(_, &occ)| occ)
            .map(|(&cap, _)| cap)
            .sum();
        worst_margin = worst_margin.max(occupied_sum - budget);
        assert!(
            occupied_sum <= budget + 1e-6,
            "occupied caps {occupied_sum:.2} W exceed budget {budget:.2} W"
        );
        if sim.scheduler_drained() {
            break;
        }
    }
    assert!(sim.scheduler_drained(), "queue failed to drain");

    // Artifact-style CSV dump of the DPS run's scheduler activity.
    if kind == ManagerKind::Dps {
        std::fs::create_dir_all("results").expect("create results dir");
        let events = csv::render(
            &["time", "job", "nodes", "event"],
            sim.log().sched_event_rows(),
        );
        std::fs::write("results/sched_events.csv", events).expect("write events csv");
        let times: Vec<f64> = sim.log().records().iter().map(|r| r.time).collect();
        let depths: Vec<f64> = sim
            .log()
            .queue_depth_series()
            .iter()
            .map(|&d| d as f64)
            .collect();
        std::fs::write("results/sched_queue_depth.csv", csv::trace(&times, &depths))
            .expect("write queue-depth csv");
        println!("wrote results/sched_events.csv and results/sched_queue_depth.csv (DPS run)\n");
    }

    let records = sim.job_records();
    let completed: Vec<_> = records
        .iter()
        .filter(|r| r.outcome == JobOutcome::Completed)
        .collect();
    let times: Vec<(f64, f64, f64)> = completed
        .iter()
        .map(|r| (r.arrival, r.start, r.end))
        .collect();
    let slowdowns = bounded_slowdowns(&times, slowdown_bound);
    let span = makespan(&times).unwrap_or(0.0);
    let busy: f64 = completed.iter().map(|r| r.nodes as f64 * r.runtime()).sum();
    SchedOutcome {
        completed: completed.len(),
        evicted: records
            .iter()
            .filter(|r| r.outcome == JobOutcome::Evicted)
            .count(),
        makespan: span,
        mean_slowdown: slowdowns.iter().sum::<f64>() / slowdowns.len().max(1) as f64,
        p95_slowdown: percentile(&slowdowns, 95.0).unwrap_or(1.0),
        utilization: utilization(busy, total_nodes, span),
        worst_margin,
    }
}

fn main() {
    let (jobs, mean_interarrival) = if std::env::var("DPS_QUICK").is_ok() {
        (12, 400.0)
    } else {
        (60, 300.0)
    };
    let mut config = config_from_env();
    // A small partition: 2 clusters × 4 nodes × 2 sockets. Jobs span 1–4
    // nodes, so the queue sees real packing pressure.
    config.sim.topology = Topology::new(2, 4, 2);
    config.sim.scheduler = Some(SchedConfig::default_poisson(jobs, mean_interarrival));
    banner("Power-aware job scheduling (EASY backfill, 2x4x2)", &config);
    println!("{jobs} Poisson jobs (mean interarrival {mean_interarrival:.0} s), identical trace per manager\n");

    let kinds = [ManagerKind::Constant, ManagerKind::Slurm, ManagerKind::Dps];
    let mut table = Table::new(vec![
        "Manager".into(),
        "Done".into(),
        "Evicted".into(),
        "Makespan (s)".into(),
        "Mean bsld".into(),
        "p95 bsld".into(),
        "Util".into(),
        "Worst margin (W)".into(),
    ]);
    let mut spans = Vec::new();
    for kind in kinds {
        let out = run(&config, kind);
        spans.push((kind, out.makespan));
        table.row(vec![
            kind.to_string(),
            out.completed.to_string(),
            out.evicted.to_string(),
            format!("{:.0}", out.makespan),
            format!("{:.2}", out.mean_slowdown),
            format!("{:.2}", out.p95_slowdown),
            format!("{:.3}", out.utilization),
            format!("{:+.2}", out.worst_margin),
        ]);
    }
    println!("{}", table.render());

    if let (Some((_, constant)), Some((_, dps))) = (
        spans.iter().find(|(k, _)| *k == ManagerKind::Constant),
        spans.iter().find(|(k, _)| *k == ManagerKind::Dps),
    ) {
        println!(
            "makespan: DPS vs constant {:+.1}%",
            (constant / dps - 1.0) * 100.0
        );
    }
    println!();
    println!("Expected shape: all managers retire the same trace (budget margins stay");
    println!("negative — occupied caps never exceed the budget). DPS steers watts to");
    println!("occupied, demand-heavy sockets, so jobs run closer to full speed and the");
    println!("queue drains no later than under uniform-share MIMD or constant caps.");
}
