//! Figure 1: the motivational example.
//!
//! Two nodes, five timesteps, budget = 2 × 110 W. Node 0 ramps to maximum
//! power two timesteps before Node 1. Rows show the caps each power
//! management scheme assigns at each timestep:
//!
//! * **Infinite budget** — the demand itself (top row of the figure);
//! * **Constant** — 110/110 forever, wasting budget at T1–T2 but balanced
//!   at T4;
//! * **Perfect model** — full utilization through T2, balanced at T3–T4;
//! * **Stateless** — full utilization through T2 but then *stuck*: it sees
//!   both nodes at their caps and keeps the disproportionate split,
//!   starving Node 1;
//! * **DPS** — follows the stateless system until Node 1's rising trend is
//!   detected, then readjusts toward the balanced allocation the perfect
//!   model reaches.

use dps_core::manager::{ManagerKind, PowerManager, UnitLimits};
use dps_experiments::config_from_env;
use dps_sim_core::units::Watts;

/// Node demand over the five timesteps (the staircase of Fig. 1).
const DEMAND: [[Watts; 2]; 5] = [
    [55.0, 55.0],   // T0: both warming up
    [165.0, 55.0],  // T1: node 0 jumps to max
    [165.0, 110.0], // T2: node 1 begins rising
    [165.0, 165.0], // T3: node 1 at max — total demand exceeds budget
    [165.0, 165.0], // T4
];

const BUDGET: Watts = 220.0;

fn run_manager(mut mgr: Box<dyn PowerManager>, settle: usize) -> Vec<[Watts; 2]> {
    let limits = UnitLimits::xeon_gold_6240();
    let mut caps = vec![dps_core::manager::constant_cap(BUDGET, 2, limits); 2];
    let mut out = Vec::new();
    for demands in DEMAND {
        // Each paper "timestep" spans several decision cycles; run the
        // manager a few cycles per timestep so multiplicative dynamics can
        // settle, and report the caps at the end of the timestep.
        for _ in 0..settle {
            let measured = [demands[0].min(caps[0]), demands[1].min(caps[1])];
            mgr.observe_demands(&demands);
            mgr.assign_caps(&measured, &mut caps, 1.0);
        }
        out.push([caps[0], caps[1]]);
    }
    out
}

fn main() {
    let config = config_from_env();
    println!("=== Figure 1: motivational example (2 nodes, budget {BUDGET} W) ===\n");

    let mut table = dps_metrics::Table::new(vec![
        "Scheme".into(),
        "T0".into(),
        "T1".into(),
        "T2".into(),
        "T3".into(),
        "T4".into(),
    ]);

    let fmt = |caps: &[[Watts; 2]]| -> Vec<String> {
        caps.iter()
            .map(|c| format!("{:.0}/{:.0}", c[0], c[1]))
            .collect()
    };

    // Row 1: infinite budget = the demands themselves.
    let demand_row: Vec<[Watts; 2]> = DEMAND.to_vec();
    let mut row = vec!["Infinite budget (demand)".to_string()];
    row.extend(fmt(&demand_row));
    table.row(row);

    let settle = 8;
    for (label, kind) in [
        ("Constant", ManagerKind::Constant),
        ("Perfect model (oracle)", ManagerKind::Oracle),
        ("Stateless (SLURM)", ManagerKind::Slurm),
        ("DPS", ManagerKind::Dps),
    ] {
        let mut exp = config.clone();
        exp.sim.topology = dps_rapl::Topology::new(2, 1, 1);
        exp.sim.budget_fraction = BUDGET / (2.0 * exp.sim.domain_spec.tdp);
        let mgr = exp.build_manager(kind);
        let caps = run_manager(mgr, settle);
        let mut row = vec![label.to_string()];
        row.extend(fmt(&caps));
        table.row(row);
    }

    println!("{}", table.render());
    println!("caps shown as node0/node1 at the end of each timestep");
    println!("({settle} one-second decision cycles per timestep)");
    println!();
    println!("Expected shape (paper Fig. 1):");
    println!(" - Stateless matches the oracle through T2, then starves node 1 at T3-T4.");
    println!(" - DPS detects node 1's rise and converges to the oracle's balanced split.");
}
