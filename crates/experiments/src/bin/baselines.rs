//! Extension study: DPS against the full related-work baseline set.
//!
//! Beyond the paper's own comparators (constant, SLURM, oracle), this runs
//! the three §2 archetypes implemented in `dps-core` — the Argo-style
//! two-level stateless hierarchy, the PShifter-style PI feedback shifter,
//! and the PoDD/PANN-lite online demand model — on one representative pair
//! per evaluation regime.

use dps_core::manager::ManagerKind;
use dps_experiments::{banner, config_from_env, pct, run_grid, threads_from_env};
use dps_workloads::catalog::find;

fn main() {
    let config = config_from_env();
    banner("Baselines: all managers, one pair per regime", &config);

    let pairs = vec![
        (find("LDA").unwrap(), find("Sort").unwrap()), // low utility
        (find("Bayes").unwrap(), find("GMM").unwrap()), // high utility
        (find("GMM").unwrap(), find("EP").unwrap()),   // Spark x NPB
        (find("LR").unwrap(), find("FT").unwrap()),    // high frequency both sides
    ];
    let managers = [
        ManagerKind::Slurm,
        ManagerKind::TwoLevel,
        ManagerKind::Feedback,
        ManagerKind::Predictive,
        ManagerKind::Dps,
        ManagerKind::Oracle,
    ];

    let cells = run_grid(&pairs, &managers, &config, threads_from_env());

    for (p, (a, b)) in pairs.iter().enumerate() {
        println!("--- {} + {}", a.name, b.name);
        let mut table = dps_metrics::Table::new(vec![
            "manager".into(),
            "speedup A".into(),
            "speedup B".into(),
            "pair".into(),
            "fairness".into(),
        ]);
        for (m, _) in managers.iter().enumerate() {
            let cell = &cells[p * managers.len() + m];
            table.row(vec![
                cell.outcome.manager.to_string(),
                pct(cell.speedup_a()),
                pct(cell.speedup_b()),
                pct(cell.pair_speedup()),
                format!("{:.3}", cell.outcome.fairness),
            ]);
        }
        println!("{}", table.render());
    }

    println!("Reading guide: the oracle bounds what any manager can achieve; DPS");
    println!("matches it in low utility and dominates the stateless family (SLURM,");
    println!("TwoLevel — near-identical at 2 sockets/node) under contention.");
    println!("Predictive performs like the paper says model-based systems do —");
    println!("near-optimal once its model has seen the phases — at the deployment");
    println!("cost DPS avoids. Feedback (PI headroom equalization, PShifter-style)");
    println!("shines within a cooperative low-utility mix but fails across");
    println!("competing jobs: each dip of a phase-rich job lets the controller");
    println!("confiscate its caps, and with every unit pinned the error signal");
    println!("goes silent, freezing the starvation — the local optimum §2.3 says");
    println!("level-based managers cannot escape.");
}
