//! The artifact's `run_experiment.sh` equivalent: regenerates every table
//! and figure in sequence. With `DPS_QUICK=1` this is the artifact's "toy
//! example" mode (reps = 2).

use std::process::Command;

fn main() {
    let exe_dir = std::env::current_exe()
        .expect("own path")
        .parent()
        .expect("bin dir")
        .to_path_buf();
    let binaries = [
        // The paper's tables and figures...
        "fig1",
        "fig2",
        "tables",
        "fig4",
        "fig5",
        "fig6",
        "fig7",
        "overhead",
        "ablation",
        // ...and the extension studies (see DESIGN.md).
        "baselines",
        "sweep",
        "mix",
        "scale",
        "dram",
    ];
    for bin in binaries {
        let path = exe_dir.join(bin);
        println!("\n================ {bin} ================\n");
        let status = Command::new(&path)
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {}: {e}", path.display()));
        if !status.success() {
            eprintln!("{bin} exited with {status}");
            std::process::exit(status.code().unwrap_or(1));
        }
    }
}
