//! Tables 2 and 4: the workload catalog with measured baseline durations.
//!
//! For every Spark and NPB workload: the published statistics next to the
//! values measured from this reproduction's generators — the duration under
//! a constant 110 W/socket cap (the baseline every figure normalises to)
//! and the fraction of uncapped time above 110 W.

use dps_experiments::{banner, config_from_env};
use dps_workloads::catalog::{NPB_WORKLOADS, SPARK_WORKLOADS};
use dps_workloads::generator::{build_program, capped_duration};

fn main() {
    let config = config_from_env();
    banner("Tables 2 & 4: benchmark workloads", &config);

    for (title, specs) in [
        ("Table 2: Spark benchmark workloads", SPARK_WORKLOADS),
        (
            "Table 4: NAS Parallel Benchmark applications",
            NPB_WORKLOADS,
        ),
    ] {
        println!("{title}");
        let mut table = dps_metrics::Table::new(vec![
            "Workload".into(),
            "Data(GB)".into(),
            "Dur@110W paper(s)".into(),
            "Dur@110W ours(s)".into(),
            ">110W paper".into(),
            ">110W ours".into(),
            "Class".into(),
        ]);
        for spec in specs {
            let program = build_program(spec, &config.sim.perf, config.seed);
            let dur = capped_duration(&program, &config.sim.perf, 110.0);
            let frac = program.fraction_above(110.0);
            table.row(vec![
                spec.name.to_string(),
                format!("{:.1}", spec.data_size_gb),
                format!("{:.2}", spec.duration_110w),
                format!("{dur:.2}"),
                format!("{:.2}%", 100.0 * spec.frac_above_110),
                format!("{:.2}%", 100.0 * frac),
                format!("{:?}", spec.class),
            ]);
        }
        println!("{}", table.render());
    }

    println!("Table 3: Spark benchmark computing resources (testbed configuration)");
    let mut t3 = dps_metrics::Table::new(vec![
        "Power Type".into(),
        "# Executors".into(),
        "Cores per executor".into(),
    ]);
    t3.row(vec!["low-power".into(), "1".into(), "8".into()]);
    t3.row(vec!["mid-power".into(), "48".into(), "8".into()]);
    t3.row(vec!["high-power".into(), "48".into(), "8".into()]);
    println!("{}", t3.render());
    println!("(In this reproduction the executor counts map to the low/mid/high demand");
    println!("levels of the generators rather than to real Spark processes.)");
}
