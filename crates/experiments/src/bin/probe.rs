//! Quick diagnostic probe: runs a handful of representative pairs under all
//! managers and prints the speedup shapes. Not a paper figure — a fast
//! sanity check that the reproduction's qualitative results hold before
//! running the full grids.

use dps_core::manager::ManagerKind;
use dps_experiments::{banner, config_from_env, pct, run_grid, threads_from_env};
use dps_workloads::catalog::find;

fn main() {
    let mut config = config_from_env();
    config.reps = config.reps.min(3);
    banner("probe: representative pairs, all managers", &config);

    let pairs = vec![
        // Low utility: mid paired with low.
        (find("LDA").unwrap(), find("Sort").unwrap()),
        (find("LR").unwrap(), find("Wordcount").unwrap()),
        // High utility: mid paired with the high-power GMM.
        (find("Kmeans").unwrap(), find("GMM").unwrap()),
        (find("LDA").unwrap(), find("GMM").unwrap()),
        // Spark × NPB.
        (find("GMM").unwrap(), find("EP").unwrap()),
        (find("Bayes").unwrap(), find("LU").unwrap()),
    ];
    let managers = [ManagerKind::Slurm, ManagerKind::Dps, ManagerKind::Oracle];

    let cells = run_grid(&pairs, &managers, &config, threads_from_env());

    println!(
        "{:<10} {:<10} {:<8} {:>9} {:>9} {:>9} {:>9}",
        "A", "B", "manager", "speedupA", "speedupB", "pair", "fairness"
    );
    for cell in &cells {
        println!(
            "{:<10} {:<10} {:<8} {:>9} {:>9} {:>9} {:>9.3}",
            cell.a,
            cell.b,
            cell.outcome.manager.to_string(),
            pct(cell.speedup_a()),
            pct(cell.speedup_b()),
            pct(cell.pair_speedup()),
            cell.outcome.fairness,
        );
    }
}
