//! Extension study: CPU/DRAM budget split (Sarood et al., CLUSTER '13).
//!
//! When the cluster budget must cover packages *and* DRAM, how the split is
//! chosen matters. Three static reservations are compared on a single
//! 10-socket cluster running GMM under DPS:
//!
//! * **TDP reservation** — every socket's DRAM is reserved at its 36 W TDP;
//!   packages divide what remains. Safe, wasteful: DRAM never draws TDP.
//! * **Naive reservation** — DRAM sized for a "typical" package load plus
//!   margin. Under-reserves the workload's hot phases and throttles memory
//!   bandwidth exactly when the application needs it.
//! * **Profiled reservation** — DRAM sized for the workload's *peak*
//!   coupled demand plus a small margin (Sarood's profile-driven split);
//!   packages get the reclaimed Watts without memory throttling.
//!
//! Expected shape (Sarood's result): the profiled split wins, the naive
//! one loses — "using the same peak power limit for all \[subsystems\] leads
//! to sub-optimal application performance", but the split must follow the
//! measured subsystem demand.

use dps_core::manager::PowerManager;
use dps_experiments::{banner, config_from_env, pct};
use dps_rapl::dram::{ddr4_spec, DramModel};
use dps_rapl::{DomainBank, NoiseModel, PowerInterface};
use dps_sim_core::rng::RngStream;
use dps_workloads::{build_program, catalog, RunningWorkload};

/// Runs GMM on a 10-socket cluster where DRAM is reserved at `dram_cap`
/// Watts per socket and the remaining budget feeds the packages under DPS.
/// Returns the run duration in seconds.
fn run_with_reservation(dram_cap: f64, total_budget_per_socket: f64, seed: u64) -> f64 {
    let config = config_from_env();
    let sockets = 10;
    let model = DramModel::default();
    let pkg_budget = (total_budget_per_socket - dram_cap) * sockets as f64;

    let spec = catalog::find("GMM").unwrap();
    let program = build_program(spec, &config.sim.perf, seed);
    let mut run = RunningWorkload::once(program.clone(), config.sim.perf);
    let variants: Vec<_> = (0..sockets)
        .map(|s| {
            dps_workloads::generator::socket_variant(
                &program,
                config.sim.domain_spec.tdp,
                s,
                &RngStream::new(seed, "dram-variants"),
            )
        })
        .collect();

    let rng = RngStream::new(seed, "dram-exp");
    let mut pkg_bank = DomainBank::homogeneous(
        sockets,
        config.sim.domain_spec,
        NoiseModel::None,
        &rng.child("pkg"),
    );
    let mut dram_bank =
        DomainBank::homogeneous(sockets, ddr4_spec(), NoiseModel::None, &rng.child("dram"));
    for u in 0..sockets {
        dram_bank.set_cap(u, dram_cap);
    }

    let mut manager: Box<dyn PowerManager> = Box::new(dps_core::DpsManager::new(
        sockets,
        pkg_budget,
        config.limits(),
        config.dps,
        rng.child("mgr"),
    ));
    let mut caps = vec![pkg_budget / sockets as f64; sockets];
    for (u, &c) in caps.iter().enumerate() {
        pkg_bank.set_cap(u, c);
    }

    let mut steps = 0u64;
    while !run.is_done() && steps < 100_000 {
        let pos = run.position();
        let pkg_demands: Vec<f64> = variants.iter().map(|v| v.demand_at(pos)).collect();
        let dram_demands: Vec<f64> = pkg_demands.iter().map(|&d| model.demand(d)).collect();

        let pkg_power = pkg_bank.step_all(&pkg_demands, 1.0);
        let dram_power = dram_bank.step_all(&dram_demands, 1.0);

        // Socket progress: package grant sets the compute rate; DRAM
        // capping multiplies in the memory-bandwidth throttle. The job is
        // gated by its slowest socket.
        let mut rate: f64 = 1.0;
        for u in 0..sockets {
            let compute = config.sim.perf.rate(pkg_demands[u], pkg_power[u]);
            let memory = model.throttle_factor(dram_demands[u], dram_power[u]);
            rate = rate.min(compute * memory);
        }
        run.advance_with_rate(rate, 1.0);

        let measured: Vec<f64> = (0..sockets).map(|u| pkg_bank.read_power(u)).collect();
        manager.assign_caps(&measured, &mut caps, 1.0);
        for (u, &c) in caps.iter().enumerate() {
            pkg_bank.set_cap(u, c);
        }
        steps += 1;
    }
    run.run_durations().first().copied().unwrap_or(f64::NAN)
}

fn main() {
    let config = config_from_env();
    banner("CPU/DRAM budget split (Sarood et al. extension)", &config);

    let model = DramModel::default();
    // Combined per-socket budget: 66.7 % of (package + DRAM) TDP.
    let per_socket = (config.sim.domain_spec.tdp + ddr4_spec().tdp) * 2.0 / 3.0;
    let tdp_reservation = ddr4_spec().tdp;
    // A naive anchor: DRAM sized for a "typical" (average-budget) package
    // load — it under-reserves for the workload's hot phases.
    let naive = model.informed_reservation(per_socket - 20.0, 0.15);
    // Sarood's approach: profile the workload and reserve its *peak* DRAM
    // demand plus a small margin.
    let profiled = model.informed_reservation(config.sim.domain_spec.tdp, 0.05);

    println!(
        "combined budget {per_socket:.0} W/socket; DRAM TDP {tdp_reservation:.0} W, \
         naive anchor {naive:.1} W, profiled peak {profiled:.1} W\n"
    );

    let mut table = dps_metrics::Table::new(vec![
        "reservation".into(),
        "DRAM cap (W)".into(),
        "pkg budget (W/socket)".into(),
        "GMM duration (s)".into(),
        "vs TDP reservation".into(),
    ]);
    let base = run_with_reservation(tdp_reservation, per_socket, config.seed);
    for (label, cap) in [
        ("DRAM TDP (safe)", tdp_reservation),
        ("naive (typical-load anchor)", naive),
        ("profiled (workload peak +5%)", profiled),
    ] {
        let duration = run_with_reservation(cap, per_socket, config.seed);
        table.row(vec![
            label.into(),
            format!("{cap:.1}"),
            format!("{:.1}", per_socket - cap),
            format!("{duration:.1}"),
            pct(base / duration),
        ]);
    }
    println!("{}", table.render());
    println!("Expected shape (Sarood et al.): the profiled split reclaims the DRAM");
    println!("over-reservation without throttling memory and wins; the naive");
    println!("typical-load anchor under-reserves, throttles every hot phase, and");
    println!("loses — the split must be informed by the actual subsystem demand.");
}
