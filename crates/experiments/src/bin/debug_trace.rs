//! Diagnostic: per-cycle trace of one pair under one manager.
//!
//! Prints cluster-mean demand/power/cap and priority counts so cap dynamics
//! can be inspected. Usage:
//!
//! ```text
//! debug_trace [workload_a] [workload_b] [manager] [seconds]
//! ```

use dps_cluster::ClusterSim;
use dps_core::manager::ManagerKind;
use dps_experiments::config_from_env;
use dps_sim_core::rng::RngStream;
use dps_workloads::{build_program, catalog};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let name_a = args.get(1).map(String::as_str).unwrap_or("GMM");
    let name_b = args.get(2).map(String::as_str).unwrap_or("EP");
    let manager_name = args.get(3).map(String::as_str).unwrap_or("DPS");
    let seconds: u64 = args.get(4).and_then(|s| s.parse().ok()).unwrap_or(300);

    let config = config_from_env();
    let kind = match manager_name.to_ascii_lowercase().as_str() {
        "constant" => ManagerKind::Constant,
        "slurm" => ManagerKind::Slurm,
        "oracle" => ManagerKind::Oracle,
        _ => ManagerKind::Dps,
    };

    let spec_a = catalog::find(name_a).expect("workload a");
    let spec_b = catalog::find(name_b).expect("workload b");
    let pair_rng = RngStream::new(config.seed, &format!("pair/{}+{}", name_a, name_b));
    let program_a = build_program(spec_a, &config.sim.perf, 1001);
    let program_b = build_program(spec_b, &config.sim.perf, 1002);

    let manager = config.build_manager(kind);
    let mut sim = ClusterSim::new(
        config.sim.clone(),
        vec![program_a, program_b],
        manager,
        &pair_rng.child("sim"),
    );
    sim.enable_logging();

    println!("# t  dA  pA  cA  hiA | dB  pB  cB  hiB | sum(caps)");
    for t in 0..seconds {
        sim.cycle();
        let rec = sim.log().records().last().unwrap().clone();
        let topo = sim.config().topology;
        let half = topo.units_per_cluster();
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        let da = mean(&rec.demand[..half]);
        let db = mean(&rec.demand[half..]);
        let pa = mean(&rec.power[..half]);
        let pb = mean(&rec.power[half..]);
        let ca = mean(&rec.caps[..half]);
        let cb = mean(&rec.caps[half..]);
        let (hia, hib) = if rec.priority.is_empty() {
            (0, 0)
        } else {
            (
                rec.priority[..half].iter().filter(|&&p| p).count(),
                rec.priority[half..].iter().filter(|&&p| p).count(),
            )
        };
        if t % 5 == 0 {
            println!(
                "{t:4}  {da:5.1} {pa:5.1} {ca:5.1} {hia:2} | {db:5.1} {pb:5.1} {cb:5.1} {hib:2} | {:6.0}",
                rec.caps.iter().sum::<f64>()
            );
        }
    }
    println!(
        "# satisfaction A={:.3} B={:.3} fairness={:.3}",
        sim.satisfaction(0),
        sim.satisfaction(1),
        sim.fairness(0, 1)
    );
}
