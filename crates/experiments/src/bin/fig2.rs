//! Figure 2: power phases of LDA, Bayes and LR.
//!
//! Prints each application's uncapped demand trace (downsampled) plus the
//! three §3.1 observations quantified: phase-duration diversity, peak-power
//! diversity, and first-derivative diversity.

use dps_experiments::config_from_env;
use dps_sim_core::signal;
use dps_workloads::{build_program, catalog};

fn sparkline(values: &[f64], lo: f64, hi: f64) -> String {
    const GLYPHS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    values
        .iter()
        .map(|&v| {
            let f = ((v - lo) / (hi - lo)).clamp(0.0, 1.0);
            GLYPHS[(f * 7.0).round() as usize]
        })
        .collect()
}

fn main() {
    let config = config_from_env();
    println!("=== Figure 2: power phases for different applications ===\n");

    for name in ["LDA", "Bayes", "LR"] {
        let spec = catalog::find(name).unwrap();
        let program = build_program(spec, &config.sim.perf, config.seed);
        let trace = program.sample(1.0);
        let values = trace.values();

        println!(
            "--- {name}: {:.0} s uncapped, peak {:.0} W, {:.1}% above 110 W (table: {:.1}%)",
            program.total_work(),
            program.peak_demand(),
            100.0 * program.fraction_above(110.0),
            100.0 * spec.frac_above_110,
        );

        // Downsampled trace, 4-second buckets, 75 chars per line chunk.
        let ds: Vec<f64> = values
            .chunks(4)
            .map(|c| c.iter().sum::<f64>() / c.len() as f64)
            .collect();
        for chunk in ds.chunks(75) {
            println!("  {}", sparkline(chunk, 0.0, 165.0));
        }

        // Observation 1: phase-duration diversity.
        let high_phases: Vec<f64> = program
            .phases()
            .iter()
            .filter(|p| p.shape.peak() > 110.0)
            .map(|p| p.duration)
            .collect();
        let longest = high_phases.iter().cloned().fold(0.0, f64::max);
        let shortest = high_phases.iter().cloned().fold(f64::INFINITY, f64::min);
        println!(
            "  high-power phases: {} (durations {shortest:.1}-{longest:.1} s)",
            high_phases.len()
        );

        // Observation 2: peak diversity.
        let peaks: Vec<f64> = program
            .phases()
            .iter()
            .filter(|p| p.shape.peak() > 110.0)
            .map(|p| p.shape.peak())
            .collect();
        let peak_lo = peaks.iter().cloned().fold(f64::INFINITY, f64::min);
        let peak_hi = peaks.iter().cloned().fold(0.0, f64::max);
        println!("  phase peak power range: {peak_lo:.0}-{peak_hi:.0} W");

        // Observation 3: derivative diversity over the sampled trace.
        let derivs: Vec<f64> = values.windows(2).map(|w| w[1] - w[0]).collect();
        let max_rise = derivs.iter().cloned().fold(0.0, f64::max);
        let max_fall = derivs.iter().cloned().fold(0.0, f64::min);
        println!("  first derivative range: {max_fall:+.1} to {max_rise:+.1} W/s");

        // Prominent-peak frequency (what DPS's priority module counts).
        let pp = signal::count_prominent_peaks(values, 30.0);
        println!(
            "  prominent peaks (30 W prominence): {pp} over {:.0} s ({:.2} per 20 s window)",
            program.total_work(),
            pp as f64 * 20.0 / program.total_work()
        );

        // The same trace through the measured-trace phase segmenter (the
        // §3.1 analysis a deployment would run on RAPL logs).
        if let Some(r) = dps_sim_core::phases::report(values, 1.0, 30.0) {
            println!(
                "  segmented phases: {} (durations {:.0}-{:.0} s, mean {:.0} s; peaks \
                 {:.0}-{:.0} W; steps {:+.0}..{:+.0} W/s)\n",
                r.phase_count,
                r.duration_min,
                r.duration_max,
                r.duration_mean,
                r.peak_min,
                r.peak_max,
                r.max_fall,
                r.max_rise,
            );
        }
    }

    println!("Expected shape (paper §3.1): LDA has long phases with fast rises and");
    println!("slow decays; Bayes has medium phases with diverse peaks; LR has many");
    println!("phases shorter than 10 s (high-frequency power changes).");
}
