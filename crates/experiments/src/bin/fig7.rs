//! Figure 7: fairness of the two high-utility workload groups.
//!
//! Re-runs the Spark high-utility and Spark×NPB grids under SLURM and DPS
//! and summarises the distribution of per-pair fairness (Eq. 2) — the
//! paper's box plot.
//!
//! Paper shape: DPS mean fairness ≈ 0.97 (high utility) and ≈ 0.96
//! (Spark×NPB); SLURM ≈ 0.75 and ≈ 0.71; DPS is higher for every workload.

use dps_core::manager::ManagerKind;
use dps_experiments::{banner, config_from_env, grids, run_grid, threads_from_env, CellResult};
use dps_metrics::DistributionSummary;
use dps_sim_core::stats;

fn summarise(title: &str, cells: &[CellResult]) {
    println!("--- {title}");
    let mut table = dps_metrics::Table::new(vec![
        "Manager".into(),
        "mean".into(),
        "min".into(),
        "q1".into(),
        "median".into(),
        "q3".into(),
        "max".into(),
    ]);
    let mut means = Vec::new();
    for kind in [ManagerKind::Slurm, ManagerKind::Dps] {
        let fairness: Vec<f64> = cells
            .iter()
            .filter(|c| c.outcome.manager == kind)
            .map(|c| c.outcome.fairness)
            .collect();
        let d = DistributionSummary::from_values(&fairness).expect("non-empty");
        table.row_f64(
            &kind.to_string(),
            &[d.mean, d.min, d.q1, d.median, d.q3, d.max],
            3,
        );
        means.push((kind, d.mean));
    }
    println!("{}", table.render());

    // Per-pair comparison: fraction of pairs where DPS is fairer.
    let mut dps_by_pair = std::collections::BTreeMap::new();
    let mut slurm_by_pair = std::collections::BTreeMap::new();
    for c in cells {
        let key = (c.a.clone(), c.b.clone());
        match c.outcome.manager {
            ManagerKind::Dps => {
                dps_by_pair.insert(key, c.outcome.fairness);
            }
            ManagerKind::Slurm => {
                slurm_by_pair.insert(key, c.outcome.fairness);
            }
            _ => {}
        }
    }
    let mut wins = 0;
    let mut total = 0;
    let mut gains = Vec::new();
    for (key, &d) in &dps_by_pair {
        if let Some(&s) = slurm_by_pair.get(key) {
            total += 1;
            if d >= s {
                wins += 1;
            }
            if s > 0.0 {
                gains.push(d / s - 1.0);
            }
        }
    }
    println!(
        "DPS fairness ≥ SLURM on {wins}/{total} pairs; relative gain {:.1}% to {:.1}% (mean {:.1}%)\n",
        100.0 * stats::min(&gains).unwrap_or(f64::NAN),
        100.0 * stats::max(&gains).unwrap_or(f64::NAN),
        100.0 * stats::mean(&gains).unwrap_or(f64::NAN),
    );
}

/// §6.4's closing observation: "a general positive correlation between
/// fairness and harmonic mean performance" — Pearson r over all (pair,
/// manager) points of a grid.
fn correlation(cells: &[CellResult]) -> Option<f64> {
    let mut fairness = Vec::new();
    let mut speedup = Vec::new();
    for c in cells {
        let s = c.pair_speedup();
        if s.is_finite() {
            fairness.push(c.outcome.fairness);
            speedup.push(s);
        }
    }
    stats::pearson(&fairness, &speedup)
}

fn main() {
    let config = config_from_env();
    banner("Figure 7: fairness distributions", &config);
    let managers = [ManagerKind::Slurm, ManagerKind::Dps];
    let threads = threads_from_env();

    let high = run_grid(&grids::spark_high_utility(), &managers, &config, threads);
    summarise("Spark high utility (49 pairs)", &high);

    let npb = run_grid(&grids::spark_npb(), &managers, &config, threads);
    summarise("Spark x NPB (56 pairs)", &npb);

    println!(
        "fairness ↔ pair-hmean-performance Pearson r: high-utility {:+.3}, Spark×NPB {:+.3}",
        correlation(&high).unwrap_or(f64::NAN),
        correlation(&npb).unwrap_or(f64::NAN),
    );

    println!("Expected shape (paper Fig. 7 / §6.4): DPS ≈ 0.96-0.97 mean fairness,");
    println!("SLURM ≈ 0.71-0.75; DPS is at least as fair on essentially every pair,");
    println!("and fairness correlates positively with harmonic-mean performance.");
}
