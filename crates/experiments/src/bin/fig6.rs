//! Figure 6: Spark × NPB group.
//!
//! Every mid/high Spark workload paired with every NPB workload (56
//! pairs). The value plotted is the harmonic mean of the two paired
//! workloads' speedups over constant allocation, grouped (a) by the Spark
//! workload and (b) by the NPB workload.
//!
//! Paper shape: DPS improves every group; SLURM decreases all Spark groups
//! except Linear and LR, and all NPB groups except LU; DPS beats SLURM on
//! every pair, 1.7–21.3 %, mean 8.0 %.

use dps_core::manager::ManagerKind;
use dps_experiments::{
    banner, config_from_env, grids, group_by_a, group_by_b, pct, render_speedup_bars,
    render_speedup_table, run_grid, threads_from_env,
};

fn main() {
    let config = config_from_env();
    banner("Figure 6: Spark x NPB (56 pairs)", &config);

    let pairs = grids::spark_npb();
    let managers = [ManagerKind::Slurm, ManagerKind::Dps];
    let cells = run_grid(&pairs, &managers, &config, threads_from_env());

    let by_spark = group_by_a(&cells, true);
    println!("(a) pair hmean speedup grouped by Spark workload:\n");
    println!("{}", render_speedup_table(&by_spark, &managers));
    println!("{}", render_speedup_bars(&by_spark, &managers));

    let by_npb = group_by_b(&cells, true);
    println!("(b) pair hmean speedup grouped by NPB workload:\n");
    println!("{}", render_speedup_table(&by_npb, &managers));

    // Per-pair DPS-over-SLURM margins (paper: min 1.7%, max 21.3%, mean 8.0%).
    let mut margins = Vec::new();
    for i in 0..pairs.len() {
        let slurm = &cells[i * managers.len()];
        let dps = &cells[i * managers.len() + 1];
        debug_assert_eq!(slurm.outcome.manager, ManagerKind::Slurm);
        debug_assert_eq!(dps.outcome.manager, ManagerKind::Dps);
        let (s, d) = (slurm.pair_speedup(), dps.pair_speedup());
        if s.is_finite() && d.is_finite() {
            margins.push((d / s, slurm.a.clone(), slurm.b.clone()));
        }
    }
    margins.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
    let mean = margins.iter().map(|m| m.0).sum::<f64>() / margins.len() as f64;
    let (min, max) = (margins.first().unwrap(), margins.last().unwrap());
    println!(
        "DPS over SLURM per pair: min {} ({}+{}), max {} ({}+{}), mean {}",
        pct(min.0),
        min.1,
        min.2,
        pct(max.0),
        max.1,
        max.2,
        pct(mean)
    );
    let dps_wins = margins.iter().filter(|m| m.0 > 1.0).count();
    println!(
        "DPS beats SLURM on {dps_wins}/{} pairs (paper: all pairs)",
        margins.len()
    );
    println!();
    println!("Expected shape (paper Fig. 6): DPS positive on all groups; SLURM");
    println!("negative on most (NPB gains cannot offset Spark starvation in hmean);");
    println!("SLURM fares best with short-duration NPB workloads (FT, MG).");
}
