//! Cross-layer chaos: graceful degradation under escalating correlated
//! incidents.
//!
//! Every run faces the same seeded workload pair (one hot cluster, one
//! cool) on a 2×2×2 framed-plane partition while a [`ChaosSchedule`] opens
//! correlated incident windows — rack-scoped sensor dropouts, frame loss on
//! the rack's control links, node churn — on top of a [`BudgetSchedule`]
//! brownout. Intensity escalates in four steps:
//!
//! * **0 — calm**: no chaos, constant budget (the baseline every manager
//!   should match).
//! * **1 — brownout**: a 25 % budget ramp-down mid-run, nothing else.
//! * **2 — incident**: the brownout plus one correlated window (rack-1
//!   sensor dropout + 35 % frame loss + a 10 % budget haircut).
//! * **3 — pile-up**: two overlapping windows on different racks, one with
//!   node churn, over a deeper 35 % brownout.
//!
//! For Constant, SLURM and guarded DPS we report satisfaction (the SLO
//! proxy), energy, the worst per-cycle applied-caps margin against the
//! *effective* budget, invariant violations (must stay zero), and how many
//! cycles the operating-mode ladder spent off `Normal`. The headline is the
//! shape: satisfaction degrades smoothly with intensity, the budget margin
//! never goes positive, and the ladder descends during incidents and
//! re-ascends after the hysteresis window.
//!
//! `DPS_QUICK=1` shortens the run for CI smoke coverage.

use dps_cluster::{
    BudgetSchedule, ChaosSchedule, ChaosWindow, ClusterSim, ExperimentConfig, SimConfig,
};
use dps_core::manager::{ManagerKind, PowerManager, UnitLimits};
use dps_core::{DpsManager, GuardConfig, OperatingMode};
use dps_ctrl::FramedConfig;
use dps_experiments::{banner, config_from_env};
use dps_rapl::{SensorFault, Topology};
use dps_sim_core::RngStream;
use dps_workloads::{DemandProgram, Phase};

/// One hot cluster (throttled by the budget) and one cool one.
fn programs(duration: f64) -> Vec<DemandProgram> {
    vec![
        DemandProgram::new(vec![Phase::constant(duration, 150.0)]),
        DemandProgram::new(vec![Phase::constant(duration, 70.0)]),
    ]
}

/// The chaos and budget schedules for one intensity step. Windows sit in
/// the middle of the run so the ladder has room to descend and recover.
fn schedules(intensity: u32, t_end: f64) -> (BudgetSchedule, ChaosSchedule) {
    let (a, b, c) = (0.25 * t_end, 0.45 * t_end, 0.65 * t_end);
    match intensity {
        0 => (BudgetSchedule::constant(), ChaosSchedule::none()),
        1 => (
            BudgetSchedule::brownout(a, 0.75, 10.0, b - a),
            ChaosSchedule::none(),
        ),
        2 => (
            BudgetSchedule::brownout(a, 0.75, 10.0, b - a),
            ChaosSchedule::new(vec![ChaosWindow::new(1, a, b)
                .with_sensor(SensorFault::Dropout)
                .with_frame_loss(0.35)
                .with_budget_factor(0.9)]),
        ),
        _ => (
            BudgetSchedule::brownout(a, 0.65, 10.0, c - a),
            ChaosSchedule::new(vec![
                ChaosWindow::new(1, a, b)
                    .with_sensor(SensorFault::Dropout)
                    .with_frame_loss(0.35)
                    .with_budget_factor(0.9),
                ChaosWindow::new(0, 0.5 * (a + b), c)
                    .with_sensor(SensorFault::SpikeBurst {
                        magnitude: 400.0,
                        prob: 0.3,
                    })
                    .with_frame_loss(0.2)
                    .with_churn(),
            ]),
        ),
    }
}

fn build_manager(
    kind: ManagerKind,
    cfg: &SimConfig,
    config: &ExperimentConfig,
) -> Box<dyn PowerManager> {
    let n = cfg.topology.total_units();
    let budget = cfg.total_budget();
    let limits = UnitLimits {
        min_cap: cfg.domain_spec.min_cap,
        max_cap: cfg.domain_spec.tdp,
    };
    let rng = RngStream::new(config.seed, &format!("manager/{kind}"));
    match kind {
        // The chaos runs pair DPS with its telemetry guard — the unguarded
        // controller is the sensorfaults experiment's subject, not this one's.
        ManagerKind::Dps => Box::new(DpsManager::with_guard(
            n,
            budget,
            limits,
            config.dps,
            GuardConfig::default(),
            rng,
        )),
        other => {
            let mut cfg = cfg.clone();
            cfg.topology = Topology::new(2, 2, 2);
            ExperimentConfig {
                sim: cfg,
                ..config.clone()
            }
            .build_manager(other)
        }
    }
}

struct ChaosOutcome {
    satisfaction_hot: f64,
    satisfaction_cool: f64,
    joules: f64,
    worst_margin: f64,
    violations: u64,
    off_normal_cycles: u64,
    safe_cycles: u64,
}

fn run(kind: ManagerKind, intensity: u32, config: &ExperimentConfig, cycles: u64) -> ChaosOutcome {
    let mut sim_cfg = config.sim.clone();
    sim_cfg.topology = Topology::new(2, 2, 2);
    sim_cfg.control_plane = dps_cluster::ControlPlaneMode::Framed(FramedConfig::default());
    let t_end = cycles as f64 * sim_cfg.period;
    let (budget, chaos) = schedules(intensity, t_end);
    sim_cfg.budget = budget;
    sim_cfg.chaos = chaos;
    sim_cfg.validate().expect("valid chaos config");

    let manager = build_manager(kind, &sim_cfg, config);
    let period = sim_cfg.period;
    let mut sim = ClusterSim::new(
        sim_cfg,
        programs(t_end),
        manager,
        &RngStream::new(config.seed, "chaos-experiment"),
    );
    sim.enable_logging();

    // Wire-quantization slack on the requested-caps sum (one deciwatt per
    // unit, matching the invariant monitor's framed-plane tolerance).
    let slack = sim.caps().len() as f64 * 0.05 + 1e-6;
    let mut worst = f64::NEG_INFINITY;
    let mut off_normal = 0;
    let mut safe = 0;
    for _ in 0..cycles {
        sim.cycle();
        // The hard contract is on the caps the manager *requested* against
        // the budget in force this cycle — a brownout the caps ignore would
        // hide behind the base budget. Applied caps may transiently exceed
        // it while cap-update frames are being dropped; that lag is the
        // reported margin column, policed by the monitor's graced check.
        let requested_sum: f64 = sim.caps().iter().sum();
        assert!(
            requested_sum <= sim.current_budget() + slack,
            "requested caps {requested_sum:.2} W exceed effective budget {:.2} W",
            sim.current_budget()
        );
        let applied_sum: f64 = sim.applied_caps().iter().sum();
        worst = worst.max(applied_sum - sim.current_budget());
        match sim.operating_mode() {
            OperatingMode::Normal => {}
            OperatingMode::Degraded => off_normal += 1,
            OperatingMode::SafeMode => {
                off_normal += 1;
                safe += 1;
            }
        }
    }

    // Energy from the measured-power log; dropout cycles report NaN for the
    // dark units, so count only finite samples (a small undercount during
    // the incident window, identical across managers).
    let n = sim.caps().len();
    let joules: f64 = (0..n)
        .map(|u| {
            sim.log()
                .power_series(u)
                .iter()
                .filter(|p| p.is_finite())
                .sum::<f64>()
                * period
        })
        .sum();
    ChaosOutcome {
        satisfaction_hot: sim.satisfaction(0),
        satisfaction_cool: sim.satisfaction(1),
        joules,
        worst_margin: worst,
        violations: sim.invariant_violations(),
        off_normal_cycles: off_normal,
        safe_cycles: safe,
    }
}

fn main() {
    let config = config_from_env();
    banner(
        "Cross-layer chaos: escalating correlated incidents (2x2x2, framed)",
        &config,
    );

    let cycles: u64 = if std::env::var("DPS_QUICK").is_ok() {
        240
    } else {
        1_200
    };
    let managers = [ManagerKind::Constant, ManagerKind::Slurm, ManagerKind::Dps];

    println!(
        "{:<12} {:>9} {:>10} {:>10} {:>10} {:>10} {:>6} {:>9} {:>6}",
        "intensity",
        "manager",
        "sat(hot)",
        "sat(cool)",
        "kJ",
        "margin W",
        "viol",
        "degraded",
        "safe"
    );
    for intensity in 0..=3 {
        for kind in managers {
            let label = if kind == ManagerKind::Dps {
                "DPS+guard".to_string()
            } else {
                kind.to_string()
            };
            let r = run(kind, intensity, &config, cycles);
            println!(
                "{:<12} {:>9} {:>10.4} {:>10.4} {:>10.1} {:>+10.2} {:>6} {:>9} {:>6}",
                intensity,
                label,
                r.satisfaction_hot,
                r.satisfaction_cool,
                r.joules / 1e3,
                r.worst_margin,
                r.violations,
                r.off_normal_cycles,
                r.safe_cycles
            );
            // The guarded manager must come through every incident clean.
            // Unguarded baselines are *allowed* to trip the monitor — NaN
            // telemetry reaching a naive allocator is exactly the failure
            // the guard exists to absorb — so their count is reported, not
            // asserted.
            if kind == ManagerKind::Dps {
                assert_eq!(
                    r.violations, 0,
                    "DPS+guard at intensity {intensity}: the safety monitor reported violations"
                );
            }
        }
    }

    println!();
    println!("Expected shape: satisfaction falls smoothly as intensity rises — no cliff.");
    println!("Requested caps respect the *effective* budget every single cycle (asserted");
    println!("inline); the applied-caps margin may spike for a cycle or two when a budget");
    println!("step lands while cap frames are being dropped — the monitor's graced check");
    println!("polices that lag. Guarded DPS keeps violations at zero throughout (asserted);");
    println!("unguarded baselines may trip the per-cap bounds check when NaN telemetry");
    println!("reaches their allocator, and the mode ladder absorbs it in Degraded.");
    println!("The mode ladder spends cycles in Degraded (frozen last-known-good caps)");
    println!("while a rack is dark and re-ascends after the hysteresis window; SafeMode");
    println!("only appears if telemetry confidence collapses entirely.");
}
