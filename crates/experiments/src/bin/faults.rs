//! Control-plane fault injection: DPS under a degraded control plane.
//!
//! The paper's evaluation assumes the server↔client messaging always
//! works. This experiment runs the same DPS-managed workload pair under
//! three control planes — quantized (ideal), framed with a clean link, and
//! framed with drops, corruption bursts, a node crash and a partition —
//! and reports what the faults cost: delivery/retry counters, staleness
//! events, and the satisfaction each cluster still achieved. The headline
//! check is the budget-safety invariant: at no cycle does the sum of caps
//! applied on controller-live nodes exceed the cluster budget.
//!
//! `DPS_QUICK=1` shortens the run for CI smoke coverage.

use dps_cluster::{ClusterSim, ControlPlaneMode, ExperimentConfig};
use dps_core::manager::ManagerKind;
use dps_ctrl::{wire_slack, FaultEvent, FramedConfig};
use dps_experiments::{banner, config_from_env};
use dps_rapl::Topology;
use dps_sim_core::RngStream;
use dps_workloads::{DemandProgram, Phase};

/// One cluster runs hot (throttled by the budget), the other cool.
fn programs(duration: f64) -> Vec<DemandProgram> {
    vec![
        DemandProgram::new(vec![Phase::constant(duration, 150.0)]),
        DemandProgram::new(vec![Phase::constant(duration, 60.0)]),
    ]
}

/// The fault script, scaled to the run length.
fn faulty_config(t_end: f64) -> FramedConfig {
    let mut config = FramedConfig::default();
    config.link.drop_prob = 0.05;
    config.link.jitter = 10e-6;
    config.faults.push(FaultEvent::Crash {
        node: 1,
        at: 0.15 * t_end,
        until: 0.45 * t_end,
    });
    config.faults.push(FaultEvent::Partition {
        node: 2,
        at: 0.55 * t_end,
        until: 0.70 * t_end,
    });
    config.faults.push(FaultEvent::CorruptBurst {
        node: 0,
        at: 0.75 * t_end,
        until: 0.90 * t_end,
        prob: 0.2,
    });
    config
}

fn run(label: &str, mode: ControlPlaneMode, config: &ExperimentConfig, cycles: u64) {
    // Payload corruption can forge valid-looking SetCap frames that no
    // controller can pre-authorize (the 3-byte frames carry no MAC), so
    // the hard per-cycle budget assert only applies to corruption-free
    // configurations; corrupt runs report the worst transient margin.
    let corrupting = match &mode {
        ControlPlaneMode::Framed(f) => {
            f.link.corrupt_prob > 0.0
                || f.faults
                    .events()
                    .iter()
                    .any(|e| matches!(e, FaultEvent::CorruptBurst { .. }))
        }
        _ => false,
    };
    let mut sim_cfg = config.sim.clone();
    sim_cfg.topology = Topology::new(2, 2, 2);
    sim_cfg.control_plane = mode;
    let duration = cycles as f64 * sim_cfg.period;
    let mut sim = ClusterSim::new(
        sim_cfg.clone(),
        programs(duration),
        {
            let mut cfg = config.clone();
            cfg.sim = sim_cfg.clone();
            cfg.build_manager(ManagerKind::Dps)
        },
        &RngStream::new(config.seed, "faults-experiment"),
    );

    let budget = sim_cfg.total_budget();
    let n = sim_cfg.topology.total_units();
    let mut budget_ok = true;
    let mut worst = 0.0f64;
    for _ in 0..cycles {
        sim.cycle();
        if let Some(plane) = sim.control_plane() {
            let live_sum = plane.live_applied_sum();
            worst = worst.max(live_sum - budget);
            if live_sum > budget + wire_slack(n) {
                budget_ok = false;
            }
        }
    }

    println!("--- {label} ---");
    println!(
        "satisfaction: hot {:.4} cool {:.4} | fairness {:.4}",
        sim.satisfaction(0),
        sim.satisfaction(1),
        sim.fairness(0, 1)
    );
    if let Some(stats) = sim.control_plane_stats() {
        println!(
            "frames: sent {} delivered {} ({:.1}%) dropped {} corrupted {} undecodable {}",
            stats.frames_sent,
            stats.frames_delivered,
            100.0 * stats.delivery_rate(),
            stats.frames_dropped,
            stats.frames_corrupted,
            stats.frames_undecodable,
        );
        println!(
            "control: retries {} gather misses {} stale {} readmitted {} raises deferred {}",
            stats.retries,
            stats.gather_misses,
            stats.stale_transitions,
            stats.readmissions,
            stats.raises_deferred,
        );
        if corrupting {
            println!(
                "budget: worst transient applied-sum margin {worst:+.2} W \
                 (forged caps possible under corruption; repaired by re-sends)"
            );
        } else {
            println!("budget: live applied sum stayed <= budget (worst margin {worst:+.2} W)");
            assert!(budget_ok, "budget-safety invariant violated");
            assert_eq!(stats.worst_budget_excess, 0.0, "believed-cap excess");
        }
    } else {
        println!("(ideal control plane: no transport statistics)");
    }
    println!();
}

fn main() {
    let config = config_from_env();
    banner("Control-plane fault injection (DPS, 2x2x2)", &config);

    let cycles: u64 = if std::env::var("DPS_QUICK").is_ok() {
        300
    } else {
        2_000
    };
    let t_end = cycles as f64;

    run(
        "quantized (ideal)",
        ControlPlaneMode::Quantized,
        &config,
        cycles,
    );
    run(
        "framed, clean link",
        ControlPlaneMode::Framed(FramedConfig::default()),
        &config,
        cycles,
    );
    run(
        "framed, 5% drop + crash + partition + corruption",
        ControlPlaneMode::Framed(faulty_config(t_end)),
        &config,
        cycles,
    );

    println!("Expected shape: the clean framed run matches quantized exactly; the");
    println!("faulty run shifts satisfaction while staleness reclaims/readmits budget.");
    println!("Drops, crashes and partitions never break the applied-cap budget; only");
    println!("forged caps from payload corruption can exceed it transiently, and the");
    println!("corrective re-sends pull those back within about a cycle.");
}
