//! Inspect, export, record, and diff `dps-obs` binary traces.
//!
//! ```text
//! trace_inspect summary <trace> [--kind <event>]   counters + histograms + cycle span
//! trace_inspect summary <trace> --count-by-kind    one line per event kind, schema order
//! trace_inspect jsonl   <trace> [--kind <event>]   decode to JSONL on stdout
//! trace_inspect diff    <a> <b>                    event-level comparison, exit 1 on drift
//! trace_inspect record  <scenario> <out>           re-record a pinned golden scenario
//! ```
//!
//! `--kind` narrows `summary` and `jsonl` to one event kind by its schema
//! name (`mode_change`, `budget_shock`, `invariant_violation`, ...) — the
//! fast way to pull the degradation-ladder story out of a chaos trace
//! without paging through every cap delta.
//!
//! `--count-by-kind` replaces the counter/histogram summary with a flat
//! per-kind census over the full schema vocabulary — the quick audit of
//! which events a trace actually contains (does this run have
//! `sleep_transition`s? did any `wake_done` land?) before reaching for a
//! filtered view.
//!
//! Scenarios are the pinned golden runs of
//! [`dps_experiments::scenarios::GoldenScenario`] (`paper_default`,
//! `sensor_fault`, `scheduler_churn`). `record` writes exactly the bytes
//! `tests/golden_trace.rs` expects, so a reviewed behaviour change is
//! regenerated with:
//!
//! ```text
//! cargo run --release --bin trace_inspect record sensor_fault tests/golden/sensor_fault.trace
//! ```
//!
//! `diff` is what to reach for when the golden test fails: it prints the
//! first diverging event with its neighbourhood on both sides instead of a
//! useless binary blob mismatch.

use dps_experiments::scenarios::GoldenScenario;
use dps_obs::codec::{decode, to_jsonl, Trace};
use dps_obs::{Event, ObsRegistry};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  trace_inspect summary <trace> [--kind <event> | --count-by-kind]\n  \
         trace_inspect jsonl <trace> [--kind <event>]\n  \
         trace_inspect diff <a> <b>\n  trace_inspect record <scenario> <out>\n\
         scenarios: {}",
        GoldenScenario::ALL
            .iter()
            .map(|s| s.name())
            .collect::<Vec<_>>()
            .join(", ")
    );
    ExitCode::from(2)
}

/// Validates an event-kind name against the trace schema and drops every
/// other kind from the trace. `dropped` is preserved: the ring's losses are
/// a property of the recording, not of the view.
fn filter_kind(trace: Trace, kind: &str) -> Result<Trace, String> {
    if !dps_obs::event::schema::EVENTS
        .iter()
        .any(|s| s.name == kind)
    {
        return Err(format!(
            "unknown event kind {kind:?}; one of: {}",
            dps_obs::event::schema::EVENTS
                .iter()
                .map(|s| s.name)
                .collect::<Vec<_>>()
                .join(", ")
        ));
    }
    Ok(Trace {
        events: trace
            .events
            .into_iter()
            .filter(|e| e.name() == kind)
            .collect(),
        dropped: trace.dropped,
    })
}

/// Parses an optional trailing `--kind <event>` pair.
fn kind_arg(args: &[String]) -> Result<Option<&str>, ()> {
    match args {
        [] => Ok(None),
        [flag, kind] if flag == "--kind" => Ok(Some(kind)),
        _ => Err(()),
    }
}

fn load(path: &str) -> Result<Trace, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("{path}: {e}"))?;
    decode(&bytes).map_err(|e| format!("{path}: {e}"))
}

fn cycle_span(events: &[Event]) -> Option<(u64, u64)> {
    let mut cycles = events.iter().map(|e| e.cycle());
    let first = cycles.next()?;
    let (lo, hi) = cycles.fold((first, first), |(lo, hi), c| (lo.min(c), hi.max(c)));
    Some((lo, hi))
}

fn summary(path: &str, kind: Option<&str>) -> Result<(), String> {
    let mut trace = load(path)?;
    if let Some(kind) = kind {
        trace = filter_kind(trace, kind)?;
        println!("{path} (kind = {kind})");
    } else {
        println!("{path}");
    }
    println!("  events                 {}", trace.events.len());
    println!("  dropped                {}", trace.dropped);
    if let Some((lo, hi)) = cycle_span(&trace.events) {
        println!("  cycles                 {lo}..={hi}");
    }
    let registry = ObsRegistry::from_events(&trace.events);
    print!("{}", registry.render(trace.dropped));
    Ok(())
}

/// The `--count-by-kind` census: one row per schema kind in schema order,
/// so two traces' vocabularies line up for visual diffing. Kinds the trace
/// never emitted print a `-` rather than `0` — "absent" reads differently
/// from "counted and found none of".
fn count_by_kind(path: &str) -> Result<(), String> {
    let trace = load(path)?;
    println!("{path}");
    println!("  events                 {}", trace.events.len());
    println!("  dropped                {}", trace.dropped);
    for spec in dps_obs::event::schema::EVENTS {
        let count = trace
            .events
            .iter()
            .filter(|e| e.name() == spec.name)
            .count();
        if count > 0 {
            println!("  {:<22} {count}", spec.name);
        } else {
            println!("  {:<22} -", spec.name);
        }
    }
    Ok(())
}

fn jsonl(path: &str, kind: Option<&str>) -> Result<(), String> {
    let mut trace = load(path)?;
    if let Some(kind) = kind {
        trace = filter_kind(trace, kind)?;
    }
    print!("{}", to_jsonl(&trace));
    Ok(())
}

fn diff(path_a: &str, path_b: &str) -> Result<bool, String> {
    let a = load(path_a)?;
    let b = load(path_b)?;
    if a.events == b.events && a.dropped == b.dropped {
        println!(
            "identical: {} events, {} dropped",
            a.events.len(),
            a.dropped
        );
        return Ok(true);
    }
    if a.dropped != b.dropped {
        println!("dropped: {} vs {}", a.dropped, b.dropped);
    }
    if a.events.len() != b.events.len() {
        println!("events: {} vs {}", a.events.len(), b.events.len());
    }
    if let Some(at) = (0..a.events.len().min(b.events.len()))
        .find(|&i| a.events[i] != b.events[i])
        .or_else(|| (a.events.len() != b.events.len()).then(|| a.events.len().min(b.events.len())))
    {
        println!("first divergence at event {at}:");
        let lo = at.saturating_sub(2);
        for (label, trace) in [(path_a, &a), (path_b, &b)] {
            println!("  {label}:");
            for i in lo..(at + 3).min(trace.events.len()) {
                let marker = if i == at { ">" } else { " " };
                println!("  {marker} [{i}] {:?}", trace.events[i]);
            }
            if trace.events.len() <= at {
                println!("  > [{at}] <end of trace>");
            }
        }
    }
    Ok(false)
}

fn record(name: &str, out: &str) -> Result<(), String> {
    let scenario = GoldenScenario::from_name(name)
        .ok_or_else(|| format!("unknown scenario {name:?} (see usage)"))?;
    let bytes = scenario.record();
    let trace = decode(&bytes).expect("fresh recording decodes");
    std::fs::write(out, &bytes).map_err(|e| format!("{out}: {e}"))?;
    println!(
        "{out}: {} bytes, {} events, {} dropped",
        bytes.len(),
        trace.events.len(),
        trace.dropped
    );
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let result = match args.get(1).map(String::as_str) {
        Some("summary") if args.len() == 4 && args[3] == "--count-by-kind" => {
            count_by_kind(&args[2]).map(|()| true)
        }
        Some("summary") if args.len() >= 3 => match kind_arg(&args[3..]) {
            Ok(kind) => summary(&args[2], kind).map(|()| true),
            Err(()) => return usage(),
        },
        Some("jsonl") if args.len() >= 3 => match kind_arg(&args[3..]) {
            Ok(kind) => jsonl(&args[2], kind).map(|()| true),
            Err(()) => return usage(),
        },
        Some("diff") if args.len() == 4 => diff(&args[2], &args[3]),
        Some("record") if args.len() == 4 => record(&args[2], &args[3]).map(|()| true),
        _ => return usage(),
    };
    match result {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("trace_inspect: {e}");
            ExitCode::FAILURE
        }
    }
}
