//! Inspect, export, record, and diff `dps-obs` binary traces.
//!
//! ```text
//! trace_inspect summary <trace> [--kind <event>]   counters + histograms + cycle span
//! trace_inspect summary <trace> --count-by-kind    one line per event kind, schema order
//! trace_inspect jsonl   <trace> [--kind <event>]   decode to JSONL on stdout
//! trace_inspect diff    <a> <b>                    event-level comparison, exit 1 on drift
//! trace_inspect tail    <dir> [n]                  last n events of a segment directory
//! trace_inspect merge   <dir> <out>                merge a segment directory into one trace
//! trace_inspect record  <scenario> <out>           re-record a pinned golden scenario
//! trace_inspect record  <scenario> <dir> --segments <n>   record through a segment sink
//! ```
//!
//! Every `<trace>` argument accepts either a single trace file or a
//! segment directory written by a
//! [`SegmentSink`](dps_obs::segment::SegmentSink): directories are
//! reassembled in write order before inspection, so `summary`, `jsonl`
//! and `diff` work identically on both. `diff <dir> <file>` is the
//! segment-sink roundtrip check — a segmented recording must replay
//! byte-identically to a ring recording of the same run.
//!
//! `--kind` narrows `summary` and `jsonl` to one event kind by its schema
//! name (`mode_change`, `budget_shock`, `invariant_violation`, ...) — the
//! fast way to pull the degradation-ladder story out of a chaos trace
//! without paging through every cap delta.
//!
//! `--count-by-kind` replaces the counter/histogram summary with a flat
//! per-kind census over the full schema vocabulary — the quick audit of
//! which events a trace actually contains (does this run have
//! `sleep_transition`s? did any `wake_done` land?) before reaching for a
//! filtered view.
//!
//! Scenarios are the pinned golden runs of
//! [`dps_experiments::scenarios::GoldenScenario`] (`paper_default`,
//! `sensor_fault`, `scheduler_churn`). `record` writes exactly the bytes
//! `tests/golden_trace.rs` expects, so a reviewed behaviour change is
//! regenerated with:
//!
//! ```text
//! cargo run --release --bin trace_inspect record sensor_fault tests/golden/sensor_fault.trace
//! ```
//!
//! `diff` is what to reach for when the golden test fails: it prints the
//! first diverging event with its neighbourhood on both sides instead of a
//! useless binary blob mismatch.

use dps_experiments::scenarios::GoldenScenario;
use dps_obs::codec::{decode, to_jsonl, Trace};
use dps_obs::{Event, ObsRegistry};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  trace_inspect summary <trace|dir> [--kind <event> | --count-by-kind]\n  \
         trace_inspect jsonl <trace|dir> [--kind <event>]\n  \
         trace_inspect diff <a|dir> <b|dir>\n  \
         trace_inspect tail <dir> [n]\n  \
         trace_inspect merge <dir> <out>\n  \
         trace_inspect record <scenario> <out>\n  \
         trace_inspect record <scenario> <dir> --segments <n>\n\
         scenarios: {}",
        GoldenScenario::ALL
            .iter()
            .map(|s| s.name())
            .collect::<Vec<_>>()
            .join(", ")
    );
    ExitCode::from(2)
}

/// Validates an event-kind name against the trace schema and drops every
/// other kind from the trace. `dropped` is preserved: the ring's losses are
/// a property of the recording, not of the view.
fn filter_kind(trace: Trace, kind: &str) -> Result<Trace, String> {
    if !dps_obs::event::schema::EVENTS
        .iter()
        .any(|s| s.name == kind)
    {
        return Err(format!(
            "unknown event kind {kind:?}; one of: {}",
            dps_obs::event::schema::EVENTS
                .iter()
                .map(|s| s.name)
                .collect::<Vec<_>>()
                .join(", ")
        ));
    }
    Ok(Trace {
        events: trace
            .events
            .into_iter()
            .filter(|e| e.name() == kind)
            .collect(),
        dropped: trace.dropped,
    })
}

/// Parses an optional trailing `--kind <event>` pair.
fn kind_arg(args: &[String]) -> Result<Option<&str>, ()> {
    match args {
        [] => Ok(None),
        [flag, kind] if flag == "--kind" => Ok(Some(kind)),
        _ => Err(()),
    }
}

/// Loads a trace from a single file or, if `path` is a directory, by
/// reassembling its segment files in write order.
fn load(path: &str) -> Result<Trace, String> {
    if std::path::Path::new(path).is_dir() {
        return dps_obs::segment::read_segment_dir(std::path::Path::new(path));
    }
    let bytes = std::fs::read(path).map_err(|e| format!("{path}: {e}"))?;
    decode(&bytes).map_err(|e| format!("{path}: {e}"))
}

fn cycle_span(events: &[Event]) -> Option<(u64, u64)> {
    let mut cycles = events.iter().map(|e| e.cycle());
    let first = cycles.next()?;
    let (lo, hi) = cycles.fold((first, first), |(lo, hi), c| (lo.min(c), hi.max(c)));
    Some((lo, hi))
}

fn summary(path: &str, kind: Option<&str>) -> Result<(), String> {
    let mut trace = load(path)?;
    if let Some(kind) = kind {
        trace = filter_kind(trace, kind)?;
        println!("{path} (kind = {kind})");
    } else {
        println!("{path}");
    }
    if let Ok(files) = dps_obs::segment::segment_files(std::path::Path::new(path)) {
        println!("  segments               {}", files.len());
    }
    println!("  events                 {}", trace.events.len());
    println!("  dropped                {}", trace.dropped);
    if trace.dropped > 0 {
        println!(
            "  warning: ring overflowed; the {} oldest event(s) were overwritten \
             before export (consider a larger ring or a segment sink)",
            trace.dropped
        );
    }
    if let Some((lo, hi)) = cycle_span(&trace.events) {
        println!("  cycles                 {lo}..={hi}");
    }
    let registry = ObsRegistry::from_events(&trace.events);
    print!("{}", registry.render(trace.dropped));
    Ok(())
}

/// The last `n` events of a segment directory, as JSONL. Reads segments
/// from the end, so tailing a long-running recording touches only the
/// final file(s), not the whole directory.
fn tail(dir: &str, n: usize) -> Result<(), String> {
    let files = dps_obs::segment::segment_files(std::path::Path::new(dir))?;
    let mut chunks: Vec<Vec<Event>> = Vec::new();
    let mut have = 0usize;
    let mut dropped = 0u64;
    for path in files.iter().rev() {
        let bytes = std::fs::read(path).map_err(|e| format!("{}: {e}", path.display()))?;
        let seg = dps_obs::segment::decode_segment(&bytes)
            .map_err(|e| format!("{}: {e}", path.display()))?;
        have += seg.events.len();
        dropped += seg.dropped;
        chunks.push(seg.events);
        if have >= n {
            break;
        }
    }
    let mut events: Vec<Event> = chunks.into_iter().rev().flatten().collect();
    if events.len() > n {
        events.drain(..events.len() - n);
    }
    print!("{}", to_jsonl(&Trace { events, dropped }));
    Ok(())
}

/// Merges a segment directory into one standalone trace file, re-encoded
/// and re-checksummed as a whole.
fn merge(dir: &str, out: &str) -> Result<(), String> {
    let trace = dps_obs::segment::read_segment_dir(std::path::Path::new(dir))?;
    let files = dps_obs::segment::segment_files(std::path::Path::new(dir))?;
    let bytes = dps_obs::codec::encode(&trace.events, trace.dropped);
    std::fs::write(out, &bytes).map_err(|e| format!("{out}: {e}"))?;
    println!(
        "{out}: {} segment(s) -> {} bytes, {} events, {} dropped",
        files.len(),
        bytes.len(),
        trace.events.len(),
        trace.dropped
    );
    Ok(())
}

/// The `--count-by-kind` census: one row per schema kind in schema order,
/// so two traces' vocabularies line up for visual diffing. Kinds the trace
/// never emitted print a `-` rather than `0` — "absent" reads differently
/// from "counted and found none of".
fn count_by_kind(path: &str) -> Result<(), String> {
    let trace = load(path)?;
    println!("{path}");
    println!("  events                 {}", trace.events.len());
    println!("  dropped                {}", trace.dropped);
    for spec in dps_obs::event::schema::EVENTS {
        let count = trace
            .events
            .iter()
            .filter(|e| e.name() == spec.name)
            .count();
        if count > 0 {
            println!("  {:<22} {count}", spec.name);
        } else {
            println!("  {:<22} -", spec.name);
        }
    }
    Ok(())
}

fn jsonl(path: &str, kind: Option<&str>) -> Result<(), String> {
    let mut trace = load(path)?;
    if let Some(kind) = kind {
        trace = filter_kind(trace, kind)?;
    }
    print!("{}", to_jsonl(&trace));
    Ok(())
}

fn diff(path_a: &str, path_b: &str) -> Result<bool, String> {
    let a = load(path_a)?;
    let b = load(path_b)?;
    if a.events == b.events && a.dropped == b.dropped {
        println!(
            "identical: {} events, {} dropped",
            a.events.len(),
            a.dropped
        );
        return Ok(true);
    }
    if a.dropped != b.dropped {
        println!("dropped: {} vs {}", a.dropped, b.dropped);
    }
    if a.events.len() != b.events.len() {
        println!("events: {} vs {}", a.events.len(), b.events.len());
    }
    if let Some(at) = (0..a.events.len().min(b.events.len()))
        .find(|&i| a.events[i] != b.events[i])
        .or_else(|| (a.events.len() != b.events.len()).then(|| a.events.len().min(b.events.len())))
    {
        println!("first divergence at event {at}:");
        let lo = at.saturating_sub(2);
        for (label, trace) in [(path_a, &a), (path_b, &b)] {
            println!("  {label}:");
            for i in lo..(at + 3).min(trace.events.len()) {
                let marker = if i == at { ">" } else { " " };
                println!("  {marker} [{i}] {:?}", trace.events[i]);
            }
            if trace.events.len() <= at {
                println!("  > [{at}] <end of trace>");
            }
        }
    }
    Ok(false)
}

fn record(name: &str, out: &str) -> Result<(), String> {
    let scenario = GoldenScenario::from_name(name)
        .ok_or_else(|| format!("unknown scenario {name:?} (see usage)"))?;
    let bytes = scenario.record();
    let trace = decode(&bytes).expect("fresh recording decodes");
    std::fs::write(out, &bytes).map_err(|e| format!("{out}: {e}"))?;
    println!(
        "{out}: {} bytes, {} events, {} dropped",
        bytes.len(),
        trace.events.len(),
        trace.dropped
    );
    Ok(())
}

/// `record … --segments <n>`: drive the scenario through a streaming
/// [`dps_obs::SegmentSink`] of `n`-event segments instead of the default
/// in-memory ring. `out` is a directory. The resulting segment stream must
/// reassemble to exactly the ring recording — `diff <dir> <file>` checks
/// that, and CI does so on every run.
fn record_segmented(name: &str, out: &str, capacity: usize) -> Result<(), String> {
    let scenario = GoldenScenario::from_name(name)
        .ok_or_else(|| format!("unknown scenario {name:?} (see usage)"))?;
    let sink = dps_obs::SegmentSink::new(out, capacity).map_err(|e| format!("{out}: {e}"))?;
    let handle = dps_obs::SinkHandle::new(std::rc::Rc::new(sink));
    scenario.drive(Default::default(), &handle);
    let seg = handle.as_segment().expect("handle wraps a segment sink");
    seg.flush();
    if seg.io_errors() > 0 {
        return Err(format!(
            "{} segment write(s) failed; last: {}",
            seg.io_errors(),
            seg.last_error().unwrap_or_default()
        ));
    }
    let trace = dps_obs::segment::read_segment_dir(std::path::Path::new(out))?;
    println!(
        "{out}: {} segment(s), {} events, {} dropped",
        seg.segments_written(),
        trace.events.len(),
        trace.dropped
    );
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let result = match args.get(1).map(String::as_str) {
        Some("summary") if args.len() == 4 && args[3] == "--count-by-kind" => {
            count_by_kind(&args[2]).map(|()| true)
        }
        Some("summary") if args.len() >= 3 => match kind_arg(&args[3..]) {
            Ok(kind) => summary(&args[2], kind).map(|()| true),
            Err(()) => return usage(),
        },
        Some("jsonl") if args.len() >= 3 => match kind_arg(&args[3..]) {
            Ok(kind) => jsonl(&args[2], kind).map(|()| true),
            Err(()) => return usage(),
        },
        Some("diff") if args.len() == 4 => diff(&args[2], &args[3]),
        Some("tail") if args.len() == 3 || args.len() == 4 => {
            match args.get(3).map_or(Ok(20), |n| n.parse::<usize>()) {
                Ok(n) => tail(&args[2], n).map(|()| true),
                Err(_) => return usage(),
            }
        }
        Some("merge") if args.len() == 4 => merge(&args[2], &args[3]).map(|()| true),
        Some("record") if args.len() == 6 && args[4] == "--segments" => {
            match args[5].parse::<usize>() {
                Ok(cap) if cap > 0 => record_segmented(&args[2], &args[3], cap).map(|()| true),
                _ => return usage(),
            }
        }
        Some("record") if args.len() == 4 => record(&args[2], &args[3]).map(|()| true),
        _ => return usage(),
    };
    match result {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("trace_inspect: {e}");
            ExitCode::FAILURE
        }
    }
}
