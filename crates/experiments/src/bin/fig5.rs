//! Figure 5: Spark high-utility group.
//!
//! Mid/high-power Spark workloads paired with each other (49 pairs; the
//! figure focuses on the GMM pairings, where cluster-wide demand most often
//! exceeds the budget).
//!
//! (a) harmonic-mean speedup of each mid-power workload when paired with
//!     the high-power workload (GMM);
//! (b) harmonic mean of the speedups of the workload *and* its paired GMM.
//!
//! Paper shape: DPS ≥ constant everywhere (up to +5.2 %); SLURM penalises
//! every workload but GMM — long-phase workloads (Kmeans, LDA, RF) by
//! 8.9–14.3 %, high-frequency ones (Linear, LR) by up to 7.7 %; in (b)
//! SLURM's pair mean falls up to 8.1 % below constant while DPS never does;
//! DPS beats SLURM by up to 22.8 % (LDA) and 5.4 % on average.

use dps_core::manager::ManagerKind;
use dps_experiments::{
    banner, clean_hmean, config_from_env, grids, pct, render_speedup_table, run_grid,
    threads_from_env, CellResult,
};
use dps_metrics::GroupedSeries;

fn main() {
    let config = config_from_env();
    banner("Figure 5: Spark high utility (49 pairs)", &config);

    let pairs = grids::spark_high_utility();
    let managers = [ManagerKind::Slurm, ManagerKind::Dps];
    let cells = run_grid(&pairs, &managers, &config, threads_from_env());

    // (a) Each mid-power workload paired with GMM: the workload's own gain.
    let gmm_cells: Vec<&CellResult> = cells
        .iter()
        .filter(|c| c.b == "GMM" && c.a != "GMM")
        .collect();
    let mut fig5a = GroupedSeries::new();
    let mut fig5b = GroupedSeries::new();
    for cell in &gmm_cells {
        let m = cell.outcome.manager.to_string();
        if cell.speedup_a().is_finite() {
            fig5a.push(&cell.a, &m, cell.speedup_a());
        }
        if cell.pair_speedup().is_finite() {
            fig5b.push(&cell.a, &m, cell.pair_speedup());
        }
    }

    println!("(a) hmean speedup of each mid-power workload paired with GMM:\n");
    println!("{}", render_speedup_table(&fig5a, &managers));
    println!("(b) hmean of (workload, paired GMM) speedups:\n");
    println!("{}", render_speedup_table(&fig5b, &managers));

    // Headline: DPS-over-SLURM mean across the full 49-pair grid (pair
    // metric), the paper's "outperforms SLURM by a mean 5.4%".
    let mut dps_pairs = Vec::new();
    let mut slurm_pairs = Vec::new();
    for cell in &cells {
        let v = cell.pair_speedup();
        if !v.is_finite() {
            continue;
        }
        match cell.outcome.manager {
            ManagerKind::Dps => dps_pairs.push(v),
            ManagerKind::Slurm => slurm_pairs.push(v),
            _ => {}
        }
    }
    let dps_mean = clean_hmean(&dps_pairs);
    let slurm_mean = clean_hmean(&slurm_pairs);
    println!(
        "full-grid pair hmean: DPS {} vs SLURM {} → DPS over SLURM {}",
        pct(dps_mean),
        pct(slurm_mean),
        pct(dps_mean / slurm_mean)
    );

    // Lower-bound check: minimum per-workload DPS speedup in (b).
    let dps_min = fig5b
        .groups()
        .iter()
        .filter_map(|g| fig5b.hmean(g, "DPS"))
        .fold(f64::INFINITY, f64::min);
    let slurm_min = fig5b
        .groups()
        .iter()
        .filter_map(|g| fig5b.hmean(g, "SLURM"))
        .fold(f64::INFINITY, f64::min);
    println!(
        "worst pair hmean: DPS {} (paper: never below constant) vs SLURM {} (paper: down to -8.1%)",
        pct(dps_min),
        pct(slurm_min)
    );
    println!();
    println!("Expected shape (paper Fig. 5): SLURM penalises long-phase and high-");
    println!("frequency workloads below constant; DPS holds the constant lower bound");
    println!("and outperforms SLURM on average.");
}
