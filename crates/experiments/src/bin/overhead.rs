//! §6.5: overhead analysis.
//!
//! Three claims to reproduce:
//!
//! 1. the controller's per-cycle compute cost is tiny and scales linearly —
//!    "less than 0.5% average CPU usage on the controller node" and "the
//!    controller could handle tens of thousands of nodes";
//! 2. the per-unit state (20-step history) stays cache-resident even at
//!    scale — "several megabytes" for tens of thousands of nodes;
//! 3. communication dominates the turnaround but remains milliseconds at
//!    1,000 nodes and ~3 MB of traffic per 1 M nodes.
//!
//! Compute cost is measured directly (wall-clock over many decision
//! cycles); communication comes from the control-plane model.

use dps_cluster::ControlPlaneModel;
use dps_core::manager::{PowerManager, UnitLimits};
use dps_core::{DpsConfig, DpsManager, MimdConfig, SlurmManager};
use dps_experiments::{banner, config_from_env};
use dps_sim_core::rng::RngStream;
use std::time::Instant;

/// Measures the mean per-cycle wall time of a manager over `iters` cycles
/// with a churning synthetic load.
fn measure(mut mgr: Box<dyn PowerManager>, n: usize, iters: usize) -> f64 {
    let mut caps = vec![110.0; n];
    let mut measured = vec![100.0; n];
    let mut rng = RngStream::new(7, "overhead-load");
    // Warm up histories first.
    for _ in 0..32 {
        for (u, m) in measured.iter_mut().enumerate() {
            *m = (60.0 + 50.0 * ((u % 7) as f64 / 7.0) + rng.normal(0.0, 8.0)).clamp(15.0, 165.0);
        }
        mgr.assign_caps(&measured, &mut caps, 1.0);
    }
    let start = Instant::now();
    for i in 0..iters {
        // Deterministic churn without per-iteration RNG cost dominating.
        for (u, m) in measured.iter_mut().enumerate() {
            let phase = ((i + u) % 20) as f64 / 20.0;
            *m = (40.0 + 120.0 * phase).min(caps[u]);
        }
        mgr.assign_caps(&measured, &mut caps, 1.0);
    }
    start.elapsed().as_secs_f64() / iters as f64
}

fn main() {
    let config = config_from_env();
    banner("Section 6.5: overhead analysis", &config);
    let limits = UnitLimits::xeon_gold_6240();

    println!("Controller compute cost per decision cycle (measured):\n");
    let mut table = dps_metrics::Table::new(vec![
        "units".into(),
        "SLURM (us)".into(),
        "DPS (us)".into(),
        "DPS duty cycle @1s".into(),
        "history bytes".into(),
    ]);
    for &n in &[20usize, 200, 2_000, 20_000] {
        let budget = n as f64 * 110.0;
        let iters = (200_000 / n).clamp(20, 5_000);
        let slurm = measure(
            Box::new(SlurmManager::new(
                n,
                budget,
                limits,
                MimdConfig::default(),
                RngStream::new(1, "ov-slurm"),
            )),
            n,
            iters,
        );
        let dps_cfg = DpsConfig::default();
        let dps = measure(
            Box::new(DpsManager::new(
                n,
                budget,
                limits,
                dps_cfg,
                RngStream::new(1, "ov-dps"),
            )),
            n,
            iters,
        );
        // Per-unit history: power + duration ring of history_len f64s.
        let state_bytes = n * dps_cfg.history_len * 8 * 2;
        table.row(vec![
            n.to_string(),
            format!("{:.1}", slurm * 1e6),
            format!("{:.1}", dps * 1e6),
            format!("{:.4}%", dps * 100.0),
            format!("{}", state_bytes),
        ]);
    }
    println!("{}", table.render());

    println!("Control-plane model (per decision cycle):\n");
    let cp = ControlPlaneModel::default();
    let mut net = dps_metrics::Table::new(vec![
        "nodes".into(),
        "latency (ms)".into(),
        "traffic (bytes, 2 sockets/node)".into(),
    ]);
    for &nodes in &[10usize, 100, 1_000, 10_000, 1_000_000] {
        net.row(vec![
            nodes.to_string(),
            format!("{:.3}", cp.cycle_latency(nodes) * 1e3),
            format!("{}", cp.cycle_traffic(nodes * 2)),
        ]);
    }
    println!("{}", net.render());

    println!("Deployment overhead: DPS needs one full history window before its");
    println!(
        "dynamics are informative — {} s at the default 1 s period (paper: \"at",
        DpsConfig::default().history_len
    );
    println!("most the time of the range of estimated power history ... defaulted at");
    println!("20 seconds\"); SLURM is functional immediately. Both are negligible");
    println!("against cluster lifetimes.");
    println!();
    println!("Expected shape (paper §6.5): DPS's extra cost over SLURM is a small");
    println!("constant factor; both are microseconds per cycle at testbed scale; the");
    println!("duty cycle stays well under 0.5% even at tens of thousands of units;");
    println!("communication, not computation, dominates turnaround.");
}
