//! Idle-state management: prediction error vs. energy saved vs. latency.
//!
//! Two halves, one report (`results/idle.txt`):
//!
//! **Synthetic gap sweep.** A seeded mixture of idle-gap lengths spanning
//! the C-state break-evens (short bursts, medium lulls, long overnight
//! stretches) is replayed against every demotion policy while the advice
//! error is swept from oracle-grade to garbage. The prediction for each
//! gap is the *true* gap under the bounded multiplicative perturbation of
//! [`PredictorConfig::perturb`], so the x-axis is exactly the advice
//! quality λ-style analyses assume. Expected shape: the learning-augmented
//! policy beats classical ski rental (and fixed-timeout) near zero error
//! — consistency — and degrades gracefully toward its robustness bound as
//! the error grows, while ski rental sits flat at ≤ 2× offline-optimal
//! regardless.
//!
//! **Traffic-mode runs.** The same flash-crowd request stream (identical
//! seed per run) drives the elastic provisioner with the sleep ladder
//! between it and the power switch. First the idle policies are compared
//! under the DPS manager — ideal-off (the ladder disabled: the old
//! idealization where a dark unit costs zero joules and wakes for free),
//! fixed-timeout, ski rental, and learning-augmented across predictor
//! errors — trading joules against added request latency from wake
//! delays. The ideal-off run is the unreachable floor; the policies
//! compete on how little realistic sleep/wake overhead they add. Then
//! Constant/SLURM/DPS/QDPM face the identical stream with ski rental on,
//! showing the ladder composes with every manager including the
//! Q-learning one.
//!
//! The ski-rental-vs-fixed-timeout energy gap is asserted positive — the
//! CI smoke job relies on this binary failing loudly if the cascade ever
//! stops saving energy.
//!
//! `DPS_QUICK=1` shrinks the sweep and the runs for CI smoke coverage.

use dps_cluster::{ClusterSim, ExperimentConfig};
use dps_core::manager::ManagerKind;
use dps_experiments::{banner, config_from_env};
use dps_idle::{IdleConfig, IdlePolicy, PredictorConfig, SleepCatalog};
use dps_metrics::requests::format_attainment;
use dps_metrics::Table;
use dps_rapl::Topology;
use dps_sim_core::RngStream;
use dps_traffic::{ProvisionerConfig, ProvisionerMode, TrafficConfig, TrafficPattern};

/// Draws one idle gap from a mixture spanning the break-even spectrum:
/// short inter-request bursts, mid-length lulls, and long quiet stretches
/// (exponential in each regime).
fn sample_gap(rng: &mut RngStream) -> f64 {
    let mean = match rng.uniform() {
        u if u < 0.45 => 3.0,
        u if u < 0.80 => 25.0,
        _ => 400.0,
    };
    -mean * (1.0 - rng.uniform()).ln()
}

/// Mean policy cost (J per gap) over `gaps` with advice at relative
/// `error`, plus the offline-optimal mean for the ratio.
fn sweep_cost(
    catalog: &SleepCatalog,
    policy: &IdlePolicy,
    gaps: &[f64],
    error: f64,
    seed: u64,
) -> f64 {
    let advice = PredictorConfig {
        error,
        ..PredictorConfig::default()
    };
    // A fresh stream per (policy, error) cell keeps cells independent;
    // the seed pins the whole sweep.
    let mut rng = RngStream::new(seed, &format!("idle-sweep/{}/{error}", policy.name()));
    let total: f64 = gaps
        .iter()
        .map(|&gap| {
            let prediction = advice.perturb(gap, &mut rng);
            policy.cost(catalog, prediction, gap)
        })
        .sum();
    total / gaps.len() as f64
}

/// One traffic run's summary.
struct IdleOutcome {
    label: String,
    joules: f64,
    served: f64,
    attainment: Option<f64>,
    mean_latency: f64,
    p95_latency: f64,
}

/// Runs the pinned flash-crowd scenario once under `kind` with the given
/// idle configuration (`None` = units hold awake power when dark).
fn run_traffic(
    config: &ExperimentConfig,
    label: String,
    kind: ManagerKind,
    idle: Option<IdleConfig>,
    cycles: u64,
) -> IdleOutcome {
    let mut sim_cfg = config.sim.clone();
    let total_sockets = sim_cfg.topology.total_units();
    let mut traffic = TrafficConfig::default_diurnal(total_sockets, 100.0);
    // A crowd that forces the fleet wide open, then a long quiet tail the
    // demotion policies can actually harvest.
    traffic.pattern = TrafficPattern::FlashCrowd {
        base_rps: 0.15 * total_sockets as f64 * 100.0,
        peak_rps: 0.9 * total_sockets as f64 * 100.0,
        start: 20.0,
        ramp: 10.0,
        hold: 40.0,
        decay: 10.0,
    };
    traffic.provisioner = ProvisionerMode::Reactive(ProvisionerConfig {
        target_utilization: 0.7,
        headroom_nodes: 0,
        power_off_after: 15.0,
        min_nodes: 1,
    });
    traffic.milestone_every = u64::MAX;
    sim_cfg.traffic = Some(traffic);
    sim_cfg.idle = idle;
    // One shared rng label: every run sees the identical arrival stream.
    let rng = RngStream::new(config.seed, "idle-experiment");
    let mut sim = ClusterSim::with_traffic(sim_cfg, config.build_manager(kind), &rng);
    for _ in 0..cycles {
        sim.cycle();
    }
    let stats = sim.request_stats().expect("traffic mode");
    IdleOutcome {
        label,
        joules: stats.joules,
        served: stats.served,
        attainment: stats.slo_attainment(),
        mean_latency: stats.mean_latency().unwrap_or(0.0),
        p95_latency: stats.latency_percentile(0.95).unwrap_or(0.0),
    }
}

fn outcome_row(table: &mut Table, out: &IdleOutcome, baseline_joules: f64) {
    let saved = (1.0 - out.joules / baseline_joules) * 100.0;
    table.row(vec![
        out.label.clone(),
        format!("{:.0}", out.joules),
        format!("{saved:+.1}%"),
        format!("{:.0}", out.served),
        format_attainment(out.attainment),
        format!("{:.2}", out.mean_latency),
        format!("{:.2}", out.p95_latency),
    ]);
}

fn main() {
    let quick = std::env::var("DPS_QUICK").is_ok();
    let (num_gaps, cycles) = if quick {
        (400, 240u64)
    } else {
        (4_000, 600u64)
    };
    let mut config = config_from_env();
    config.sim.topology = Topology::new(2, 4, 2);

    banner(
        "Idle-state management: error vs. energy vs. latency",
        &config,
    );
    let mut report = String::new();
    report.push_str("Idle-state management: prediction error vs. energy saved vs. latency\n\n");

    // ---- Part 1: synthetic gap sweep --------------------------------
    let catalog = SleepCatalog::xeon_c_states();
    let mut gap_rng = RngStream::new(config.seed, "idle-gaps");
    let gaps: Vec<f64> = (0..num_gaps).map(|_| sample_gap(&mut gap_rng)).collect();
    let opt_mean = gaps
        .iter()
        .map(|&g| catalog.offline_optimal_cost(g))
        .sum::<f64>()
        / gaps.len() as f64;

    let policies: Vec<IdlePolicy> = vec![
        IdlePolicy::FixedTimeout { timeout_s: 100.0 },
        IdlePolicy::SkiRental,
        IdlePolicy::LearningAugmented { lambda: 0.25 },
        IdlePolicy::LearningAugmented { lambda: 0.5 },
    ];
    let errors = [0.0, 0.1, 0.25, 0.5, 1.0, 2.0];

    let mut headers = vec!["Rel error".to_string()];
    headers.extend(policies.iter().map(|p| match p {
        IdlePolicy::LearningAugmented { lambda } => format!("{} λ={lambda}", p.name()),
        _ => p.name().to_string(),
    }));
    let mut sweep_table = Table::new(headers);
    let mut la_low_error = f64::NAN;
    let mut la_high_error = f64::NAN;
    let mut fixed_low_error = f64::NAN;
    let mut ski_worst_ratio: f64 = 0.0;
    for &error in &errors {
        let mut cells = vec![format!("{error:.2}")];
        for policy in &policies {
            let mean = sweep_cost(&catalog, policy, &gaps, error, config.seed);
            let ratio = mean / opt_mean;
            cells.push(format!("{mean:.1} J ({ratio:.3}x)"));
            match policy {
                IdlePolicy::SkiRental => ski_worst_ratio = ski_worst_ratio.max(ratio),
                IdlePolicy::LearningAugmented { lambda } if *lambda == 0.5 => {
                    if error == 0.0 {
                        la_low_error = mean;
                    }
                    if error == 2.0 {
                        la_high_error = mean;
                    }
                }
                IdlePolicy::FixedTimeout { .. } if error == 0.0 => fixed_low_error = mean,
                _ => {}
            }
        }
        sweep_table.row(cells);
    }
    let rendered = sweep_table.render();
    println!("synthetic gap sweep: mean J per idle gap (ratio to offline optimal {opt_mean:.1} J)");
    println!("{rendered}");
    report.push_str(&format!(
        "Synthetic gap sweep over {} seeded gaps: mean J per idle gap,\n\
         ratio to the offline optimal ({opt_mean:.1} J) in parentheses.\n\n{rendered}\n",
        gaps.len()
    ));

    // Consistency: with good advice the learning-augmented policy must
    // beat the prediction-free baselines. Robustness: with garbage advice
    // it may lose its edge but must stay bounded (λ=0.5 ⇒ ≤ 2/λ·OPT = 4×),
    // and classical ski rental never exceeds its 2× guarantee.
    assert!(
        la_low_error < fixed_low_error,
        "learning-augmented ({la_low_error:.1} J) must beat fixed-timeout \
         ({fixed_low_error:.1} J) under accurate advice"
    );
    assert!(
        ski_worst_ratio <= 2.0 + 1e-9,
        "ski rental broke its 2-competitive bound: {ski_worst_ratio:.3}x"
    );
    assert!(
        la_high_error <= 4.0 * opt_mean + 1e-9,
        "learning-augmented λ=0.5 broke its robustness bound at high error"
    );
    report.push_str(&format!(
        "\nλ=0.5 learning-augmented: {la_low_error:.1} J at zero error (vs fixed-timeout \
         {fixed_low_error:.1} J), {la_high_error:.1} J at 2.0 relative error — consistency \
         then graceful degradation; ski rental stays ≤ {ski_worst_ratio:.3}x of optimal \
         throughout.\n\n",
    ));

    // ---- Part 2: traffic-mode policy comparison ---------------------
    let ladder = |policy: IdlePolicy, error: f64| -> Option<IdleConfig> {
        Some(IdleConfig {
            policy,
            predictor: PredictorConfig {
                error,
                ..PredictorConfig::default()
            },
            ..IdleConfig::default()
        })
    };
    let runs: Vec<(String, Option<IdleConfig>)> = vec![
        ("ideal-off".into(), None),
        (
            "fixed-timeout".into(),
            ladder(IdlePolicy::FixedTimeout { timeout_s: 100.0 }, 0.2),
        ),
        ("ski-rental".into(), ladder(IdlePolicy::SkiRental, 0.2)),
        (
            "LA λ=0.5 err=0.0".into(),
            ladder(IdlePolicy::LearningAugmented { lambda: 0.5 }, 0.0),
        ),
        (
            "LA λ=0.5 err=0.5".into(),
            ladder(IdlePolicy::LearningAugmented { lambda: 0.5 }, 0.5),
        ),
        (
            "LA λ=0.5 err=2.0".into(),
            ladder(IdlePolicy::LearningAugmented { lambda: 0.5 }, 2.0),
        ),
    ];
    let mut policy_table = Table::new(vec![
        "Idle policy".into(),
        "Joules".into(),
        "vs ideal".into(),
        "Served".into(),
        "SLO att".into(),
        "Mean lat (s)".into(),
        "p95 lat (s)".into(),
    ]);
    let outcomes: Vec<IdleOutcome> = runs
        .into_iter()
        .map(|(label, idle)| run_traffic(&config, label, ManagerKind::Dps, idle, cycles))
        .collect();
    let ideal_joules = outcomes[0].joules;
    for out in &outcomes {
        outcome_row(&mut policy_table, out, ideal_joules);
    }
    let rendered = policy_table.render();
    println!("flash-crowd traffic under DPS, sleep ladder policies ({cycles} cycles)");
    println!("{rendered}");
    report.push_str(&format!(
        "Flash-crowd traffic under the DPS manager ({cycles} cycles, identical\n\
         arrival stream). \"vs ideal\" is relative to the ideal-off floor (ladder\n\
         disabled: dark units free and instant) — negative numbers are the\n\
         realistic sleep/wake overhead each demotion policy actually pays.\n\n{rendered}\n"
    ));

    // The CI smoke contract: cascading down the ladder must beat parking
    // in the shallow state behind a fixed timeout.
    let fixed = outcomes
        .iter()
        .find(|o| o.label == "fixed-timeout")
        .unwrap();
    let ski = outcomes.iter().find(|o| o.label == "ski-rental").unwrap();
    let saved = fixed.joules - ski.joules;
    assert!(
        saved > 0.0,
        "ski rental must out-save fixed-timeout (fixed {:.0} J, ski {:.0} J)",
        fixed.joules,
        ski.joules
    );
    let line = format!(
        "ski-rental saves {saved:.0} J over fixed-timeout ({:.1}% of the fixed-timeout bill)\n",
        100.0 * saved / fixed.joules
    );
    println!("{line}");
    report.push_str(&format!("\n{line}"));

    // ---- Part 3: managers on the same stream, ladder on -------------
    let mut mgr_table = Table::new(vec![
        "Manager".into(),
        "Joules".into(),
        "vs ideal".into(),
        "Served".into(),
        "SLO att".into(),
        "Mean lat (s)".into(),
        "p95 lat (s)".into(),
    ]);
    for kind in [
        ManagerKind::Constant,
        ManagerKind::Slurm,
        ManagerKind::Dps,
        ManagerKind::Qdpm,
    ] {
        let out = run_traffic(
            &config,
            kind.to_string(),
            kind,
            ladder(IdlePolicy::SkiRental, 0.2),
            cycles,
        );
        outcome_row(&mut mgr_table, &out, ideal_joules);
    }
    let rendered = mgr_table.render();
    println!("managers on the identical stream, ski-rental ladder on");
    println!("{rendered}");
    report.push_str(&format!(
        "\nManagers on the identical request stream with the ski-rental ladder\n\
         on — the ladder composes with every cap policy, including the\n\
         Q-learning manager.\n\n{rendered}\n"
    ));
    report.push_str(
        "\nExpected shape: the cascading policies (ski rental, learning-augmented)\n\
         stay within a small overhead of the ideal-off floor while paying the\n\
         real sleep-power and wake-energy bill; the fixed timeout burns\n\
         shallow-state watts through every long gap and pays several times\n\
         their overhead. Learning-augmented tracks ski rental as its advice\n\
         degrades instead of falling off a cliff. The manager choice moves the\n\
         joules bill through caps, not through the ladder — all four keep the\n\
         same SLO shape on this stream.\n",
    );

    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::write("results/idle.txt", &report).expect("write results/idle.txt");
    println!("wrote results/idle.txt");
}
