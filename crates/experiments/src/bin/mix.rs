//! Extension study: mixed job queues (job-throughput view).
//!
//! The paper's related work measures power managers by *job throughput*
//! (Ellsworth et al., SC '15: "Dynamic power sharing for higher job
//! throughput"). This experiment queues a shuffled mix of Spark jobs on one
//! cluster and a queue of NPB jobs on the other — submission gaps between
//! jobs included — and reports each manager's **makespan** for both queues,
//! normalised to constant allocation. It exercises the managers against
//! job *boundaries* (demand collapses at every job end and resurges at the
//! next start), which the fixed-pair experiments never show them.

use dps_cluster::ClusterSim;
use dps_core::manager::ManagerKind;
use dps_experiments::{banner, config_from_env, parallel_map, pct, threads_from_env};
use dps_sim_core::rng::RngStream;
use dps_workloads::{build_program, catalog, DemandProgram};

/// Builds a job queue as one concatenated program.
fn queue(names: &[&str], seed: u64, perf: &dps_workloads::PerfModel) -> DemandProgram {
    let jobs: Vec<DemandProgram> = names
        .iter()
        .enumerate()
        .map(|(i, n)| build_program(catalog::find(n).unwrap(), perf, seed + i as u64))
        .collect();
    DemandProgram::concat(&jobs, 15.0, 20.0)
}

fn main() {
    let config = config_from_env();
    banner("Job-mix throughput: Spark queue vs NPB queue", &config);

    // A realistic mixed submission order: short and long, hot and cold.
    let spark_mix = ["Bayes", "Sort", "LR", "Kmeans", "Wordcount", "RF", "GMM"];
    let npb_mix = ["FT", "CG", "MG", "IS", "LU"];
    println!("spark queue: {spark_mix:?}");
    println!("npb queue:   {npb_mix:?}\n");

    let managers = [
        ManagerKind::Constant,
        ManagerKind::Slurm,
        ManagerKind::Dps,
        ManagerKind::Oracle,
    ];
    let results: Vec<(f64, f64, f64)> = parallel_map(threads_from_env(), &managers, |&kind| {
        let spark = queue(&spark_mix, config.seed, &config.sim.perf);
        let npb = queue(&npb_mix, config.seed ^ 0xBEEF, &config.sim.perf);
        let mut sim = ClusterSim::new(
            config.sim.clone(),
            vec![spark, npb],
            config.build_manager(kind),
            &RngStream::new(config.seed, "mix"),
        );
        sim.run_until(config.max_steps, |s| {
            s.runs_completed(0) >= 1 && s.runs_completed(1) >= 1
        });
        (
            sim.run_durations(0)[0],
            sim.run_durations(1)[0],
            sim.fairness(0, 1),
        )
    });

    let (base_spark, base_npb, _) = results[0];
    let mut table = dps_metrics::Table::new(vec![
        "manager".into(),
        "spark makespan (s)".into(),
        "npb makespan (s)".into(),
        "spark vs const".into(),
        "npb vs const".into(),
        "fairness".into(),
    ]);
    for (kind, &(spark, npb, fairness)) in managers.iter().zip(&results) {
        table.row(vec![
            kind.to_string(),
            format!("{spark:.0}"),
            format!("{npb:.0}"),
            pct(base_spark / spark),
            pct(base_npb / npb),
            format!("{fairness:.3}"),
        ]);
    }
    println!("{}", table.render());
    println!("Expected shape: job boundaries hand SLURM repeated opportunities to");
    println!("misallocate (each job start is a power surge from a starved cap);");
    println!("DPS's restore + dynamics keep both queues at or above the constant");
    println!("baseline, with the oracle bounding the achievable makespan.");
}
