//! Extension study: budget sweep.
//!
//! The paper acknowledges that "experiments with multiple power limits
//! lower than the TDP can provide a more comprehensive evaluation of DPS"
//! but runs only the 66.7 % budget for testbed-time reasons (§6). The
//! simulator has no such constraint: this sweeps the cluster-wide budget
//! fraction from 45 % to 95 % of aggregate TDP on a contended pair and a
//! low-utility pair, reporting each manager's pair speedup over the
//! constant allocation *at that same budget*.
//!
//! Expected shape: at generous budgets every manager converges (nothing to
//! fight over); as the budget tightens, the stateless manager's losses
//! deepen while DPS tracks the constant lower bound or better — the DPS
//! advantage is largest exactly where power is scarcest.

use dps_cluster::run_pair;
use dps_core::manager::ManagerKind;
use dps_experiments::{banner, config_from_env, parallel_map, pct, threads_from_env};
use dps_workloads::catalog::find;

fn main() {
    let base = config_from_env();
    banner("Budget sweep: 45-95% of aggregate TDP", &base);

    let fractions = [0.45, 0.55, 2.0 / 3.0, 0.80, 0.95];
    let pairs = [("GMM", "EP"), ("LDA", "Sort")];
    let managers = [ManagerKind::Slurm, ManagerKind::Dps, ManagerKind::Oracle];

    for (a_name, b_name) in pairs {
        println!("--- {a_name} + {b_name}");
        let a = find(a_name).unwrap();
        let b = find(b_name).unwrap();

        let tasks: Vec<(f64, ManagerKind)> = fractions
            .iter()
            .flat_map(|&f| managers.iter().map(move |&m| (f, m)))
            .collect();
        let results: Vec<f64> = parallel_map(threads_from_env(), &tasks, |&(frac, kind)| {
            let mut cfg = base.clone();
            cfg.sim.budget_fraction = frac;
            let baseline = run_pair(a, b, ManagerKind::Constant, &cfg);
            let out = run_pair(a, b, kind, &cfg);
            out.pair_speedup(baseline.a.hmean_duration(), baseline.b.hmean_duration())
        });

        let mut table = dps_metrics::Table::new(vec![
            "budget".into(),
            "W/socket".into(),
            "SLURM".into(),
            "DPS".into(),
            "Oracle".into(),
        ]);
        for (i, &frac) in fractions.iter().enumerate() {
            let row: Vec<String> = managers
                .iter()
                .enumerate()
                .map(|(m, _)| pct(results[i * managers.len() + m]))
                .collect();
            let mut cells = vec![
                format!("{:.0}%", frac * 100.0),
                format!("{:.0}", frac * base.sim.domain_spec.tdp),
            ];
            cells.extend(row);
            table.row(cells);
        }
        println!("{}", table.render());
    }
    println!("(speedups are pair harmonic means over constant allocation at the");
    println!("same budget; 67% is the paper's operating point)");
}
