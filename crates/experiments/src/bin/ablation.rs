//! Ablation study: which DPS mechanisms earn their keep.
//!
//! Not a paper figure — DESIGN.md calls these out as the design choices the
//! paper's §4 argues for. Each variant disables one mechanism:
//!
//! * **no-kalman** — raw noisy measurements feed the priority module
//!   (validates §4.3.2's de-noising);
//! * **no-freq** — the high-frequency gate never trips (validates the
//!   §4.4 guard that protects LR/Linear);
//! * **no-restore** — Alg. 3 never fires (validates headroom restoration);
//! * **stateless-only** — the SLURM row, i.e. DPS minus everything.
//!
//! Run on three pairs that exercise each mechanism, plus a perf-model alpha
//! sweep showing the result shape is insensitive to the substituted
//! power→performance curve.

use dps_cluster::run_pair;
use dps_core::manager::ManagerKind;
use dps_experiments::{banner, config_from_env, parallel_map, pct, threads_from_env};
use dps_workloads::catalog::find;
use dps_workloads::PerfModel;

fn main() {
    let base = config_from_env();
    banner("Ablation: DPS mechanisms and perf-model sensitivity", &base);

    let pairs = [
        ("LR", "Wordcount"), // exercises the high-frequency gate
        ("LDA", "Sort"),     // exercises restore + derivative anticipation
        ("GMM", "EP"),       // exercises equalization under exhausted budget
    ];

    #[derive(Clone, Copy)]
    enum Variant {
        Slurm,
        Dps,
        NoKalman,
        NoFreq,
        NoRestore,
        NoPinned,
    }
    let variants = [
        ("stateless-only", Variant::Slurm),
        ("DPS (full)", Variant::Dps),
        ("DPS no-kalman", Variant::NoKalman),
        ("DPS no-freq", Variant::NoFreq),
        ("DPS no-restore", Variant::NoRestore),
        ("DPS no-pinned", Variant::NoPinned),
    ];

    let tasks: Vec<(usize, usize)> = (0..pairs.len())
        .flat_map(|p| (0..variants.len()).map(move |v| (p, v)))
        .collect();
    let results = parallel_map(threads_from_env(), &tasks, |&(p, v)| {
        let (a, b) = pairs[p];
        let spec_a = find(a).unwrap();
        let spec_b = find(b).unwrap();
        let mut cfg = base.clone();
        let kind = match variants[v].1 {
            Variant::Slurm => ManagerKind::Slurm,
            Variant::Dps => ManagerKind::Dps,
            Variant::NoKalman => {
                cfg.dps = cfg.dps.without_kalman();
                ManagerKind::Dps
            }
            Variant::NoFreq => {
                cfg.dps = cfg.dps.without_frequency_detection();
                ManagerKind::Dps
            }
            Variant::NoRestore => {
                cfg.dps = cfg.dps.without_restore();
                ManagerKind::Dps
            }
            Variant::NoPinned => {
                cfg.dps = cfg.dps.without_pinned();
                ManagerKind::Dps
            }
        };
        let baseline = run_pair(spec_a, spec_b, ManagerKind::Constant, &cfg);
        let outcome = run_pair(spec_a, spec_b, kind, &cfg);
        let speedup =
            outcome.pair_speedup(baseline.a.hmean_duration(), baseline.b.hmean_duration());
        (speedup, outcome.fairness)
    });

    for (p, (a, b)) in pairs.iter().enumerate() {
        println!("--- {a} + {b}");
        let mut table = dps_metrics::Table::new(vec![
            "variant".into(),
            "pair speedup".into(),
            "fairness".into(),
        ]);
        for (v, (label, _)) in variants.iter().enumerate() {
            let (speedup, fairness) = results[p * variants.len() + v];
            table.row(vec![
                label.to_string(),
                pct(speedup),
                format!("{fairness:.3}"),
            ]);
        }
        println!("{}", table.render());
    }

    // Stress scenarios: each disabled mechanism priced under the condition
    // it exists for. At the default 1 s decision period with mild noise the
    // pinned signal subsumes the Kalman filter and the frequency gate; the
    // filter earns its keep under heavy measurement noise and the gate
    // under a slow controller whose reaction lag exceeds LR's phases.
    println!("--- stress: heavy RAPL noise (std 6 W), GMM + EP");
    {
        let scenarios = [("DPS (full)", false), ("DPS no-kalman", true)];
        let rows: Vec<(f64, f64)> = parallel_map(threads_from_env(), &scenarios, |&(_, ablate)| {
            let mut cfg = base.clone();
            cfg.sim.noise = dps_rapl::NoiseModel::Gaussian { std_dev: 6.0 };
            if ablate {
                cfg.dps = cfg.dps.without_kalman();
            }
            let a = find("GMM").unwrap();
            let b = find("EP").unwrap();
            let baseline = run_pair(a, b, ManagerKind::Constant, &cfg);
            let out = run_pair(a, b, ManagerKind::Dps, &cfg);
            (
                out.pair_speedup(baseline.a.hmean_duration(), baseline.b.hmean_duration()),
                out.fairness,
            )
        });
        let mut table = dps_metrics::Table::new(vec![
            "variant".into(),
            "pair speedup".into(),
            "fairness".into(),
        ]);
        for ((label, _), (speedup, fairness)) in scenarios.iter().zip(&rows) {
            table.row(vec![
                label.to_string(),
                pct(*speedup),
                format!("{fairness:.3}"),
            ]);
        }
        println!("{}", table.render());
    }

    println!("--- stress: slow controller (4 s decisions), LR + Wordcount");
    {
        let scenarios = [
            ("stateless-only", 0u8),
            ("DPS (full)", 1),
            ("DPS no-freq", 2),
        ];
        let rows: Vec<(f64, f64)> = parallel_map(threads_from_env(), &scenarios, |&(_, mode)| {
            let mut cfg = base.clone();
            cfg.sim.period = 4.0;
            let kind = match mode {
                0 => ManagerKind::Slurm,
                2 => {
                    cfg.dps = cfg.dps.without_frequency_detection();
                    ManagerKind::Dps
                }
                _ => ManagerKind::Dps,
            };
            let a = find("LR").unwrap();
            let b = find("Wordcount").unwrap();
            let baseline = run_pair(a, b, ManagerKind::Constant, &cfg);
            let out = run_pair(a, b, kind, &cfg);
            (
                out.pair_speedup(baseline.a.hmean_duration(), baseline.b.hmean_duration()),
                out.fairness,
            )
        });
        let mut table = dps_metrics::Table::new(vec![
            "variant".into(),
            "pair speedup".into(),
            "fairness".into(),
        ]);
        for ((label, _), (speedup, fairness)) in scenarios.iter().zip(&rows) {
            table.row(vec![
                label.to_string(),
                pct(*speedup),
                format!("{fairness:.3}"),
            ]);
        }
        println!("{}", table.render());
    }

    // Perf-model alpha sweep: the substitution-sensitivity check.
    println!("--- perf-model sensitivity: GMM + EP, DPS vs SLURM across alpha");
    let alphas = [0.5, 0.7, 0.85, 1.0];
    let sweep: Vec<(f64, f64)> = parallel_map(threads_from_env(), &alphas, |&alpha| {
        let mut cfg = base.clone();
        cfg.sim.perf = PerfModel::new(alpha, cfg.sim.perf.idle_power);
        let a = find("GMM").unwrap();
        let b = find("EP").unwrap();
        let baseline = run_pair(a, b, ManagerKind::Constant, &cfg);
        let (ba, bb) = (baseline.a.hmean_duration(), baseline.b.hmean_duration());
        let slurm = run_pair(a, b, ManagerKind::Slurm, &cfg).pair_speedup(ba, bb);
        let dps = run_pair(a, b, ManagerKind::Dps, &cfg).pair_speedup(ba, bb);
        (slurm, dps)
    });
    let mut table = dps_metrics::Table::new(vec![
        "alpha".into(),
        "SLURM pair".into(),
        "DPS pair".into(),
        "DPS wins".into(),
    ]);
    for (&alpha, &(slurm, dps)) in alphas.iter().zip(&sweep) {
        table.row(vec![
            format!("{alpha:.2}"),
            pct(slurm),
            pct(dps),
            (dps > slurm).to_string(),
        ]);
    }
    println!("{}", table.render());
    println!("Findings: the stateless-only row reproduces SLURM's losses everywhere,");
    println!("and DPS > SLURM at every alpha — the headline result does not hinge on");
    println!("the substituted perf model. Among DPS's own mechanisms the cap-pinned");
    println!("\"needs power now\" signal carries the decisive weight (disabling it");
    println!("costs ~4 pp on GMM+EP); the Kalman filter and frequency gate are");
    println!("robustness features whose absence is not visible in these aggregate");
    println!("metrics at a 1-4 s decision period with RAPL-grade noise.");
}
