//! Extension study: does the result survive scale?
//!
//! §6.5 argues the DPS *controller* scales to tens of thousands of nodes;
//! this experiment checks that the *decision quality* scales too. The
//! GMM+EP pair runs on progressively larger clusters (the paper's 2×5×2
//! testbed up to 2×100×2 = 400 sockets) and reports each manager's pair
//! speedup, fairness, and the simulator's wall-clock cost per simulated
//! second.

use dps_cluster::run_pair;
use dps_core::manager::ManagerKind;
use dps_experiments::{banner, config_from_env, parallel_map, pct, threads_from_env};
use dps_rapl::Topology;
use dps_workloads::catalog::find;
use std::time::Instant;

fn main() {
    let mut base = config_from_env();
    base.reps = base.reps.min(3); // scale is the variable here, not variance
    banner("Scale sweep: GMM + EP from 20 to 400 sockets", &base);

    let nodes_per_cluster = [5usize, 10, 25, 50, 100];
    let managers = [ManagerKind::Slurm, ManagerKind::Dps];

    let tasks: Vec<(usize, ManagerKind)> = nodes_per_cluster
        .iter()
        .flat_map(|&n| managers.iter().map(move |&m| (n, m)))
        .collect();
    let results: Vec<(f64, f64, f64)> = parallel_map(threads_from_env(), &tasks, |&(n, kind)| {
        let mut cfg = base.clone();
        cfg.sim.topology = Topology::new(2, n, 2);
        let a = find("GMM").unwrap();
        let b = find("EP").unwrap();
        let start = Instant::now();
        let baseline = run_pair(a, b, ManagerKind::Constant, &cfg);
        let out = run_pair(a, b, kind, &cfg);
        let wall = start.elapsed().as_secs_f64();
        let sim_seconds = (baseline.steps + out.steps) as f64 * cfg.sim.period;
        (
            out.pair_speedup(baseline.a.hmean_duration(), baseline.b.hmean_duration()),
            out.fairness,
            wall / sim_seconds * 1e6, // µs of wall time per simulated second
        )
    });

    let mut table = dps_metrics::Table::new(vec![
        "sockets".into(),
        "SLURM pair".into(),
        "SLURM fair".into(),
        "DPS pair".into(),
        "DPS fair".into(),
        "us/sim-s".into(),
    ]);
    for (i, &n) in nodes_per_cluster.iter().enumerate() {
        let slurm = results[i * 2];
        let dps = results[i * 2 + 1];
        table.row(vec![
            (2 * n * 2).to_string(),
            pct(slurm.0),
            format!("{:.3}", slurm.1),
            pct(dps.0),
            format!("{:.3}", dps.1),
            format!("{:.0}", dps.2),
        ]);
    }
    println!("{}", table.render());
    println!("Expected shape: the DPS-over-SLURM gap and the fairness gap persist");
    println!("at every scale (the mechanisms are per-unit and cluster-aggregate,");
    println!("not tied to the testbed's 20 sockets); simulation cost grows roughly");
    println!("linearly with socket count.");
}
