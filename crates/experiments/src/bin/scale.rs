//! Extension study: does the result survive scale?
//!
//! §6.5 argues the DPS *controller* scales to tens of thousands of nodes;
//! this experiment checks that the *decision quality* scales too. The
//! GMM+EP pair runs on progressively larger clusters (the paper's 2×5×2
//! testbed up to 2×100×2 = 400 sockets) and reports each manager's pair
//! speedup, fairness, and the simulator's wall-clock cost per simulated
//! second.

use dps_cluster::run_pair;
use dps_core::config::{DpsConfig, StatsMode};
use dps_core::manager::{ManagerKind, PowerManager, UnitLimits};
use dps_core::{DpsManager, ShardedManager};
use dps_experiments::{banner, config_from_env, parallel_map, pct, threads_from_env};
use dps_rapl::Topology;
use dps_sim_core::rng::RngStream;
use dps_workloads::catalog::find;
use std::fmt::Write as _;
use std::time::Instant;

/// One measured manager-step timing cell.
struct BenchCell {
    config: &'static str,
    units: usize,
    mode: &'static str,
    cycles: usize,
    per_cycle_us: f64,
}

/// A step-bench scenario: a history window length plus a synthetic load.
#[derive(Clone, Copy)]
struct BenchConfig {
    name: &'static str,
    history_len: usize,
    load: Load,
}

#[derive(Clone, Copy)]
enum Load {
    /// Every unit ramps 40→160 W over 20 cycles with a per-unit phase
    /// offset — the fastest churn the paper's workloads show, and the same
    /// signal the `dps-bench` Criterion harness drives.
    Sawtooth,
    /// Long alternating low/high phases (hundreds of cycles, desynchronized
    /// across units) — the phase structure of real HPC workloads, and the
    /// regime a fine-grained telemetry window actually monitors.
    Phased,
}

/// Deterministic load driver for the step bench (no RNG: both statistics
/// modes must see bit-identical measurement streams).
struct Churn {
    load: Load,
    measured: Vec<f64>,
    caps: Vec<f64>,
    step: usize,
}

impl Churn {
    fn new(n: usize, load: Load) -> Self {
        Self {
            load,
            measured: vec![0.0; n],
            caps: vec![110.0; n],
            step: 0,
        }
    }

    fn drive(&mut self, mgr: &mut dyn PowerManager) {
        self.step += 1;
        for (u, m) in self.measured.iter_mut().enumerate() {
            let demand = match self.load {
                Load::Sawtooth => {
                    let phase = ((self.step + u) % 20) as f64 / 20.0;
                    40.0 + 120.0 * phase
                }
                Load::Phased => {
                    let period = 1200 + (u % 7) * 60;
                    let pos = (self.step + u * 37) % period;
                    if pos < period / 2 {
                        55.0 + (u % 7) as f64
                    } else {
                        92.0 + (u % 11) as f64
                    }
                }
            };
            *m = demand.min(self.caps[u]);
        }
        mgr.assign_caps(&self.measured, &mut self.caps, 1.0);
    }
}

fn dps_with_mode(n: usize, history_len: usize, mode: StatsMode) -> DpsManager {
    let limits = UnitLimits::xeon_gold_6240();
    let mut config = DpsConfig::default().with_stats_mode(mode);
    config.history_len = history_len;
    DpsManager::new(
        n,
        110.0 * n as f64,
        limits,
        config,
        RngStream::new(7, "scale/step-bench"),
    )
}

/// Shard count for the hierarchical cells.
const BENCH_SHARDS: usize = 16;

/// The smallest grid size that gets a hierarchical cell alongside the
/// flat incremental one.
const SHARDED_FROM_UNITS: usize = 262_144;

fn sharded_dps(n: usize, history_len: usize) -> ShardedManager {
    let limits = UnitLimits::xeon_gold_6240();
    let mut config = DpsConfig::default().with_stats_mode(StatsMode::Incremental);
    config.history_len = history_len;
    // The same threshold gates both the tree's shard fan-out (compared
    // against the fleet size) and each shard's internal classify threads
    // (compared against the shard size). Sitting between the two sizes
    // means: parallelize across the 16 shards, stay serial inside each —
    // one thread per shard, no nested oversubscription.
    config.parallel_threshold = 100_000;
    assert!(n / BENCH_SHARDS < config.parallel_threshold && config.parallel_threshold <= n);
    ShardedManager::new(
        n,
        110.0 * n as f64,
        limits,
        config,
        BENCH_SHARDS,
        RngStream::new(7, "scale/step-bench"),
    )
}

/// Times full DPS decision cycles under both statistics modes and writes
/// `results/BENCH_manager_scaling.json`. This is the wall-clock evidence
/// for the incremental-statistics speedup: `Rescan` is the pre-optimization
/// full-window path, `Incremental` the rolling-accumulator path. The
/// paper-default 20-sample window bounds the win from below (the stats are
/// a small share of that cycle); the telemetry configs show the windows a
/// production controller sampling at sub-second periods would keep, where
/// the O(window) rescans dominate and the incremental path pulls ahead.
///
/// The grid tops out at 2^18 and 2^20 units — the million-unit cells that
/// size the struct-of-arrays decision core. Those run incremental-only:
/// rescan at a 600-sample window costs O(window) per unit per cycle, which
/// at 2^20 units is minutes per cell for a number the 16384-unit pairs
/// already establish.
///
/// Knobs for CI and spot runs (a partial grid never overwrites the JSON):
///
/// * `DPS_BENCH_FILTER=<substr>` — run only configs whose name contains
///   the substring (e.g. `paper_default_w20`).
/// * `--units <n>` — skip cells larger than `n` units.
/// * `DPS_BENCH_MAX_CYCLE_US=<limit>` — fail (exit 1) if any measured
///   cell exceeds the limit; the CI scale-smoke job's wall-clock gate.
fn step_bench(max_units: Option<usize>) {
    let filter = std::env::var("DPS_BENCH_FILTER").ok();
    let max_cycle_us: Option<f64> = std::env::var("DPS_BENCH_MAX_CYCLE_US")
        .ok()
        .and_then(|v| v.parse().ok());
    let configs = [
        BenchConfig {
            name: "paper_default_w20",
            history_len: 20,
            load: Load::Sawtooth,
        },
        BenchConfig {
            name: "telemetry_w120",
            history_len: 120,
            load: Load::Phased,
        },
        BenchConfig {
            name: "telemetry_w600",
            history_len: 600,
            load: Load::Phased,
        },
    ];
    // (units, measured cycles, run the rescan mode too)
    let sizes: [(usize, usize, bool); 5] = [
        (64, 2_000, true),
        (1_024, 400, true),
        (16_384, 60, true),
        (262_144, 8, false),
        (1_048_576, 3, false),
    ];
    let modes = [
        (StatsMode::Incremental, "incremental"),
        (StatsMode::Rescan, "rescan"),
    ];

    let mut cells: Vec<BenchCell> = Vec::new();
    for cfg in &configs {
        if filter
            .as_ref()
            .is_some_and(|f| !cfg.name.contains(f.as_str()))
        {
            continue;
        }
        for &(n, cycles, with_rescan) in &sizes {
            if max_units.is_some_and(|cap| n > cap) {
                continue;
            }
            let mut variants: Vec<(&'static str, Box<dyn PowerManager>)> = Vec::new();
            for &(mode, label) in &modes {
                if !with_rescan && label == "rescan" {
                    continue;
                }
                variants.push((label, Box::new(dps_with_mode(n, cfg.history_len, mode))));
            }
            if n >= SHARDED_FROM_UNITS {
                variants.push(("sharded16", Box::new(sharded_dps(n, cfg.history_len))));
            }
            for (label, mut mgr) in variants {
                let mut churn = Churn::new(n, cfg.load);
                for _ in 0..(cfg.history_len + 64) {
                    churn.drive(mgr.as_mut());
                }
                let start = Instant::now();
                for _ in 0..cycles {
                    churn.drive(mgr.as_mut());
                }
                let wall = start.elapsed().as_secs_f64();
                let cell = BenchCell {
                    config: cfg.name,
                    units: n,
                    mode: label,
                    cycles,
                    per_cycle_us: wall / cycles as f64 * 1e6,
                };
                if let Some(limit) = max_cycle_us {
                    if cell.per_cycle_us > limit {
                        eprintln!(
                            "FAIL: {} @ {n} units ({label}) took {:.1} us/cycle, \
                             limit {limit:.1}",
                            cfg.name, cell.per_cycle_us
                        );
                        std::process::exit(1);
                    }
                }
                cells.push(cell);
            }
        }
    }

    let find_cell = |config: &str, units: usize, mode: &str| {
        cells
            .iter()
            .find(|c| c.config == config && c.units == units && c.mode == mode)
    };
    // Distinct (config, units) pairs in measurement order. Pairing by key
    // rather than position keeps the table and speedups correct when the
    // filter / --units cap or an incremental-only cell breaks adjacency.
    let mut keys: Vec<(&'static str, usize)> = Vec::new();
    for c in &cells {
        if !keys.contains(&(c.config, c.units)) {
            keys.push((c.config, c.units));
        }
    }

    let mut table = dps_metrics::Table::new(vec![
        "config".into(),
        "units".into(),
        "incremental us/cycle".into(),
        "inc ns/unit".into(),
        "rescan us/cycle".into(),
        "speedup".into(),
        "sharded16 us/cycle".into(),
        "tree speedup".into(),
    ]);
    let mut speedups: Vec<(&'static str, usize, f64)> = Vec::new();
    for &(config, units) in &keys {
        let Some(inc) = find_cell(config, units, "incremental") else {
            continue;
        };
        let res = find_cell(config, units, "rescan");
        let (res_text, speedup_text) = match res {
            Some(res) => {
                let speedup = res.per_cycle_us / inc.per_cycle_us;
                speedups.push((config, units, speedup));
                (format!("{:.1}", res.per_cycle_us), format!("{speedup:.2}x"))
            }
            None => ("-".to_string(), "-".to_string()),
        };
        // The hierarchical cells: same decision core, budget split across
        // a 16-shard tree (threaded shard fan-out under `parallel`).
        let (shd_text, tree_text) = match find_cell(config, units, "sharded16") {
            Some(shd) => (
                format!("{:.1}", shd.per_cycle_us),
                format!("{:.2}x", inc.per_cycle_us / shd.per_cycle_us),
            ),
            None => ("-".to_string(), "-".to_string()),
        };
        table.row(vec![
            config.to_string(),
            units.to_string(),
            format!("{:.1}", inc.per_cycle_us),
            format!("{:.1}", inc.per_cycle_us * 1e3 / units as f64),
            res_text,
            speedup_text,
            shd_text,
            tree_text,
        ]);
    }
    println!("DPS decision-cycle cost, incremental vs full-window rescan:");
    println!("{}", table.render());
    if let Some(limit) = max_cycle_us {
        println!(
            "all {} measured cell(s) within {limit:.0} us/cycle",
            cells.len()
        );
    }

    if filter.is_some() || max_units.is_some() {
        println!("partial grid (DPS_BENCH_FILTER / --units active); JSON not rewritten\n");
        return;
    }
    let mut json = String::from("{\n  \"experiment\": \"dps_manager_step_scaling\",\n");
    json.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let sep = if i + 1 == cells.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"config\": \"{}\", \"units\": {}, \"mode\": \"{}\", \"cycles\": {}, \"per_cycle_us\": {:.3}, \"per_unit_ns\": {:.1}}}{sep}",
            c.config,
            c.units,
            c.mode,
            c.cycles,
            c.per_cycle_us,
            c.per_cycle_us * 1e3 / c.units as f64,
        );
    }
    json.push_str("  ],\n  \"speedup_rescan_over_incremental\": [\n");
    for (i, (cfg, n, s)) in speedups.iter().enumerate() {
        let sep = if i + 1 == speedups.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"config\": \"{cfg}\", \"units\": {n}, \"speedup\": {s:.2}}}{sep}"
        );
    }
    json.push_str("  ]\n}\n");
    let _ = std::fs::create_dir_all("results");
    match std::fs::write("results/BENCH_manager_scaling.json", &json) {
        Ok(()) => println!("wrote results/BENCH_manager_scaling.json\n"),
        Err(e) => eprintln!("could not write results/BENCH_manager_scaling.json: {e}\n"),
    }
}

fn main() {
    // `--units <n>` caps the bench grid (see `step_bench`).
    let args: Vec<String> = std::env::args().collect();
    let max_units = args
        .iter()
        .position(|a| a == "--units")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok());
    step_bench(max_units);
    // DPS_BENCH_ONLY=1 runs just the step bench above — the decision-quality
    // sweep below costs minutes and its output is already in results/scale.txt.
    if std::env::var("DPS_BENCH_ONLY").is_ok() {
        return;
    }

    let mut base = config_from_env();
    base.reps = base.reps.min(3); // scale is the variable here, not variance
    banner("Scale sweep: GMM + EP from 20 to 400 sockets", &base);

    let nodes_per_cluster = [5usize, 10, 25, 50, 100];
    let managers = [ManagerKind::Slurm, ManagerKind::Dps];

    let tasks: Vec<(usize, ManagerKind)> = nodes_per_cluster
        .iter()
        .flat_map(|&n| managers.iter().map(move |&m| (n, m)))
        .collect();
    let results: Vec<(f64, f64, f64)> = parallel_map(threads_from_env(), &tasks, |&(n, kind)| {
        let mut cfg = base.clone();
        cfg.sim.topology = Topology::new(2, n, 2);
        let a = find("GMM").unwrap();
        let b = find("EP").unwrap();
        let start = Instant::now();
        let baseline = run_pair(a, b, ManagerKind::Constant, &cfg);
        let out = run_pair(a, b, kind, &cfg);
        let wall = start.elapsed().as_secs_f64();
        let sim_seconds = (baseline.steps + out.steps) as f64 * cfg.sim.period;
        (
            out.pair_speedup(baseline.a.hmean_duration(), baseline.b.hmean_duration()),
            out.fairness,
            wall / sim_seconds * 1e6, // µs of wall time per simulated second
        )
    });

    let mut table = dps_metrics::Table::new(vec![
        "sockets".into(),
        "SLURM pair".into(),
        "SLURM fair".into(),
        "DPS pair".into(),
        "DPS fair".into(),
        "us/sim-s".into(),
    ]);
    for (i, &n) in nodes_per_cluster.iter().enumerate() {
        let slurm = results[i * 2];
        let dps = results[i * 2 + 1];
        table.row(vec![
            (2 * n * 2).to_string(),
            pct(slurm.0),
            format!("{:.3}", slurm.1),
            pct(dps.0),
            format!("{:.3}", dps.1),
            format!("{:.0}", dps.2),
        ]);
    }
    println!("{}", table.render());
    println!("Expected shape: the DPS-over-SLURM gap and the fairness gap persist");
    println!("at every scale (the mechanisms are per-unit and cluster-aggregate,");
    println!("not tied to the testbed's 20 sockets); simulation cost grows roughly");
    println!("linearly with socket count.");
}
