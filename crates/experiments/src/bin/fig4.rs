//! Figure 4: Spark low-utility group.
//!
//! Each mid/high-power Spark workload paired with each of the four
//! low-power workloads (28 pairs), run under SLURM, DPS and the oracle.
//! Reports each mid/high workload's harmonic-mean speedup over the
//! constant-allocation baseline.
//!
//! Paper shape: DPS and the oracle improve 5–8 % on average; SLURM matches
//! them except on the high-frequency workloads (Linear, LR), where it can
//! fall below the constant baseline; DPS's maximum gain is on GMM (~17.6 %).

use dps_core::manager::ManagerKind;
use dps_experiments::{
    banner, config_from_env, grids, group_by_a, pct, render_speedup_bars, render_speedup_table,
    run_grid, threads_from_env,
};

fn main() {
    let config = config_from_env();
    banner("Figure 4: Spark low utility (28 pairs)", &config);

    let pairs = grids::spark_low_utility();
    let managers = [ManagerKind::Slurm, ManagerKind::Dps, ManagerKind::Oracle];
    let cells = run_grid(&pairs, &managers, &config, threads_from_env());

    let series = group_by_a(&cells, false);
    println!("Hmean speedup of each mid/high workload over constant 110 W (by manager):\n");
    println!("{}", render_speedup_table(&series, &managers));
    println!("{}", render_speedup_bars(&series, &managers));

    // Headline numbers.
    for m in &managers {
        let mean = series
            .mean_of_group_hmeans(&m.to_string())
            .unwrap_or(f64::NAN);
        let best = series
            .groups()
            .iter()
            .filter_map(|g| Some((g.clone(), series.hmean(g, &m.to_string())?)))
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
        if let Some((bg, bv)) = best {
            println!("{m}: mean {} | best {} on {bg}", pct(mean), pct(bv));
        }
    }
    // Workloads SLURM actively hurts (the paper calls out LR at -4.0%).
    let hurt: Vec<String> = series
        .groups()
        .iter()
        .filter(|g| series.hmean(g, "SLURM").map(|v| v < 1.0).unwrap_or(false))
        .cloned()
        .collect();
    println!("workloads slowed by SLURM (paper: LR, Linear): {hurt:?}");
    println!();
    println!("Expected shape (paper Fig. 4): DPS ≈ Oracle, +5-8% mean; SLURM similar");
    println!("except on high-frequency workloads (Linear, LR) where it can go negative.");
}
