//! Request-driven elastic provisioning: latency/SLO vs. watts.
//!
//! A seeded diurnal request stream (peak near the fleet's full service
//! capacity — scaled down from a service worth ~100M requests/day) drives
//! the same 2×4×2 partition under three fleet policies:
//!
//! * **static** — every node stays powered; the energy ceiling.
//! * **elastic** — the Ranjan-style reactive provisioner sizes the fleet
//!   from last window's utilization, with power-off hysteresis.
//! * **oracle** — sized each window from the *true* arrival rate; the
//!   latency-safe lower bound on fleet size.
//!
//! Every policy faces the bit-identical arrival stream (same seed), runs
//! under the DPS manager, and re-asserts the budget invariant on powered
//! units every cycle. The interesting trade: the elastic fleet should give
//! back a large share of the static fleet's joules per million requests
//! while keeping SLO attainment close, and the oracle bounds how much a
//! smarter predictor could still save.
//!
//! `DPS_QUICK=1` shrinks the diurnal period for CI smoke coverage.

use dps_cluster::{ClusterSim, ExperimentConfig};
use dps_core::manager::ManagerKind;
use dps_experiments::{banner, config_from_env};
use dps_metrics::csv;
use dps_metrics::requests::mean_power_w;
use dps_metrics::Table;
use dps_rapl::Topology;
use dps_sim_core::RngStream;
use dps_traffic::{
    OracleConfig, ProvisionerConfig, ProvisionerMode, TrafficConfig, TrafficPattern,
};

/// One policy's request-level results.
struct TrafficOutcome {
    label: &'static str,
    served: f64,
    attainment: f64,
    mean_latency: f64,
    p95_latency: f64,
    mean_active: f64,
    mean_power: f64,
    joules_per_million: f64,
    worst_margin: f64,
}

/// Runs one fleet policy over `cycles` windows and collects its outcome.
/// The DPS-vs-elastic run additionally dumps a fleet-size/backlog CSV.
fn run(
    config: &ExperimentConfig,
    label: &'static str,
    traffic: TrafficConfig,
    cycles: u64,
    dump_csv: bool,
) -> TrafficOutcome {
    let budget = config.sim.total_budget();
    let mut sim_cfg = config.sim.clone();
    sim_cfg.traffic = Some(traffic);
    // One shared rng label: every policy sees the identical arrival stream
    // and per-socket service variants.
    let rng = RngStream::new(config.seed, "traffic-experiment");
    let mut sim = ClusterSim::with_traffic(sim_cfg, config.build_manager(ManagerKind::Dps), &rng);

    let mut worst_margin = f64::NEG_INFINITY;
    let mut active_sum = 0.0;
    let mut timeline: Vec<(f64, f64, f64)> = Vec::new();
    for _ in 0..cycles {
        sim.cycle();
        // Budget invariant on powered units, every cycle — provisioning
        // churn must never let the caps outrun the budget.
        let occupied = sim.occupied_units().expect("traffic mode");
        let occupied_sum: f64 = sim
            .caps()
            .iter()
            .zip(occupied)
            .filter(|&(_, &occ)| occ)
            .map(|(&cap, _)| cap)
            .sum();
        worst_margin = worst_margin.max(occupied_sum - budget);
        assert!(
            occupied_sum <= budget + 1e-6,
            "powered caps {occupied_sum:.2} W exceed budget {budget:.2} W"
        );
        let driver = sim.traffic_driver().expect("traffic mode");
        active_sum += driver.active_nodes() as f64;
        if dump_csv {
            timeline.push((sim.now(), driver.active_nodes() as f64, driver.backlog()));
        }
    }

    if dump_csv {
        std::fs::create_dir_all("results").expect("create results dir");
        let rows: Vec<Vec<String>> = timeline
            .iter()
            .map(|&(t, nodes, backlog)| {
                vec![
                    format!("{t:.0}"),
                    format!("{nodes:.0}"),
                    format!("{backlog:.0}"),
                ]
            })
            .collect();
        std::fs::write(
            "results/traffic_fleet.csv",
            csv::render(&["time", "active_nodes", "backlog"], rows),
        )
        .expect("write fleet csv");
        println!("wrote results/traffic_fleet.csv (elastic run)\n");
    }

    let duration = cycles as f64 * config.sim.period;
    let stats = sim.request_stats().expect("traffic mode");
    TrafficOutcome {
        label,
        served: stats.served,
        attainment: stats.slo_attainment().unwrap_or(1.0),
        mean_latency: stats.mean_latency().unwrap_or(0.0),
        p95_latency: stats.latency_percentile(0.95).unwrap_or(0.0),
        mean_active: active_sum / cycles as f64,
        mean_power: mean_power_w(stats.joules, duration).unwrap_or(0.0),
        joules_per_million: stats.joules_per_million().unwrap_or(0.0),
        worst_margin,
    }
}

fn main() {
    let quick = std::env::var("DPS_QUICK").is_ok();
    // One full diurnal swing; the quick mode compresses the day so CI sees
    // the same trough→peak→trough shape in a fraction of the cycles.
    let (period, cycles, power_off_after) = if quick {
        (1_200.0, 1_200u64, 50.0)
    } else {
        (7_200.0, 7_200u64, 300.0)
    };
    let mut config = config_from_env();
    config.sim.topology = Topology::new(2, 4, 2);
    let total_sockets = config.sim.topology.total_units();
    let capacity_rps = 100.0;

    let mut base = TrafficConfig::default_diurnal(total_sockets, capacity_rps);
    base.pattern = TrafficPattern::Diurnal {
        base_rps: 0.25 * total_sockets as f64 * capacity_rps,
        peak_rps: 0.85 * total_sockets as f64 * capacity_rps,
        period,
        // Start at the trough so the run covers a full swing.
        phase: 0.0,
    };
    base.milestone_every = 50_000;

    banner("Request-driven elastic provisioning (2x4x2)", &config);
    let full = total_sockets as f64 * capacity_rps;
    println!(
        "diurnal {:.0}..{:.0} rps over {period:.0} s (fleet capacity {full:.0} rps, \
         ~{:.0}M requests/day at peak), SLO {:.0} s, identical stream per policy\n",
        0.25 * full,
        0.85 * full,
        0.85 * full * 86_400.0 / 1e6,
        base.slo_latency,
    );

    let policies: Vec<(&'static str, ProvisionerMode, bool)> = vec![
        ("static", ProvisionerMode::Static, false),
        (
            "elastic",
            ProvisionerMode::Reactive(ProvisionerConfig {
                target_utilization: 0.7,
                headroom_nodes: 1,
                power_off_after,
                min_nodes: 1,
            }),
            true,
        ),
        (
            "oracle",
            ProvisionerMode::Oracle(OracleConfig {
                target_utilization: 0.7,
                headroom_nodes: 0,
                min_nodes: 1,
            }),
            false,
        ),
    ];

    let mut table = Table::new(vec![
        "Policy".into(),
        "Served".into(),
        "SLO att".into(),
        "Mean lat (s)".into(),
        "p95 lat (s)".into(),
        "Mean nodes".into(),
        "Mean power (W)".into(),
        "J/Mreq".into(),
        "Worst margin (W)".into(),
    ]);
    let mut outcomes = Vec::new();
    for (label, mode, dump_csv) in policies {
        let mut traffic = base.clone();
        traffic.provisioner = mode;
        let out = run(&config, label, traffic, cycles, dump_csv);
        table.row(vec![
            out.label.to_string(),
            format!("{:.0}", out.served),
            format!("{:.4}", out.attainment),
            format!("{:.2}", out.mean_latency),
            format!("{:.2}", out.p95_latency),
            format!("{:.2}", out.mean_active),
            format!("{:.0}", out.mean_power),
            format!("{:.0}", out.joules_per_million),
            format!("{:+.2}", out.worst_margin),
        ]);
        outcomes.push(out);
    }
    let rendered = table.render();
    println!("{rendered}");

    let mut report = String::new();
    report.push_str("Request-driven elastic provisioning: latency/SLO vs. watts\n\n");
    report.push_str(&rendered);
    if let (Some(st), Some(el)) = (
        outcomes.iter().find(|o| o.label == "static"),
        outcomes.iter().find(|o| o.label == "elastic"),
    ) {
        let saved = (1.0 - el.joules_per_million / st.joules_per_million) * 100.0;
        let line = format!(
            "\nelastic vs static: {saved:.1}% less energy per request, \
             SLO attainment {:.4} vs {:.4}\n",
            el.attainment, st.attainment
        );
        report.push_str(&line);
        println!("{line}");
    }
    report.push_str(
        "\nExpected shape: the static fleet burns idle watts all night and sets the\n\
         J/Mreq ceiling; the reactive fleet follows the diurnal swing (hysteresis\n\
         keeps it from flapping) and gives back most of that energy at near-equal\n\
         SLO attainment; the oracle bounds the remaining gap. Budget margins never\n\
         go positive on any cycle — provisioning churn never breaks budget safety.\n",
    );
    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::write("results/traffic.txt", &report).expect("write results/traffic.txt");
    println!("wrote results/traffic.txt");
}
