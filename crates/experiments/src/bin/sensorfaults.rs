//! Sensor/actuator fault injection: DPS with and without the telemetry
//! guard.
//!
//! The paper's evaluation assumes RAPL telemetry and cap writes are honest.
//! This experiment injects each fault class of the taxonomy (frozen sensor,
//! NaN dropout, calibration drift, spike bursts, corrupted energy counters;
//! dropped, clamped and delayed cap writes) into one unit of a DPS-managed
//! cluster pair and compares the raw controller against the guarded one
//! (`DpsManager::with_guard`): satisfaction achieved, guard counters
//! (rejections, quarantines, readmissions, write mismatches), and the
//! budget-safety margin on the caps actually in force at the hardware.
//!
//! `DPS_QUICK=1` shortens the run for CI smoke coverage.

use dps_cluster::{ClusterSim, ExperimentConfig, SimConfig};
use dps_core::manager::{ManagerKind, PowerManager, UnitLimits};
use dps_core::{DpsManager, GuardConfig};
use dps_experiments::{banner, config_from_env};
use dps_rapl::{
    ActuatorFault, SensorFault, Topology, UnitFault, UnitFaultEvent, UnitFaultSchedule,
};
use dps_sim_core::RngStream;
use dps_workloads::{DemandProgram, Phase};

/// One cluster runs hot (throttled by the budget), the other cool.
fn programs(duration: f64) -> Vec<DemandProgram> {
    vec![
        DemandProgram::new(vec![Phase::constant(duration, 150.0)]),
        DemandProgram::new(vec![Phase::constant(duration, 60.0)]),
    ]
}

/// The fault classes under test, each hitting unit 0 for the middle 40 % of
/// the run.
fn fault_classes() -> Vec<(&'static str, UnitFault)> {
    vec![
        (
            "stuck-at 90 W",
            UnitFault::Sensor(SensorFault::StuckAt { value: 90.0 }),
        ),
        ("dropout (NaN)", UnitFault::Sensor(SensorFault::Dropout)),
        (
            "drift +0.5 W/s",
            UnitFault::Sensor(SensorFault::Drift { rate: 0.5 }),
        ),
        (
            "spike bursts ±400 W",
            UnitFault::Sensor(SensorFault::SpikeBurst {
                magnitude: 400.0,
                prob: 0.3,
            }),
        ),
        (
            "counter corruption",
            UnitFault::Sensor(SensorFault::CounterCorrupt { prob: 0.2 }),
        ),
        (
            "cap writes dropped",
            UnitFault::Actuator(ActuatorFault::DropWrites),
        ),
        (
            "cap writes clamped [100, 120]",
            UnitFault::Actuator(ActuatorFault::ClampWrites {
                floor: 100.0,
                ceil: 120.0,
            }),
        ),
        (
            "cap writes delayed 5 s",
            UnitFault::Actuator(ActuatorFault::DelayWrites { delay: 5.0 }),
        ),
    ]
}

fn schedule_for(fault: UnitFault, t_end: f64) -> UnitFaultSchedule {
    let (at, until) = (0.2 * t_end, 0.6 * t_end);
    UnitFaultSchedule::new(vec![match fault {
        UnitFault::Sensor(s) => UnitFaultEvent::sensor(0, at, until, s),
        UnitFault::Actuator(a) => UnitFaultEvent::actuator(0, at, until, a),
    }])
}

fn build_dps(
    sim_cfg: &SimConfig,
    config: &ExperimentConfig,
    guarded: bool,
) -> Box<dyn PowerManager> {
    let n = sim_cfg.topology.total_units();
    let budget = sim_cfg.total_budget();
    let limits = UnitLimits {
        min_cap: sim_cfg.domain_spec.min_cap,
        max_cap: sim_cfg.domain_spec.tdp,
    };
    let rng = RngStream::new(config.seed, &format!("manager/{}", ManagerKind::Dps));
    if guarded {
        Box::new(DpsManager::with_guard(
            n,
            budget,
            limits,
            config.dps,
            GuardConfig::default(),
            rng,
        ))
    } else {
        Box::new(DpsManager::new(n, budget, limits, config.dps, rng))
    }
}

struct RunReport {
    satisfaction_hot: f64,
    satisfaction_cool: f64,
    worst_applied_margin: f64,
    quarantines: u64,
    readmissions: u64,
    rejected: u64,
    mismatches: u64,
}

fn run(fault: UnitFault, config: &ExperimentConfig, cycles: u64, guarded: bool) -> RunReport {
    let mut sim_cfg = config.sim.clone();
    sim_cfg.topology = Topology::new(2, 2, 2);
    let t_end = cycles as f64 * sim_cfg.period;
    sim_cfg.sensor_faults = schedule_for(fault, t_end);
    sim_cfg.validate().expect("valid experiment config");

    let budget = sim_cfg.total_budget();
    let manager = build_dps(&sim_cfg, config, guarded);
    let mut sim = ClusterSim::new(
        sim_cfg,
        programs(t_end),
        manager,
        &RngStream::new(config.seed, "sensorfaults-experiment"),
    );

    let mut worst = f64::NEG_INFINITY;
    for _ in 0..cycles {
        sim.cycle();
        // What the hardware actually enforces, not what was requested:
        // actuator faults make these diverge.
        let applied_sum: f64 = sim.applied_caps().iter().sum();
        worst = worst.max(applied_sum - budget);
    }

    let stats = sim.guard_stats().unwrap_or_default();
    RunReport {
        satisfaction_hot: sim.satisfaction(0),
        satisfaction_cool: sim.satisfaction(1),
        worst_applied_margin: worst,
        quarantines: stats.quarantine_entries,
        readmissions: stats.readmissions,
        rejected: stats.rejected_samples,
        mismatches: stats.write_mismatches,
    }
}

fn main() {
    let config = config_from_env();
    banner("Sensor/actuator fault injection (DPS, 2x2x2)", &config);

    let cycles: u64 = if std::env::var("DPS_QUICK").is_ok() {
        300
    } else {
        2_000
    };

    println!(
        "{:<30} {:>10} {:>10} {:>10} {:>8} {:>6} {:>6} {:>6}",
        "fault class (unit 0, mid-run)",
        "sat(hot)",
        "sat(cool)",
        "margin W",
        "reject",
        "quar",
        "readm",
        "wmis"
    );
    for (label, fault) in fault_classes() {
        for guarded in [false, true] {
            let r = run(fault, &config, cycles, guarded);
            println!(
                "{:<30} {:>10.4} {:>10.4} {:>+10.2} {:>8} {:>6} {:>6} {:>6}",
                format!("{label}{}", if guarded { " +guard" } else { "" }),
                r.satisfaction_hot,
                r.satisfaction_cool,
                r.worst_applied_margin,
                r.rejected,
                r.quarantines,
                r.readmissions,
                r.mismatches
            );
        }
    }

    println!();
    println!("Expected shape: unguarded DPS feeds corrupted telemetry straight into the");
    println!("Kalman filters (stuck/drift/spikes skew the hot cluster's allocation, NaN");
    println!("poisons it outright); the guard rejects bad samples, quarantines the unit");
    println!("at its constant-allocation fallback, and readmits it after the fault");
    println!("clears. Actuator faults leave telemetry clean but make the applied caps");
    println!("diverge from the requested ones — write verification flags the unit and");
    println!("the believed-cap accounting keeps the enforced sum at or under budget");
    println!("(clamp-up faults can overshoot for at most one readback cycle).");
}
