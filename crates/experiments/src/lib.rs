//! Shared harness for the experiment binaries.
//!
//! Each binary regenerates one of the paper's tables or figures. This
//! library holds what they share: environment-configurable experiment
//! parameters, the pair grids of §5.2, a parallel grid runner, and the
//! speedup bookkeeping of the artifact appendix ("the speedup of a workload
//! in a pair ... is calculated as the baseline divided by the workload's
//! harmonic mean throughput time in that group", with the baseline taken
//! from the constant-allocation runs).
//!
//! Environment knobs (all optional):
//!
//! * `DPS_SEED`   — master seed (default 42).
//! * `DPS_REPS`   — repetitions per workload pair (default 10, the paper's
//!   "repeated at least 10 times"). Set small (e.g. 2) for quick runs.
//! * `DPS_QUICK`  — if set, forces `reps = 2` (the artifact's toy mode).
//! * `DPS_THREADS`— worker threads for grid runs (default: all cores).

#![warn(missing_docs)]

use dps_cluster::{run_pair, ExperimentConfig, PairOutcome};
use dps_core::manager::ManagerKind;
use dps_metrics::GroupedSeries;
use dps_sim_core::stats;
use dps_workloads::catalog::{low_power_spark, mid_high_spark, npb, WorkloadSpec};

/// One (pair, manager) grid cell result, with its constant baseline.
#[derive(Debug, Clone)]
pub struct CellResult {
    /// Cluster 0's workload name.
    pub a: String,
    /// Cluster 1's workload name.
    pub b: String,
    /// Outcome under the cell's manager.
    pub outcome: PairOutcome,
    /// Constant-allocation baseline hmean durations for (a, b).
    pub baseline_a: f64,
    /// See `baseline_a`.
    pub baseline_b: f64,
}

impl CellResult {
    /// Speedup of workload `a` over the constant baseline.
    pub fn speedup_a(&self) -> f64 {
        self.outcome.speedup_a(self.baseline_a)
    }

    /// Speedup of workload `b` over the constant baseline.
    pub fn speedup_b(&self) -> f64 {
        self.outcome.speedup_b(self.baseline_b)
    }

    /// Harmonic mean of the pair's speedups.
    pub fn pair_speedup(&self) -> f64 {
        self.outcome.pair_speedup(self.baseline_a, self.baseline_b)
    }
}

/// Builds the experiment configuration from the environment.
pub fn config_from_env() -> ExperimentConfig {
    let seed = std::env::var("DPS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);
    let mut reps = std::env::var("DPS_REPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(10);
    if std::env::var("DPS_QUICK").is_ok() {
        reps = 2;
    }
    ExperimentConfig::paper_default(seed, reps)
}

/// Worker-thread count from the environment (default: all cores).
pub fn threads_from_env() -> usize {
    std::env::var("DPS_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
        })
        .max(1)
}

pub mod scenarios;

/// The three pair grids of §5.2.
pub mod grids {
    use super::*;

    /// Spark low utility: each mid/high workload paired with each low-power
    /// workload (7 × 4 = 28 pairs).
    pub fn spark_low_utility() -> Vec<(&'static WorkloadSpec, &'static WorkloadSpec)> {
        let mut pairs = Vec::new();
        for a in mid_high_spark() {
            for b in low_power_spark() {
                pairs.push((a, b));
            }
        }
        pairs
    }

    /// Spark high utility: mid/high × mid/high (7 × 7 = 49 pairs).
    pub fn spark_high_utility() -> Vec<(&'static WorkloadSpec, &'static WorkloadSpec)> {
        let mut pairs = Vec::new();
        for a in mid_high_spark() {
            for b in mid_high_spark() {
                pairs.push((a, b));
            }
        }
        pairs
    }

    /// Spark × NPB: every mid/high Spark workload with every NPB workload
    /// (7 × 8 = 56 pairs).
    pub fn spark_npb() -> Vec<(&'static WorkloadSpec, &'static WorkloadSpec)> {
        let mut pairs = Vec::new();
        for a in mid_high_spark() {
            for b in npb() {
                pairs.push((a, b));
            }
        }
        pairs
    }
}

/// Runs a full grid: every pair under the constant baseline plus every
/// manager in `managers`, in parallel across `threads` workers. Returns one
/// [`CellResult`] per (pair, manager).
pub fn run_grid(
    pairs: &[(&'static WorkloadSpec, &'static WorkloadSpec)],
    managers: &[ManagerKind],
    config: &ExperimentConfig,
    threads: usize,
) -> Vec<CellResult> {
    // Task list: baseline first per pair, then each manager. To keep the
    // parallel schedule simple, each task computes its own baseline run —
    // the constant run is cheap relative to the grid and the runs are
    // deterministic, so recomputation is exact.
    #[derive(Clone, Copy)]
    struct Task {
        pair_idx: usize,
        kind: ManagerKind,
    }
    let tasks: Vec<Task> = (0..pairs.len())
        .flat_map(|pair_idx| managers.iter().map(move |&kind| Task { pair_idx, kind }))
        .collect();

    // Baselines computed once per pair, in parallel.
    let baselines: Vec<(f64, f64)> = parallel_map(threads, pairs, |&(a, b)| {
        let outcome = run_pair(a, b, ManagerKind::Constant, config);
        (outcome.a.hmean_duration(), outcome.b.hmean_duration())
    });

    parallel_map(threads, &tasks, |task| {
        let (a, b) = pairs[task.pair_idx];
        let outcome = run_pair(a, b, task.kind, config);
        let (baseline_a, baseline_b) = baselines[task.pair_idx];
        CellResult {
            a: a.name.to_string(),
            b: b.name.to_string(),
            outcome,
            baseline_a,
            baseline_b,
        }
    })
}

/// Simple static-partition parallel map over a slice (scoped threads;
/// results keep input order).
pub fn parallel_map<T: Sync, R: Send>(
    threads: usize,
    items: &[T],
    f: impl Fn(&T) -> R + Sync,
) -> Vec<R> {
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = threads.min(n).max(1);
    let mut results: Vec<Option<R>> = (0..n).map(|_| None).collect();
    let chunk = n.div_ceil(threads);

    std::thread::scope(|scope| {
        for (slot_chunk, item_chunk) in results.chunks_mut(chunk).zip(items.chunks(chunk)) {
            let f = &f;
            scope.spawn(move || {
                for (slot, item) in slot_chunk.iter_mut().zip(item_chunk) {
                    *slot = Some(f(item));
                }
            });
        }
    });

    results
        .into_iter()
        .map(|r| r.expect("slot filled"))
        .collect()
}

/// Accumulates grid cells into a per-`a`-workload speedup series (the
/// Fig. 4 / 5(a) / 6(a) shape): group = workload `a`, series = manager,
/// value = workload `a`'s own speedup (`pair` = false) or the pair's
/// harmonic-mean speedup (`pair` = true).
pub fn group_by_a(cells: &[CellResult], pair: bool) -> GroupedSeries {
    let mut g = GroupedSeries::new();
    for cell in cells {
        let v = if pair {
            cell.pair_speedup()
        } else {
            cell.speedup_a()
        };
        if v.is_finite() {
            g.push(&cell.a, &cell.outcome.manager.to_string(), v);
        }
    }
    g
}

/// Like [`group_by_a`] but grouped by workload `b` (Fig. 6(b)).
pub fn group_by_b(cells: &[CellResult], pair: bool) -> GroupedSeries {
    let mut g = GroupedSeries::new();
    for cell in cells {
        let v = if pair {
            cell.pair_speedup()
        } else {
            cell.speedup_b()
        };
        if v.is_finite() {
            g.push(&cell.b, &cell.outcome.manager.to_string(), v);
        }
    }
    g
}

/// Renders a grouped speedup table with one column per manager plus a mean
/// row, matching the bar charts' content.
pub fn render_speedup_table(series: &GroupedSeries, managers: &[ManagerKind]) -> String {
    let mut headers = vec!["Workload".to_string()];
    headers.extend(managers.iter().map(|m| m.to_string()));
    let mut table = dps_metrics::Table::new(headers);
    for group in series.groups().to_vec() {
        let values: Vec<f64> = managers
            .iter()
            .map(|m| series.hmean(&group, &m.to_string()).unwrap_or(f64::NAN))
            .collect();
        table.row_f64(&group, &values, 3);
    }
    let means: Vec<f64> = managers
        .iter()
        .map(|m| {
            series
                .mean_of_group_hmeans(&m.to_string())
                .unwrap_or(f64::NAN)
        })
        .collect();
    table.row_f64("MEAN", &means, 3);
    table.render()
}

/// Renders the grouped speedups as an ASCII bar chart anchored at 1.0 (the
/// constant baseline) — the figures' visual shape in a terminal.
pub fn render_speedup_bars(series: &GroupedSeries, managers: &[ManagerKind]) -> String {
    let mut chart = dps_metrics::BarChart::new(1.0, 24);
    for group in series.groups() {
        for m in managers {
            if let Some(v) = series.hmean(group, &m.to_string()) {
                chart.bar(group, &m.to_string(), v);
            }
        }
    }
    chart.render()
}

/// Mean-of-pairs fairness per manager across grid cells.
pub fn fairness_by_manager(cells: &[CellResult]) -> GroupedSeries {
    let mut g = GroupedSeries::new();
    for cell in cells {
        g.push(
            &cell.outcome.manager.to_string(),
            "fairness",
            cell.outcome.fairness,
        );
    }
    g
}

/// Standard banner for experiment binaries.
pub fn banner(title: &str, config: &ExperimentConfig) {
    println!("=== {title} ===");
    println!(
        "seed={} reps={} topology={}x{}x{} budget={:.0} W ({:.1} W/socket)",
        config.seed,
        config.reps,
        config.sim.topology.clusters,
        config.sim.topology.nodes_per_cluster,
        config.sim.topology.sockets_per_node,
        config.sim.total_budget(),
        config.sim.total_budget() / config.sim.topology.total_units() as f64,
    );
    println!();
}

/// Summary helper: percentage gain string from a speedup.
pub fn pct(speedup: f64) -> String {
    format!("{:+.1}%", (speedup - 1.0) * 100.0)
}

/// Hmean of a slice with NaN filtering (for report summaries).
pub fn clean_hmean(values: &[f64]) -> f64 {
    let clean: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    stats::harmonic_mean(&clean).unwrap_or(f64::NAN)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grids_match_paper_counts() {
        assert_eq!(grids::spark_low_utility().len(), 28);
        assert_eq!(grids::spark_high_utility().len(), 49);
        assert_eq!(grids::spark_npb().len(), 56);
    }

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        let doubled = parallel_map(7, &items, |&x| x * 2);
        assert_eq!(doubled, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_empty() {
        let out: Vec<u32> = parallel_map(4, &[] as &[u32], |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn parallel_map_single_thread() {
        let items = [1, 2, 3];
        assert_eq!(parallel_map(1, &items, |&x| x + 1), vec![2, 3, 4]);
    }

    #[test]
    fn pct_formats_sign() {
        assert_eq!(pct(1.08), "+8.0%");
        assert_eq!(pct(0.92), "-8.0%");
    }

    #[test]
    fn clean_hmean_filters_nan() {
        let v = [1.0, f64::NAN, 4.0];
        assert!((clean_hmean(&v) - 1.6).abs() < 1e-12);
        assert!(clean_hmean(&[f64::NAN]).is_nan());
    }
}
