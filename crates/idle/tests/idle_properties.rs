//! Property tests on the idle subsystem's two load-bearing guarantees.
//!
//! * The predictor's perturbation is *bounded*: whatever the stream
//!   position, a prediction never leaves `base × [1 − e, 1 + e]` (clamped
//!   at zero). The learning-augmented analysis assumes exactly this.
//! * Classical ski rental is 2-competitive: on *any* gap — including the
//!   adversarial ones planted a hair past each break-even, where the
//!   cascade has just paid a wake premium it can no longer amortise — the
//!   policy's cost never exceeds twice the offline optimal.

use dps_idle::{GapPredictor, IdlePolicy, PredictorConfig, SleepCatalog};
use dps_sim_core::RngStream;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Predictions stay inside the configured relative-error band around
    /// the EWMA base, for arbitrary error bounds, observed gaps, and
    /// stream positions.
    #[test]
    fn predictor_error_respects_the_configured_bound(
        error in 0.0f64..3.0,
        gaps in prop::collection::vec(0.0f64..5_000.0, 0..30),
        seed in 0u64..1_000,
        draws_before in 0usize..50,
    ) {
        let config = PredictorConfig { error, ..PredictorConfig::default() };
        let mut predictor = GapPredictor::new(1, config);
        for &gap in &gaps {
            predictor.observe(0, gap);
        }
        let mut rng = RngStream::new(seed, "idle-prop/predictor");
        // Arbitrary stream position: the bound is per-draw, not per-seed.
        for _ in 0..draws_before {
            rng.uniform();
        }
        let base = predictor.base(0);
        let prediction = predictor.predict(0, &mut rng);
        let lo = (base * (1.0 - error)).max(0.0);
        let hi = base * (1.0 + error);
        prop_assert!(
            (lo - 1e-9..=hi + 1e-9).contains(&prediction),
            "prediction {prediction} outside [{lo}, {hi}] (base {base}, error {error})"
        );
    }

    /// Ski rental never exceeds 2× the offline-optimal cost, on gaps drawn
    /// adversarially around the break-even points (where the bound is
    /// tight) as well as uniformly.
    #[test]
    fn ski_rental_is_two_competitive_on_adversarial_gaps(
        state_idx in 0usize..4,
        nudge in -0.5f64..20.0,
        uniform_gap in 0.0f64..100_000.0,
    ) {
        let catalog = SleepCatalog::xeon_c_states();
        let policy = IdlePolicy::SkiRental;
        // An adversarial gap: just short of / exactly at / just past a
        // state's break-even, where the cascade has paid for a state it
        // barely (or never) gets to use.
        let break_even = catalog.break_even_times()[state_idx];
        for gap in [(break_even + nudge).max(0.0), uniform_gap] {
            let cost = policy.cost(&catalog, 0.0, gap);
            let opt = catalog.offline_optimal_cost(gap);
            prop_assert!(
                cost <= 2.0 * opt + 1e-9,
                "gap {gap}: ski rental {cost} J > 2x optimal {opt} J"
            );
        }
    }
}
