//! Idle policies: when to demote an idle unit through the sleep ladder.
//!
//! A policy compiles, at the moment a unit goes idle, a *demotion
//! schedule*: the ordered `(enter_time, state)` pairs the unit will walk
//! while it stays idle. Three policies are provided:
//!
//! * **Fixed timeout** — the classic DPM heuristic: linger in the
//!   shallowest state for a fixed timeout, then drop straight to the
//!   deepest. No guarantees; the baseline the others are measured against.
//! * **Ski rental** — follow the lower envelope of the state cost lines:
//!   enter state `i` at its break-even time `t_i`. For any idle duration
//!   `T` the online cost is `∫₀ᵀ p_env(t) dt + e_{env(T)}`; the integral
//!   telescopes to exactly `OPT(T)` (the envelope's derivative is the
//!   optimal state's power and `e_0 = 0`), and the wake term is at most
//!   `OPT(T)`, so the policy is **2-competitive** — the bound the
//!   adversarial proptest pins.
//! * **Learning augmented** — the consistency/robustness tradeoff from the
//!   multi-state ski-rental bounds: with prediction `τ̂` and trust
//!   `λ ∈ (0, 1]`, state `i`'s entry moves *earlier* (`λ·t_i`) when the
//!   advice says the gap will reach it (`τ̂ ≥ t_i`) and *later* (`t_i/λ`)
//!   when it says it will not. `λ = 1` degenerates to classical ski
//!   rental; smaller `λ` trusts the advice harder, approaching offline
//!   optimal on perfect predictions while every entry time stays within
//!   `[λ·t_i, t_i/λ]`, which keeps the worst case within `(2/λ)·OPT`.

use crate::state::SleepCatalog;
use dps_sim_core::units::{Joules, Seconds};
use serde::{Deserialize, Serialize};

/// Which demotion policy an [`crate::IdleFleet`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum IdlePolicy {
    /// Shallowest state until `timeout_s`, then straight to the deepest.
    FixedTimeout {
        /// Idle seconds spent in the shallowest state before dropping.
        timeout_s: Seconds,
    },
    /// Classical break-even cascade along the lower envelope
    /// (2-competitive, prediction-free).
    SkiRental,
    /// Prediction-guided cascade with trust parameter `lambda`.
    LearningAugmented {
        /// Trust in the predictor, in `(0, 1]`: 1 ignores the advice
        /// (classical ski rental), smaller values follow it harder.
        lambda: f64,
    },
}

impl IdlePolicy {
    /// Checks the policy parameters.
    pub fn validate(&self) -> Result<(), String> {
        match *self {
            IdlePolicy::FixedTimeout { timeout_s } => {
                if !(timeout_s.is_finite() && timeout_s >= 0.0) {
                    return Err(format!("timeout_s must be ≥ 0, got {timeout_s}"));
                }
            }
            IdlePolicy::SkiRental => {}
            IdlePolicy::LearningAugmented { lambda } => {
                if !(lambda.is_finite() && 0.0 < lambda && lambda <= 1.0) {
                    return Err(format!("lambda must be in (0, 1], got {lambda}"));
                }
            }
        }
        Ok(())
    }

    /// Whether the policy consumes predictions (drives whether
    /// `PredictorSample` events are worth emitting).
    pub fn uses_predictions(&self) -> bool {
        matches!(self, IdlePolicy::LearningAugmented { .. })
    }

    /// Short display name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            IdlePolicy::FixedTimeout { .. } => "fixed-timeout",
            IdlePolicy::SkiRental => "ski-rental",
            IdlePolicy::LearningAugmented { .. } => "learning-augmented",
        }
    }

    /// Compiles the demotion schedule for one idle period: strictly the
    /// `(enter_time, state)` pairs in entry order, starting at
    /// `(0, state 0)`. `prediction` is the advised gap length (used by the
    /// learning-augmented policy only).
    pub fn schedule(&self, catalog: &SleepCatalog, prediction: Seconds) -> Vec<(Seconds, usize)> {
        match *self {
            IdlePolicy::FixedTimeout { timeout_s } => {
                let mut sched = vec![(0.0, 0)];
                if catalog.len() > 1 {
                    if timeout_s == 0.0 {
                        sched[0] = (0.0, catalog.deepest());
                    } else {
                        sched.push((timeout_s, catalog.deepest()));
                    }
                }
                sched
            }
            IdlePolicy::SkiRental => catalog
                .break_even_times()
                .into_iter()
                .enumerate()
                .map(|(i, t)| (t, i))
                .collect(),
            IdlePolicy::LearningAugmented { lambda } => {
                let mut sched = Vec::with_capacity(catalog.len());
                let mut prev = 0.0;
                for (i, t) in catalog.break_even_times().into_iter().enumerate() {
                    let shifted = if prediction >= t {
                        lambda * t
                    } else {
                        t / lambda
                    };
                    // Entry times must stay ordered; a later state whose
                    // shifted entry would precede an earlier one simply
                    // waits for it.
                    let t = shifted.max(prev);
                    prev = t;
                    sched.push((t, i));
                }
                sched
            }
        }
    }

    /// The cost this policy pays on an idle period of length `gap`:
    /// residency power integrated along the schedule plus the wake energy
    /// of the state occupied when the arrival lands.
    pub fn cost(&self, catalog: &SleepCatalog, prediction: Seconds, gap: Seconds) -> Joules {
        schedule_cost(catalog, &self.schedule(catalog, prediction), gap)
    }
}

/// Evaluates a demotion schedule against an idle period of length `gap`.
pub fn schedule_cost(
    catalog: &SleepCatalog,
    schedule: &[(Seconds, usize)],
    gap: Seconds,
) -> Joules {
    let states = catalog.states();
    let mut cost = 0.0;
    let mut occupied = schedule[0].1;
    for (k, &(enter, state)) in schedule.iter().enumerate() {
        if enter >= gap {
            break;
        }
        let leave = schedule.get(k + 1).map_or(gap, |&(t, _)| t.min(gap));
        cost += states[state].idle_power_w * (leave - enter);
        occupied = state;
    }
    cost + states[occupied].wake_energy_j
}

#[cfg(test)]
mod tests {
    use super::*;

    fn catalog() -> SleepCatalog {
        SleepCatalog::xeon_c_states()
    }

    #[test]
    fn ski_rental_schedule_is_the_break_even_cascade() {
        let c = catalog();
        let sched = IdlePolicy::SkiRental.schedule(&c, 0.0);
        assert_eq!(sched.len(), 4);
        assert_eq!(sched[0], (0.0, 0));
        let t = c.break_even_times();
        for (i, &(enter, state)) in sched.iter().enumerate() {
            assert_eq!(state, i);
            assert!((enter - t[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn lambda_one_is_classical_ski_rental() {
        let c = catalog();
        let classical = IdlePolicy::SkiRental.schedule(&c, 0.0);
        for pred in [0.0, 1.0, 20.0, 1e6] {
            let la = IdlePolicy::LearningAugmented { lambda: 1.0 }.schedule(&c, pred);
            assert_eq!(la, classical);
        }
    }

    #[test]
    fn trusting_a_long_prediction_enters_deep_states_early() {
        let c = catalog();
        let la = IdlePolicy::LearningAugmented { lambda: 0.25 }.schedule(&c, 1e6);
        let t = c.break_even_times();
        for (i, &(enter, _)) in la.iter().enumerate() {
            assert!((enter - 0.25 * t[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn distrusting_a_short_prediction_delays_deep_states() {
        let c = catalog();
        let la = IdlePolicy::LearningAugmented { lambda: 0.5 }.schedule(&c, 1.0);
        let t = c.break_even_times();
        // Prediction 1 s < every positive break-even: all delayed by 1/λ.
        for (i, &(enter, _)) in la.iter().enumerate().skip(1) {
            assert!((enter - t[i] / 0.5).abs() < 1e-9);
        }
    }

    #[test]
    fn perfect_predictions_approach_offline_optimal() {
        let c = catalog();
        let la = IdlePolicy::LearningAugmented { lambda: 0.05 };
        for gap in [0.5, 5.0, 60.0, 500.0] {
            let cost = la.cost(&c, gap, gap);
            let opt = c.offline_optimal_cost(gap);
            assert!(
                cost <= 1.25 * opt + 1e-9,
                "gap {gap}: cost {cost} vs opt {opt}"
            );
        }
    }

    #[test]
    fn fixed_timeout_pays_shallow_residency_then_deep() {
        let c = catalog();
        let p = IdlePolicy::FixedTimeout { timeout_s: 10.0 };
        // Gap 5 s: 5 s of C1, wake free.
        assert!((p.cost(&c, 0.0, 5.0) - 150.0).abs() < 1e-9);
        // Gap 20 s: 10 s of C1 + 10 s of Off + Off wake energy.
        assert!((p.cost(&c, 0.0, 20.0) - (300.0 + 5.0 + 600.0)).abs() < 1e-9);
    }

    #[test]
    fn schedule_cost_of_zero_gap_is_free_in_the_shallow_state() {
        let c = catalog();
        assert_eq!(IdlePolicy::SkiRental.cost(&c, 0.0, 0.0), 0.0);
    }

    #[test]
    fn bad_lambda_is_rejected() {
        assert!(IdlePolicy::LearningAugmented { lambda: 0.0 }
            .validate()
            .is_err());
        assert!(IdlePolicy::LearningAugmented { lambda: 1.5 }
            .validate()
            .is_err());
        assert!(IdlePolicy::FixedTimeout { timeout_s: -1.0 }
            .validate()
            .is_err());
    }
}
