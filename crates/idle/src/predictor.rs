//! A deterministic, seeded next-arrival predictor with controllable error.
//!
//! The learning-augmented policy consumes a prediction of how long the
//! unit's idle period will last. Inside the simulator that prediction is
//! produced here: an EWMA over the unit's past idle gaps supplies the base
//! estimate, and a seeded multiplicative perturbation bounded by the
//! configured relative `error` models the advice being imperfect. The same
//! `perturb` primitive drives the synthetic `--bin idle` sweep, where the
//! base is the *true* gap and `error` is the swept x-axis.

use dps_sim_core::rng::RngStream;
use dps_sim_core::units::Seconds;
use serde::{Deserialize, Serialize};

/// Predictor tunables.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PredictorConfig {
    /// Relative error bound: predictions fall in
    /// `base × [1 − error, 1 + error]` (clamped at zero).
    pub error: f64,
    /// EWMA smoothing for the per-unit gap history (weight of the newest
    /// observed gap).
    pub alpha: f64,
    /// Prior gap estimate used before a unit has observed any idle period.
    pub prior_s: Seconds,
}

impl Default for PredictorConfig {
    fn default() -> Self {
        Self {
            error: 0.2,
            alpha: 0.4,
            prior_s: 30.0,
        }
    }
}

impl PredictorConfig {
    /// Checks the tunables are usable.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.error.is_finite() && self.error >= 0.0) {
            return Err(format!("error must be ≥ 0, got {}", self.error));
        }
        if !(self.alpha.is_finite() && 0.0 < self.alpha && self.alpha <= 1.0) {
            return Err(format!("alpha must be in (0, 1], got {}", self.alpha));
        }
        if !(self.prior_s.is_finite() && self.prior_s > 0.0) {
            return Err(format!("prior_s must be positive, got {}", self.prior_s));
        }
        Ok(())
    }

    /// Perturbs a base estimate by a seeded relative error within the
    /// configured bound: `base × (1 + error × u)` with `u ∈ [−1, 1]`,
    /// clamped at zero. Deterministic given the stream position.
    pub fn perturb(&self, base: Seconds, rng: &mut RngStream) -> Seconds {
        let u = rng.range(-1.0..1.0_f64);
        (base * (1.0 + self.error * u)).max(0.0)
    }
}

/// Per-unit EWMA gap tracker feeding [`PredictorConfig::perturb`].
#[derive(Debug, Clone)]
pub struct GapPredictor {
    config: PredictorConfig,
    /// Per-unit smoothed gap estimate (starts at the prior).
    ewma: Vec<Seconds>,
}

impl GapPredictor {
    /// Creates the tracker for `num_units` units.
    ///
    /// # Panics
    /// Panics on an invalid config.
    pub fn new(num_units: usize, config: PredictorConfig) -> Self {
        if let Err(e) = config.validate() {
            panic!("invalid predictor config: {e}");
        }
        Self {
            config,
            ewma: vec![config.prior_s; num_units],
        }
    }

    /// The configuration.
    pub fn config(&self) -> &PredictorConfig {
        &self.config
    }

    /// Predicts the unit's next idle-gap length: the EWMA base under the
    /// seeded bounded perturbation.
    pub fn predict(&self, unit: usize, rng: &mut RngStream) -> Seconds {
        self.config.perturb(self.ewma[unit], rng)
    }

    /// The unperturbed base estimate for a unit.
    pub fn base(&self, unit: usize) -> Seconds {
        self.ewma[unit]
    }

    /// Feeds back the actually observed idle gap once the unit wakes.
    pub fn observe(&mut self, unit: usize, actual: Seconds) {
        let a = self.config.alpha;
        self.ewma[unit] = (1.0 - a) * self.ewma[unit] + a * actual.max(0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prediction_respects_the_error_bound() {
        let cfg = PredictorConfig {
            error: 0.3,
            ..PredictorConfig::default()
        };
        let p = GapPredictor::new(2, cfg);
        let mut rng = RngStream::new(7, "pred");
        for _ in 0..200 {
            let pred = p.predict(0, &mut rng);
            assert!((pred - 30.0).abs() <= 0.3 * 30.0 + 1e-9, "{pred}");
        }
    }

    #[test]
    fn ewma_tracks_observed_gaps() {
        let mut p = GapPredictor::new(1, PredictorConfig::default());
        for _ in 0..50 {
            p.observe(0, 100.0);
        }
        assert!((p.base(0) - 100.0).abs() < 1.0);
    }

    #[test]
    fn zero_error_is_the_base_exactly() {
        let cfg = PredictorConfig {
            error: 0.0,
            ..PredictorConfig::default()
        };
        let p = GapPredictor::new(1, cfg);
        let mut rng = RngStream::new(3, "pred0");
        assert_eq!(p.predict(0, &mut rng), 30.0);
    }

    #[test]
    #[should_panic(expected = "invalid predictor config")]
    fn bad_alpha_is_rejected() {
        GapPredictor::new(
            1,
            PredictorConfig {
                alpha: 0.0,
                ..PredictorConfig::default()
            },
        );
    }
}
