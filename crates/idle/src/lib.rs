//! Multi-state sleep management for idle sockets.
//!
//! The elastic traffic layer creates idle capacity in bulk; this crate
//! decides what that capacity does while it waits. Three pieces:
//!
//! * [`SleepCatalog`] — the cost model: C-state-like levels trading
//!   residency power against wake latency and wake energy.
//! * [`GapPredictor`] — a deterministic, seeded next-arrival predictor
//!   with a configurable relative error bound.
//! * [`IdlePolicy`] — fixed-timeout, classical ski rental (2-competitive
//!   break-even cascading) and the learning-augmented policy with trust
//!   parameter λ (consistency/robustness tradeoff).
//!
//! [`IdleFleet`] packages the three into the per-unit runtime
//! `ClusterSim` drives in traffic mode: the provisioner demotes units
//! into the ladder instead of hard powering them off, wake latency delays
//! readmission, and residency/wake energy is charged to the request
//! ledger.

#![warn(missing_docs)]

pub mod fleet;
pub mod policy;
pub mod predictor;
pub mod state;

pub use fleet::{Demotion, IdleConfig, IdleFleet, WakeFinished, WakeStarted};
pub use policy::{schedule_cost, IdlePolicy};
pub use predictor::{GapPredictor, PredictorConfig};
pub use state::{SleepCatalog, SleepState};
