//! The per-unit sleep-state model: a small catalog of C-state-like levels.
//!
//! Each state trades residency power against the cost of coming back:
//! deeper states draw less while idle but charge a larger one-shot wake
//! energy and keep the socket unavailable for a longer wake latency. The
//! catalog is the cost model every idle policy optimises over, and the
//! offline-optimal idle cost it induces is the baseline the ski-rental
//! competitive bounds are stated against.

use dps_sim_core::units::{Joules, Seconds, Watts};
use serde::{Deserialize, Serialize};

/// One sleep level: power while resident, cost and delay to leave it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SleepState {
    /// Human label (C-state style; purely descriptive).
    pub name: &'static str,
    /// Power drawn while the unit sits in this state.
    pub idle_power_w: Watts,
    /// Delay between the wake decision and the unit serving again.
    pub wake_latency_s: Seconds,
    /// One-shot energy charged when waking out of this state.
    pub wake_energy_j: Joules,
}

/// An ordered catalog of sleep states, shallowest first.
///
/// Validity requires the classic multi-state ski-rental shape: idle power
/// strictly decreasing, wake energy strictly increasing with the shallowest
/// state free to leave (`wake_energy_j == 0`), wake latency non-decreasing,
/// and consecutive break-even times strictly increasing so every state
/// appears on the lower envelope (no dominated levels).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SleepCatalog {
    states: Vec<SleepState>,
}

impl SleepCatalog {
    /// Builds a catalog from `states` (shallowest first).
    ///
    /// # Panics
    /// Panics when the catalog does not validate; construction is the
    /// single place invalid cost models are rejected.
    pub fn new(states: Vec<SleepState>) -> Self {
        let catalog = Self { states };
        if let Err(e) = catalog.validate() {
            panic!("invalid sleep catalog: {e}");
        }
        catalog
    }

    /// A four-level ladder loosely modelled on package C-states of the
    /// paper's Xeon Gold 6240 testbed: a free-to-leave clock-gated level,
    /// two progressively deeper package states, and a near-off level.
    ///
    /// Break-even times (lower-envelope entry points) are ≈ 2.2 s, 15 s
    /// and 125.7 s — inside the gap distribution an elastic provisioner
    /// with tens-of-seconds hysteresis produces at a 1 s decision period.
    pub fn xeon_c_states() -> Self {
        Self::new(vec![
            SleepState {
                name: "C1",
                idle_power_w: 30.0,
                wake_latency_s: 0.0,
                wake_energy_j: 0.0,
            },
            SleepState {
                name: "C3",
                idle_power_w: 12.0,
                wake_latency_s: 0.5,
                wake_energy_j: 40.0,
            },
            SleepState {
                name: "C6",
                idle_power_w: 4.0,
                wake_latency_s: 2.0,
                wake_energy_j: 160.0,
            },
            SleepState {
                name: "Off",
                idle_power_w: 0.5,
                wake_latency_s: 6.0,
                wake_energy_j: 600.0,
            },
        ])
    }

    /// The states, shallowest first.
    pub fn states(&self) -> &[SleepState] {
        &self.states
    }

    /// Number of sleep levels.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Whether the catalog is empty (never true for a validated catalog).
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// Index of the deepest state.
    pub fn deepest(&self) -> usize {
        self.states.len() - 1
    }

    /// Checks the multi-state ski-rental shape (see the type docs).
    pub fn validate(&self) -> Result<(), String> {
        if self.states.is_empty() {
            return Err("catalog needs at least one sleep state".to_string());
        }
        for (i, s) in self.states.iter().enumerate() {
            if !(s.idle_power_w.is_finite() && s.idle_power_w >= 0.0) {
                return Err(format!("{}: idle power {} invalid", s.name, s.idle_power_w));
            }
            if !(s.wake_latency_s.is_finite() && s.wake_latency_s >= 0.0) {
                return Err(format!(
                    "{}: wake latency {} invalid",
                    s.name, s.wake_latency_s
                ));
            }
            if !(s.wake_energy_j.is_finite() && s.wake_energy_j >= 0.0) {
                return Err(format!(
                    "{}: wake energy {} invalid",
                    s.name, s.wake_energy_j
                ));
            }
            if i == 0 && s.wake_energy_j != 0.0 {
                return Err(format!(
                    "shallowest state {} must be free to leave (wake energy 0, got {})",
                    s.name, s.wake_energy_j
                ));
            }
            if i > 0 {
                let prev = &self.states[i - 1];
                if s.idle_power_w >= prev.idle_power_w {
                    return Err(format!(
                        "idle power must strictly decrease: {} {} W after {} {} W",
                        s.name, s.idle_power_w, prev.name, prev.idle_power_w
                    ));
                }
                if s.wake_energy_j <= prev.wake_energy_j {
                    return Err(format!(
                        "wake energy must strictly increase: {} {} J after {} {} J",
                        s.name, s.wake_energy_j, prev.name, prev.wake_energy_j
                    ));
                }
                if s.wake_latency_s < prev.wake_latency_s {
                    return Err(format!(
                        "wake latency must be non-decreasing: {} {} s after {} {} s",
                        s.name, s.wake_latency_s, prev.name, prev.wake_latency_s
                    ));
                }
            }
        }
        // Consecutive break-even times must strictly increase, otherwise a
        // middle state never appears on the lower envelope and the entry
        // schedule below would be wrong for it.
        let t = self.break_even_times();
        for i in 2..t.len() {
            if t[i] <= t[i - 1] {
                return Err(format!(
                    "state {} is dominated: its break-even time {:.3} s does not \
                     exceed the previous state's {:.3} s",
                    self.states[i].name,
                    t[i],
                    t[i - 1]
                ));
            }
        }
        Ok(())
    }

    /// Lower-envelope entry times: `t[i]` is the idle duration at which
    /// state `i` becomes the offline-optimal residency (`t[0] == 0`).
    ///
    /// With strictly decreasing power and strictly increasing energy, the
    /// crossing of states `i-1` and `i` is
    /// `(e_i − e_{i-1}) / (p_{i-1} − p_i)`, and validation guarantees the
    /// crossings increase so the envelope visits every state in order.
    pub fn break_even_times(&self) -> Vec<Seconds> {
        let mut t = Vec::with_capacity(self.states.len());
        t.push(0.0);
        for i in 1..self.states.len() {
            let prev = &self.states[i - 1];
            let s = &self.states[i];
            t.push((s.wake_energy_j - prev.wake_energy_j) / (prev.idle_power_w - s.idle_power_w));
        }
        t
    }

    /// The offline-optimal cost of an idle period of length `gap`: pick the
    /// single best state in hindsight and pay its residency plus its wake
    /// energy, `min_i (p_i · gap + e_i)`.
    pub fn offline_optimal_cost(&self, gap: Seconds) -> Joules {
        self.states
            .iter()
            .map(|s| s.idle_power_w * gap + s.wake_energy_j)
            .fold(f64::INFINITY, f64::min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_catalog_validates_with_expected_break_evens() {
        let c = SleepCatalog::xeon_c_states();
        let t = c.break_even_times();
        assert_eq!(t.len(), 4);
        assert_eq!(t[0], 0.0);
        assert!((t[1] - 40.0 / 18.0).abs() < 1e-9);
        assert!((t[2] - 15.0).abs() < 1e-9);
        assert!((t[3] - 440.0 / 3.5).abs() < 1e-9);
    }

    #[test]
    fn offline_optimal_is_the_envelope_minimum() {
        let c = SleepCatalog::xeon_c_states();
        // Short gap: staying in C1 wins; long gap: Off wins.
        assert!((c.offline_optimal_cost(1.0) - 30.0).abs() < 1e-9);
        let long = c.offline_optimal_cost(10_000.0);
        assert!((long - (0.5 * 10_000.0 + 600.0)).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "invalid sleep catalog")]
    fn non_monotone_power_is_rejected() {
        SleepCatalog::new(vec![
            SleepState {
                name: "a",
                idle_power_w: 10.0,
                wake_latency_s: 0.0,
                wake_energy_j: 0.0,
            },
            SleepState {
                name: "b",
                idle_power_w: 20.0,
                wake_latency_s: 1.0,
                wake_energy_j: 5.0,
            },
        ]);
    }

    #[test]
    fn dominated_state_is_rejected() {
        // Middle state's break-even lands after the deeper state's: dominated.
        let err = SleepCatalog {
            states: vec![
                SleepState {
                    name: "a",
                    idle_power_w: 30.0,
                    wake_latency_s: 0.0,
                    wake_energy_j: 0.0,
                },
                SleepState {
                    name: "b",
                    idle_power_w: 29.0,
                    wake_latency_s: 1.0,
                    wake_energy_j: 500.0,
                },
                SleepState {
                    name: "c",
                    idle_power_w: 1.0,
                    wake_latency_s: 2.0,
                    wake_energy_j: 501.0,
                },
            ],
        }
        .validate()
        .unwrap_err();
        assert!(err.contains("dominated"), "{err}");
    }
}
