//! The fleet-level idle runtime [`ClusterSim`] drives.
//!
//! [`IdleFleet`] owns one state machine per unit (awake → sleeping along a
//! policy-compiled demotion schedule → waking → awake), the per-unit gap
//! predictor, and the energy bookkeeping the simulator charges to the
//! request ledger: residency power for every sleeping or waking unit each
//! window, plus the one-shot wake energies of wakes begun that window.
//!
//! State indices in the reported transitions use the trace convention:
//! `0` is awake, sleep levels are `1..=catalog.len()`.
//!
//! [`ClusterSim`]: ../dps_cluster/sim/struct.ClusterSim.html

use crate::policy::IdlePolicy;
use crate::predictor::{GapPredictor, PredictorConfig};
use crate::state::SleepCatalog;
use dps_sim_core::rng::RngStream;
use dps_sim_core::units::{Joules, Seconds, Watts};
use serde::{Deserialize, Serialize};

/// Everything the simulator needs to run idle management.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IdleConfig {
    /// The sleep-state cost model.
    pub catalog: SleepCatalog,
    /// The demotion policy.
    pub policy: IdlePolicy,
    /// The next-arrival predictor.
    pub predictor: PredictorConfig,
}

impl Default for IdleConfig {
    fn default() -> Self {
        Self {
            catalog: SleepCatalog::xeon_c_states(),
            policy: IdlePolicy::SkiRental,
            predictor: PredictorConfig::default(),
        }
    }
}

impl IdleConfig {
    /// Checks every component.
    pub fn validate(&self) -> Result<(), String> {
        self.catalog.validate()?;
        self.policy.validate()?;
        self.predictor.validate()
    }
}

/// A sleep-depth change of one unit (`0` = awake, sleep levels 1-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Demotion {
    /// Unit index.
    pub unit: usize,
    /// Depth before the transition.
    pub from: u32,
    /// Depth after the transition.
    pub to: u32,
}

/// A wake that has begun: the unit is unavailable for `latency_s`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WakeStarted {
    /// Unit index.
    pub unit: usize,
    /// Sleep depth being left (1-based).
    pub state: u32,
    /// Delay until the unit serves again.
    pub latency_s: Seconds,
}

/// A wake that completed this window: the unit is serving again.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WakeFinished {
    /// Unit index.
    pub unit: usize,
    /// Sleep depth that was left (1-based).
    pub state: u32,
    /// One-shot wake energy charged for leaving it.
    pub energy_j: Joules,
    /// The gap length the predictor advised at demotion time.
    pub predicted_s: Seconds,
    /// The idle gap that actually materialised.
    pub actual_s: Seconds,
}

/// Per-unit phase of the idle state machine.
#[derive(Debug, Clone)]
enum Phase {
    /// Serving (or at least available to serve).
    Awake,
    /// Idle, walking the demotion schedule.
    Sleeping {
        since: Seconds,
        predicted: Seconds,
        /// Compiled `(enter_time, state)` schedule for this idle period.
        schedule: Vec<(Seconds, usize)>,
        /// Index into `schedule` of the state currently occupied.
        depth: usize,
    },
    /// Wake latency countdown; still drawing the left state's power.
    Waking {
        state: usize,
        remaining: Seconds,
        predicted: Seconds,
        actual: Seconds,
    },
}

/// The per-unit sleep state machines plus predictor and energy ledger.
#[derive(Debug)]
pub struct IdleFleet {
    config: IdleConfig,
    phases: Vec<Phase>,
    predictor: GapPredictor,
    rng: RngStream,
    /// Wake energies begun since the last [`IdleFleet::drain_wake_energy`].
    pending_wake_j: Joules,
}

impl IdleFleet {
    /// Creates the fleet with every unit awake.
    ///
    /// # Panics
    /// Panics on an invalid config.
    pub fn new(num_units: usize, config: IdleConfig, rng: RngStream) -> Self {
        if let Err(e) = config.validate() {
            panic!("invalid idle config: {e}");
        }
        let predictor = GapPredictor::new(num_units, config.predictor);
        Self {
            config,
            phases: vec![Phase::Awake; num_units],
            predictor,
            rng,
            pending_wake_j: 0.0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &IdleConfig {
        &self.config
    }

    /// Whether the unit is awake (serving-capable).
    pub fn is_awake(&self, unit: usize) -> bool {
        matches!(self.phases[unit], Phase::Awake)
    }

    /// Current sleep depth of a unit (`0` = awake, 1-based levels).
    pub fn depth(&self, unit: usize) -> u32 {
        match &self.phases[unit] {
            Phase::Awake => 0,
            Phase::Sleeping {
                schedule, depth, ..
            } => schedule[*depth].1 as u32 + 1,
            Phase::Waking { state, .. } => *state as u32 + 1,
        }
    }

    /// Demotes a unit into the sleep ladder at time `now`: the predictor
    /// advises the gap length, the policy compiles the demotion schedule,
    /// and the unit enters the schedule's first state. A unit mid-wake is
    /// re-demoted (provisioner flapping); a unit already sleeping is left
    /// alone (`None`).
    pub fn demote(&mut self, unit: usize, now: Seconds) -> Option<Demotion> {
        let from = self.depth(unit);
        if matches!(self.phases[unit], Phase::Sleeping { .. }) {
            return None;
        }
        let predicted = self.predictor.predict(unit, &mut self.rng);
        let schedule = self.config.policy.schedule(&self.config.catalog, predicted);
        let to = schedule[0].1 as u32 + 1;
        self.phases[unit] = Phase::Sleeping {
            since: now,
            predicted,
            schedule,
            depth: 0,
        };
        Some(Demotion { unit, from, to })
    }

    /// Walks every sleeping unit's schedule up to idle time `now − since`,
    /// appending one [`Demotion`] per state entered.
    pub fn advance(&mut self, now: Seconds, out: &mut Vec<Demotion>) {
        for (unit, phase) in self.phases.iter_mut().enumerate() {
            if let Phase::Sleeping {
                since,
                schedule,
                depth,
                ..
            } = phase
            {
                let idle_t = now - *since;
                while *depth + 1 < schedule.len() && schedule[*depth + 1].0 <= idle_t {
                    let from = schedule[*depth].1 as u32 + 1;
                    *depth += 1;
                    out.push(Demotion {
                        unit,
                        from,
                        to: schedule[*depth].1 as u32 + 1,
                    });
                }
            }
        }
    }

    /// Begins waking a sleeping unit at time `now`: the actual gap is fed
    /// back to the predictor, the wake energy of the occupied state is
    /// charged to the pending ledger, and the unit becomes available after
    /// the state's wake latency (see [`IdleFleet::tick_wakes`]). Awake or
    /// already-waking units are left alone (`None`).
    pub fn begin_wake(&mut self, unit: usize, now: Seconds) -> Option<WakeStarted> {
        let Phase::Sleeping {
            since,
            predicted,
            schedule,
            depth,
        } = &self.phases[unit]
        else {
            return None;
        };
        let state = schedule[*depth].1;
        let actual = (now - *since).max(0.0);
        let predicted = *predicted;
        self.predictor.observe(unit, actual);
        let spec = self.config.catalog.states()[state];
        self.pending_wake_j += spec.wake_energy_j;
        self.phases[unit] = Phase::Waking {
            state,
            remaining: spec.wake_latency_s,
            predicted,
            actual,
        };
        Some(WakeStarted {
            unit,
            state: state as u32 + 1,
            latency_s: spec.wake_latency_s,
        })
    }

    /// Advances every in-flight wake by `dt`, appending a [`WakeFinished`]
    /// for each unit whose latency elapsed (those units are awake again).
    pub fn tick_wakes(&mut self, dt: Seconds, out: &mut Vec<WakeFinished>) {
        for (unit, phase) in self.phases.iter_mut().enumerate() {
            if let Phase::Waking {
                state,
                remaining,
                predicted,
                actual,
            } = phase
            {
                *remaining -= dt;
                if *remaining <= 1e-12 {
                    out.push(WakeFinished {
                        unit,
                        state: *state as u32 + 1,
                        energy_j: self.config.catalog.states()[*state].wake_energy_j,
                        predicted_s: *predicted,
                        actual_s: *actual,
                    });
                    *phase = Phase::Awake;
                }
            }
        }
    }

    /// Total residency power currently drawn by sleeping and waking units
    /// (a waking unit keeps drawing the state it is leaving until the
    /// latency elapses).
    pub fn sleep_power_w(&self) -> Watts {
        let states = self.config.catalog.states();
        self.phases
            .iter()
            .map(|p| match p {
                Phase::Awake => 0.0,
                Phase::Sleeping {
                    schedule, depth, ..
                } => states[schedule[*depth].1].idle_power_w,
                Phase::Waking { state, .. } => states[*state].idle_power_w,
            })
            .sum()
    }

    /// Drains the one-shot wake energies charged since the last drain.
    pub fn drain_wake_energy(&mut self) -> Joules {
        std::mem::take(&mut self.pending_wake_j)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fleet(policy: IdlePolicy) -> IdleFleet {
        let config = IdleConfig {
            policy,
            predictor: PredictorConfig {
                error: 0.0,
                ..PredictorConfig::default()
            },
            ..IdleConfig::default()
        };
        IdleFleet::new(2, config, RngStream::new(5, "idle-test"))
    }

    #[test]
    fn demote_cascades_along_break_evens_and_wakes_with_latency() {
        let mut f = fleet(IdlePolicy::SkiRental);
        let d = f.demote(0, 10.0).expect("awake unit demotes");
        assert_eq!((d.from, d.to), (0, 1));
        assert!(!f.is_awake(0));
        assert!(f.is_awake(1));

        // By idle time 16 s the envelope has reached C6 (t₂ = 15 s).
        let mut demos = Vec::new();
        f.advance(26.0, &mut demos);
        assert_eq!(demos.len(), 2, "{demos:?}");
        assert_eq!((demos[0].from, demos[0].to), (1, 2));
        assert_eq!((demos[1].from, demos[1].to), (2, 3));
        assert!((f.sleep_power_w() - 4.0).abs() < 1e-9);

        // Wake out of C6: 160 J charged, 2 s latency.
        let w = f.begin_wake(0, 26.0).expect("sleeping unit wakes");
        assert_eq!(w.state, 3);
        assert!((w.latency_s - 2.0).abs() < 1e-9);
        assert!((f.drain_wake_energy() - 160.0).abs() < 1e-9);
        assert!(!f.is_awake(0), "still waking");

        let mut done = Vec::new();
        f.tick_wakes(1.0, &mut done);
        assert!(done.is_empty());
        f.tick_wakes(1.0, &mut done);
        assert_eq!(done.len(), 1);
        assert!((done[0].actual_s - 16.0).abs() < 1e-9);
        assert!(f.is_awake(0));
    }

    #[test]
    fn predictor_feedback_flows_through_wakes() {
        let mut f = fleet(IdlePolicy::LearningAugmented { lambda: 0.5 });
        for round in 0..5 {
            let t0 = round as f64 * 100.0;
            f.demote(0, t0);
            f.begin_wake(0, t0 + 50.0);
            let mut done = Vec::new();
            // Generous dt: every latency elapses within one tick.
            f.tick_wakes(100.0, &mut done);
            assert_eq!(done.len(), 1);
        }
        // EWMA pulled from the 30 s prior toward the observed 50 s gaps.
        assert!(f.predictor.base(0) > 45.0, "{}", f.predictor.base(0));
    }

    #[test]
    fn double_demote_and_double_wake_are_idempotent() {
        let mut f = fleet(IdlePolicy::SkiRental);
        assert!(f.demote(0, 0.0).is_some());
        assert!(f.demote(0, 1.0).is_none());
        assert!(f.begin_wake(0, 5.0).is_some());
        assert!(f.begin_wake(0, 5.0).is_none(), "already waking");
        assert!(f.begin_wake(1, 5.0).is_none(), "awake unit");
    }

    #[test]
    fn zero_latency_wake_completes_on_the_next_tick() {
        let mut f = fleet(IdlePolicy::SkiRental);
        f.demote(0, 0.0);
        // Still in C1 (free, instant) at idle time 1 s.
        f.begin_wake(0, 1.0);
        assert_eq!(f.drain_wake_energy(), 0.0);
        let mut done = Vec::new();
        f.tick_wakes(1.0, &mut done);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].energy_j, 0.0);
    }

    #[test]
    fn flapping_mid_wake_redemotes() {
        let mut f = fleet(IdlePolicy::SkiRental);
        f.demote(0, 0.0);
        let mut demos = Vec::new();
        f.advance(16.0, &mut demos); // down to C6
        f.begin_wake(0, 16.0); // 2 s latency
        let d = f
            .demote(0, 17.0)
            .expect("mid-wake demote restarts the ladder");
        assert_eq!((d.from, d.to), (3, 1));
        let mut done = Vec::new();
        f.tick_wakes(10.0, &mut done);
        assert!(done.is_empty(), "cancelled wake must not complete");
    }
}
