//! Property tests for the simulation substrate.

use dps_sim_core::{
    signal, stats, KalmanFilter, PeakTracker, RingBuffer, RollingMoments, TimeSeries,
};
use proptest::prelude::*;
use std::collections::VecDeque;

proptest! {
    /// RingBuffer behaves exactly like a capacity-bounded VecDeque.
    #[test]
    fn ring_buffer_matches_vecdeque_model(
        capacity in 1usize..16,
        ops in prop::collection::vec(any::<i32>(), 0..200),
    ) {
        let mut ring = RingBuffer::new(capacity);
        let mut model: VecDeque<i32> = VecDeque::new();
        for v in ops {
            let evicted = ring.push(v);
            model.push_back(v);
            let expected_evicted = if model.len() > capacity {
                model.pop_front()
            } else {
                None
            };
            prop_assert_eq!(evicted, expected_evicted);
            prop_assert_eq!(ring.len(), model.len());
            prop_assert_eq!(ring.oldest(), model.front());
            prop_assert_eq!(ring.newest(), model.back());
            // Full content equality, oldest-first.
            let ring_vec = ring.as_vec();
            let model_vec: Vec<i32> = model.iter().cloned().collect();
            prop_assert_eq!(ring_vec, model_vec);
        }
    }

    /// Newest-first indexing is the mirror of oldest-first indexing.
    #[test]
    fn ring_buffer_from_newest_mirrors_get(
        capacity in 1usize..12,
        values in prop::collection::vec(any::<u16>(), 1..60),
    ) {
        let mut ring = RingBuffer::new(capacity);
        for v in values {
            ring.push(v);
        }
        let n = ring.len();
        for k in 0..n {
            prop_assert_eq!(ring.from_newest(k), ring.get(n - 1 - k));
        }
        prop_assert_eq!(ring.from_newest(n), None);
    }

    /// The Kalman estimate is always within the range of observed
    /// measurements (it is a convex combination for the random-walk model).
    #[test]
    fn kalman_estimate_within_measurement_hull(
        q in 0.01f64..100.0,
        r in 0.01f64..100.0,
        measurements in prop::collection::vec(0.0f64..200.0, 1..100),
    ) {
        let mut kf = KalmanFilter::new(q, r);
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &z in &measurements {
            lo = lo.min(z);
            hi = hi.max(z);
            let est = kf.update(z);
            prop_assert!(est >= lo - 1e-9 && est <= hi + 1e-9, "{est} outside [{lo}, {hi}]");
        }
    }

    /// The Kalman gain stays in (0, 1] and the error variance stays
    /// non-negative and bounded.
    #[test]
    fn kalman_gain_and_variance_bounded(
        q in 0.01f64..50.0,
        r in 0.01f64..50.0,
        measurements in prop::collection::vec(0.0f64..200.0, 2..80),
    ) {
        let mut kf = KalmanFilter::new(q, r);
        for &z in &measurements {
            kf.update(z);
            prop_assert!(kf.last_gain() > 0.0 && kf.last_gain() <= 1.0);
            prop_assert!(kf.error_variance() >= 0.0);
            prop_assert!(kf.error_variance() <= q + r + 1e-9);
        }
    }

    /// Peak count is invariant under constant offsets and never exceeds
    /// half the signal length (peaks need a valley between them).
    #[test]
    fn peak_count_offset_invariant_and_bounded(
        signal in prop::collection::vec(0.0f64..165.0, 3..60),
        offset in -100.0f64..100.0,
        prominence in 1.0f64..60.0,
    ) {
        let count = signal::count_prominent_peaks(&signal, prominence);
        let shifted: Vec<f64> = signal.iter().map(|v| v + offset).collect();
        prop_assert_eq!(signal::count_prominent_peaks(&shifted, prominence), count);
        prop_assert!(count <= signal.len() / 2);
    }

    /// Raising the prominence threshold never finds more peaks.
    #[test]
    fn peak_count_monotone_in_prominence(
        signal in prop::collection::vec(0.0f64..165.0, 3..60),
        p1 in 1.0f64..80.0,
        p2 in 1.0f64..80.0,
    ) {
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        prop_assert!(
            signal::count_prominent_peaks(&signal, hi)
                <= signal::count_prominent_peaks(&signal, lo)
        );
    }

    /// Every reported peak's prominence is honest: at least the threshold,
    /// at most the signal's total range.
    #[test]
    fn peak_prominences_within_signal_range(
        signal in prop::collection::vec(0.0f64..165.0, 3..60),
    ) {
        let range = stats::max(&signal).unwrap() - stats::min(&signal).unwrap();
        for peak in signal::find_prominent_peaks(&signal, 5.0) {
            prop_assert!(peak.prominence >= 5.0);
            prop_assert!(peak.prominence <= range + 1e-9);
            prop_assert_eq!(peak.height, signal[peak.index]);
        }
    }

    /// Mean inequality chain holds for arbitrary positive samples.
    #[test]
    fn mean_inequality_chain(values in prop::collection::vec(0.1f64..1000.0, 1..50)) {
        let h = stats::harmonic_mean(&values).unwrap();
        let g = stats::geometric_mean(&values).unwrap();
        let a = stats::mean(&values).unwrap();
        prop_assert!(h <= g + 1e-9 && g <= a + 1e-9, "h={h} g={g} a={a}");
    }

    /// Percentiles are monotone in q and bracketed by min/max.
    #[test]
    fn percentiles_monotone(
        values in prop::collection::vec(-1000.0f64..1000.0, 1..50),
        q1 in 0.0f64..100.0,
        q2 in 0.0f64..100.0,
    ) {
        let (lo_q, hi_q) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        let p_lo = stats::percentile(&values, lo_q).unwrap();
        let p_hi = stats::percentile(&values, hi_q).unwrap();
        prop_assert!(p_lo <= p_hi + 1e-9);
        prop_assert!(p_lo >= stats::min(&values).unwrap() - 1e-9);
        prop_assert!(p_hi <= stats::max(&values).unwrap() + 1e-9);
    }

    /// Welford accumulation matches batch statistics for any sample.
    #[test]
    fn online_stats_matches_batch(values in prop::collection::vec(-1e6f64..1e6, 1..100)) {
        let mut online = stats::OnlineStats::new();
        for &v in &values {
            online.push(v);
        }
        let batch_mean = stats::mean(&values).unwrap();
        let batch_std = stats::std_dev(&values).unwrap();
        prop_assert!((online.mean() - batch_mean).abs() < 1e-6 * (1.0 + batch_mean.abs()));
        prop_assert!((online.std_dev() - batch_std).abs() < 1e-6 * (1.0 + batch_std));
    }

    /// Time-series sample-and-hold lookup agrees with direct indexing.
    #[test]
    fn series_lookup_consistent(
        values in prop::collection::vec(0.0f64..165.0, 1..50),
        period in 0.1f64..5.0,
        frac in 0.0f64..1.0,
    ) {
        let ts = TimeSeries::from_values(period, values.clone());
        let idx = ((values.len() - 1) as f64 * frac) as usize;
        let t = idx as f64 * period + period * 0.5;
        prop_assert_eq!(ts.value_at_time(t), Some(values[idx]));
    }

    /// Resampling preserves the series' mean approximately when the new
    /// period divides the old one exactly.
    #[test]
    fn resample_integer_upsample_preserves_values(
        values in prop::collection::vec(0.0f64..165.0, 1..30),
        k in 1usize..5,
    ) {
        let ts = TimeSeries::from_values(1.0, values.clone());
        let up = ts.resample(1.0 / k as f64);
        prop_assert_eq!(up.len(), values.len() * k);
        for (i, &v) in values.iter().enumerate() {
            for j in 0..k {
                prop_assert_eq!(up.values()[i * k + j], v);
            }
        }
    }
}

proptest! {
    /// Rolling moments agree with a full-window recompute at every prefix
    /// of an arbitrary eviction stream — the incremental statistics must be
    /// indistinguishable from the O(window) reference they replace.
    #[test]
    fn rolling_moments_match_window_recompute(
        capacity in 1usize..24,
        values in prop::collection::vec(0.0f64..400.0, 0..300),
    ) {
        let mut ring = RingBuffer::new(capacity);
        let mut moments = RollingMoments::new(capacity);
        for (step, &v) in values.iter().enumerate() {
            let evicted = ring.push(v);
            moments.push(v, evicted, &ring);
            prop_assert_eq!(moments.len(), ring.len());
            let mean_err = (moments.mean().unwrap() - ring.mean().unwrap()).abs();
            prop_assert!(mean_err < 1e-8, "mean drift {mean_err} at step {step}");
            // Subtractive variance over offset-centered Σx² terms (each up
            // to range² = 400²) cancels catastrophically when the true
            // variance is near zero: the absolute std error can reach
            // √(ε·ops)·range even though the accumulators are exact to ULPs.
            let tol = (f64::EPSILON * 8.0 * ring.len() as f64).sqrt() * 400.0 + 1e-9;
            let std_err = (moments.std_dev().unwrap() - ring.std_dev().unwrap()).abs();
            prop_assert!(std_err < tol, "std drift {std_err} > {tol} at step {step}");
        }
    }

    /// The RLE peak tracker reports exactly the slice-kernel peak count at
    /// every prefix, for arbitrary streams (plateaus included via a small
    /// value grid that makes equal neighbours likely).
    #[test]
    fn peak_tracker_matches_slice_kernel(
        capacity in 2usize..16,
        prominence in 1.0f64..60.0,
        steps in prop::collection::vec(0u8..8, 0..250),
    ) {
        let mut ring = RingBuffer::new(capacity);
        let mut peaks = PeakTracker::new(prominence);
        for (step, &s) in steps.iter().enumerate() {
            let v = s as f64 * 20.0; // coarse grid → frequent exact repeats
            let evicted = ring.push(v);
            peaks.push(v, evicted);
            prop_assert_eq!(
                peaks.count(),
                signal::count_prominent_peaks(&ring.as_vec(), prominence),
                "diverged at step {}", step
            );
        }
    }

    /// Restoring the moments' accumulator state reproduces the tracker
    /// bit for bit, wherever in the resync cycle the snapshot lands.
    #[test]
    fn moments_state_roundtrip_anywhere_in_stream(
        capacity in 1usize..24,
        values in prop::collection::vec(0.0f64..400.0, 1..400),
    ) {
        let mut ring = RingBuffer::new(capacity);
        let mut moments = RollingMoments::new(capacity);
        for &v in &values {
            let evicted = ring.push(v);
            moments.push(v, evicted, &ring);
        }
        let (sum, sumsq, offset, until) = moments.state();
        let mut restored = RollingMoments::new(capacity);
        restored.restore_state(sum, sumsq, offset, until, ring.len());
        prop_assert_eq!(&restored, &moments);
        // And the restored tracker keeps tracking identically.
        let evicted = ring.push(123.0);
        moments.push(123.0, evicted, &ring);
        restored.push(123.0, evicted, &ring);
        prop_assert_eq!(&restored, &moments);
    }
}

proptest! {
    /// Phase segmentation always partitions the trace: contiguous,
    /// non-overlapping, covering every sample.
    #[test]
    fn phase_segments_partition(
        trace in prop::collection::vec(0.0f64..165.0, 1..200),
        threshold in 5.0f64..80.0,
    ) {
        let segments = dps_sim_core::phases::segment(&trace, threshold);
        prop_assert!(!segments.is_empty());
        let mut covered = 0usize;
        for s in &segments {
            prop_assert_eq!(s.start, covered);
            prop_assert!(s.len >= 1);
            covered += s.len;
            // Phase statistics are bounded by the trace values.
            prop_assert!(s.peak_power <= 165.0 + 1e-9);
            prop_assert!(s.mean_power <= s.peak_power + 1e-9);
        }
        prop_assert_eq!(covered, trace.len());
    }

    /// A threshold wider than the signal's full range yields exactly one
    /// phase (nothing can deviate far enough from the running mean to
    /// split). Note: phase count is NOT monotone in the threshold in
    /// general — absorbing a sample shifts the running mean, which can
    /// change where later splits land.
    #[test]
    fn threshold_above_range_is_one_phase(
        trace in prop::collection::vec(0.0f64..165.0, 2..150),
    ) {
        let segments = dps_sim_core::phases::segment(&trace, 200.0);
        prop_assert_eq!(segments.len(), 1);
    }

    /// The report's duration stats are consistent with the segment count.
    #[test]
    fn phase_report_durations_consistent(
        trace in prop::collection::vec(0.0f64..165.0, 2..150),
        period in 0.5f64..4.0,
    ) {
        let r = dps_sim_core::phases::report(&trace, period, 30.0).unwrap();
        prop_assert!(r.duration_min <= r.duration_mean + 1e-9);
        prop_assert!(r.duration_mean <= r.duration_max + 1e-9);
        let total = trace.len() as f64 * period;
        prop_assert!((r.duration_mean * r.phase_count as f64 - total).abs() < 1e-6);
        prop_assert!(r.max_rise >= 0.0 && r.max_fall <= 0.0);
    }
}
