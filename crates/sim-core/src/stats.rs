//! Summary statistics used throughout the evaluation.
//!
//! The paper reports *harmonic mean* performance (throughput-time) gains and
//! fairness distributions; this module provides those aggregations plus a
//! streaming Welford accumulator for per-cycle logging without retaining
//! every sample.

use serde::{Deserialize, Serialize};

/// Arithmetic mean; `None` for an empty slice.
pub fn mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        None
    } else {
        Some(values.iter().sum::<f64>() / values.len() as f64)
    }
}

/// Population standard deviation; `None` for an empty slice.
pub fn std_dev(values: &[f64]) -> Option<f64> {
    let m = mean(values)?;
    let var = values.iter().map(|x| (x - m).powi(2)).sum::<f64>() / values.len() as f64;
    Some(var.sqrt())
}

/// Harmonic mean of strictly positive values; `None` if empty or any value
/// is `<= 0` (a zero throughput time is meaningless and would make the
/// harmonic mean degenerate).
pub fn harmonic_mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() || values.iter().any(|v| *v <= 0.0 || !v.is_finite()) {
        return None;
    }
    let recip_sum: f64 = values.iter().map(|v| 1.0 / v).sum();
    Some(values.len() as f64 / recip_sum)
}

/// Geometric mean of strictly positive values.
pub fn geometric_mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() || values.iter().any(|v| *v <= 0.0 || !v.is_finite()) {
        return None;
    }
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    Some((log_sum / values.len() as f64).exp())
}

/// Linear-interpolated percentile (`q` in `[0, 100]`); `None` when empty.
///
/// Matches numpy's default (`linear`) interpolation so the fairness
/// distribution plots line up with the paper's tooling.
pub fn percentile(values: &[f64], q: f64) -> Option<f64> {
    if values.is_empty() || !(0.0..=100.0).contains(&q) {
        return None;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    let rank = q / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        return Some(sorted[lo]);
    }
    let frac = rank - lo as f64;
    Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

/// Median (50th percentile).
pub fn median(values: &[f64]) -> Option<f64> {
    percentile(values, 50.0)
}

/// Minimum of a slice, ignoring nothing; `None` when empty.
pub fn min(values: &[f64]) -> Option<f64> {
    values.iter().copied().fold(None, |acc, v| match acc {
        None => Some(v),
        Some(a) => Some(a.min(v)),
    })
}

/// Maximum of a slice; `None` when empty.
pub fn max(values: &[f64]) -> Option<f64> {
    values.iter().copied().fold(None, |acc, v| match acc {
        None => Some(v),
        Some(a) => Some(a.max(v)),
    })
}

/// Pearson correlation coefficient between two equal-length samples;
/// `None` when lengths differ, fewer than 2 points, or either sample is
/// constant (undefined correlation).
pub fn pearson(x: &[f64], y: &[f64]) -> Option<f64> {
    if x.len() != y.len() || x.len() < 2 {
        return None;
    }
    let mx = mean(x)?;
    let my = mean(y)?;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (&a, &b) in x.iter().zip(y) {
        cov += (a - mx) * (b - my);
        vx += (a - mx).powi(2);
        vy += (b - my).powi(2);
    }
    if vx <= 0.0 || vy <= 0.0 {
        return None;
    }
    Some(cov / (vx.sqrt() * vy.sqrt()))
}

/// Streaming mean/variance accumulator (Welford's algorithm).
///
/// Numerically stable for long runs (hours of one-second samples), used by
/// the per-socket satisfaction bookkeeping and overhead measurements.
///
/// ```
/// use dps_sim_core::OnlineStats;
/// let mut s = OnlineStats::new();
/// for x in [1.0, 2.0, 3.0, 4.0] { s.push(x); }
/// assert_eq!(s.mean(), 2.5);
/// assert_eq!(s.count(), 4);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds a sample.
    pub fn push(&mut self, value: f64) {
        self.count += 1;
        let delta = value - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (value - self.mean);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of samples.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Running mean (0 when empty).
    #[inline]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (0 when fewer than 2 samples).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample (`+inf` when empty).
    #[inline]
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest sample (`-inf` when empty).
    #[inline]
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        self.mean += delta * other.count as f64 / total as f64;
        self.m2 +=
            other.m2 + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.count = total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_empty_none() {
        assert_eq!(mean(&[]), None);
    }

    #[test]
    fn mean_basic() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), Some(2.0));
    }

    #[test]
    fn harmonic_mean_basic() {
        // hmean(1, 2, 4) = 3 / (1 + 0.5 + 0.25) = 12/7
        let h = harmonic_mean(&[1.0, 2.0, 4.0]).unwrap();
        assert!((h - 12.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn harmonic_mean_rejects_nonpositive() {
        assert_eq!(harmonic_mean(&[1.0, 0.0]), None);
        assert_eq!(harmonic_mean(&[1.0, -2.0]), None);
        assert_eq!(harmonic_mean(&[]), None);
    }

    #[test]
    fn harmonic_le_geometric_le_arithmetic() {
        let v = [2.0, 3.0, 10.0, 7.0];
        let h = harmonic_mean(&v).unwrap();
        let g = geometric_mean(&v).unwrap();
        let a = mean(&v).unwrap();
        assert!(h <= g + 1e-12 && g <= a + 1e-12, "h={h} g={g} a={a}");
    }

    #[test]
    fn percentile_interpolates() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 0.0), Some(1.0));
        assert_eq!(percentile(&v, 100.0), Some(4.0));
        assert_eq!(percentile(&v, 50.0), Some(2.5));
        assert_eq!(median(&v), Some(2.5));
    }

    #[test]
    fn percentile_invalid_q() {
        assert_eq!(percentile(&[1.0], -1.0), None);
        assert_eq!(percentile(&[1.0], 101.0), None);
    }

    #[test]
    fn min_max_basic() {
        let v = [3.0, -1.0, 7.0];
        assert_eq!(min(&v), Some(-1.0));
        assert_eq!(max(&v), Some(7.0));
        assert_eq!(min(&[]), None);
    }

    #[test]
    fn pearson_perfect_correlations() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y_pos: Vec<f64> = x.iter().map(|v| 2.0 * v + 1.0).collect();
        let y_neg: Vec<f64> = x.iter().map(|v| -v).collect();
        assert!((pearson(&x, &y_pos).unwrap() - 1.0).abs() < 1e-12);
        assert!((pearson(&x, &y_neg).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_degenerate_cases() {
        assert_eq!(pearson(&[1.0], &[2.0]), None);
        assert_eq!(pearson(&[1.0, 2.0], &[1.0]), None);
        assert_eq!(pearson(&[5.0, 5.0], &[1.0, 2.0]), None, "constant sample");
    }

    #[test]
    fn pearson_bounded() {
        let x = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0];
        let y = [2.0, 7.0, 1.0, 8.0, 2.0, 8.0, 1.0];
        let r = pearson(&x, &y).unwrap();
        assert!((-1.0..=1.0).contains(&r));
    }

    #[test]
    fn online_stats_matches_batch() {
        let values = [4.0, 7.0, 13.0, 16.0];
        let mut s = OnlineStats::new();
        for v in values {
            s.push(v);
        }
        assert_eq!(s.count(), 4);
        assert!((s.mean() - mean(&values).unwrap()).abs() < 1e-12);
        assert!((s.std_dev() - std_dev(&values).unwrap()).abs() < 1e-12);
        assert_eq!(s.min(), 4.0);
        assert_eq!(s.max(), 16.0);
    }

    #[test]
    fn online_stats_merge_matches_combined() {
        let a_vals = [1.0, 2.0, 3.0];
        let b_vals = [10.0, 20.0];
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        a_vals.iter().for_each(|v| a.push(*v));
        b_vals.iter().for_each(|v| b.push(*v));
        let mut combined = OnlineStats::new();
        a_vals
            .iter()
            .chain(b_vals.iter())
            .for_each(|v| combined.push(*v));
        a.merge(&b);
        assert_eq!(a.count(), combined.count());
        assert!((a.mean() - combined.mean()).abs() < 1e-12);
        assert!((a.variance() - combined.variance()).abs() < 1e-9);
    }

    #[test]
    fn online_stats_merge_with_empty() {
        let mut a = OnlineStats::new();
        a.push(5.0);
        let empty = OnlineStats::new();
        let snapshot = a.clone();
        a.merge(&empty);
        assert_eq!(a, snapshot);
        let mut e = OnlineStats::new();
        e.merge(&snapshot);
        assert_eq!(e, snapshot);
    }
}
