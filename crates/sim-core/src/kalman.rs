//! One-dimensional Kalman filter.
//!
//! DPS "incorporates a Kalman Filter that takes the (potentially noisy) power
//! measurements and updates the estimated power history" (paper §4.3.2,
//! citing Welch & Bishop's standard formulation). The state is scalar power;
//! the process model is a random walk (power is locally predictable — the
//! paper's inertia observation), so the filter reduces to:
//!
//! ```text
//! predict:  x̂⁻ = x̂          P⁻ = P + Q
//! update:   K  = P⁻/(P⁻+R)   x̂ = x̂⁻ + K(z − x̂⁻)   P = (1−K)P⁻
//! ```

use serde::{Deserialize, Serialize};

/// Scalar Kalman filter with random-walk process model.
///
/// ```
/// use dps_sim_core::KalmanFilter;
/// let mut kf = KalmanFilter::new(1.0, 4.0);
/// let est = kf.update(100.0);
/// // The first update adopts the measurement (infinite prior uncertainty).
/// assert!((est - 100.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KalmanFilter {
    /// Process-noise variance Q: how much the true power may drift per step.
    process_variance: f64,
    /// Measurement-noise variance R: RAPL reading noise.
    measurement_variance: f64,
    /// Current state estimate x̂ (`None` until the first measurement).
    estimate: Option<f64>,
    /// Estimation-error variance P.
    error_variance: f64,
    /// Kalman gain from the most recent update (for diagnostics/tests).
    last_gain: f64,
}

impl KalmanFilter {
    /// Creates a filter with process-noise variance `process_variance` (Q)
    /// and measurement-noise variance `measurement_variance` (R).
    ///
    /// # Panics
    /// Panics if either variance is negative or non-finite, or if both are
    /// zero (the gain would be undefined).
    pub fn new(process_variance: f64, measurement_variance: f64) -> Self {
        assert!(
            process_variance.is_finite() && process_variance >= 0.0,
            "Q must be finite and non-negative"
        );
        assert!(
            measurement_variance.is_finite() && measurement_variance >= 0.0,
            "R must be finite and non-negative"
        );
        assert!(
            process_variance > 0.0 || measurement_variance > 0.0,
            "Q and R cannot both be zero"
        );
        Self {
            process_variance,
            measurement_variance,
            estimate: None,
            error_variance: 0.0,
            last_gain: 0.0,
        }
    }

    /// Feeds a measurement `z`, returning the updated estimate.
    ///
    /// The first measurement initialises the state directly (equivalent to an
    /// infinite prior variance), as is standard when no prior is available.
    ///
    /// Non-finite measurements (NaN, ±∞ — e.g. a dropped-out sensor) are
    /// rejected without touching the state: the filter holds its previous
    /// estimate rather than poisoning it, returning that estimate (0 if no
    /// measurement has ever arrived).
    pub fn update(&mut self, z: f64) -> f64 {
        if !z.is_finite() {
            return self.estimate.unwrap_or(0.0);
        }
        match self.estimate {
            None => {
                self.estimate = Some(z);
                self.error_variance = self.measurement_variance;
                self.last_gain = 1.0;
                z
            }
            Some(x) => {
                // Predict: random walk keeps x̂, inflates P by Q.
                let p_prior = self.error_variance + self.process_variance;
                // Update.
                let k = p_prior / (p_prior + self.measurement_variance);
                let x_new = x + k * (z - x);
                self.error_variance = (1.0 - k) * p_prior;
                self.estimate = Some(x_new);
                self.last_gain = k;
                x_new
            }
        }
    }

    /// Current estimate; `None` before the first measurement.
    #[inline]
    pub fn estimate(&self) -> Option<f64> {
        self.estimate
    }

    /// Current estimation-error variance P.
    #[inline]
    pub fn error_variance(&self) -> f64 {
        self.error_variance
    }

    /// Kalman gain applied at the most recent update.
    #[inline]
    pub fn last_gain(&self) -> f64 {
        self.last_gain
    }

    /// Resets the filter to its unmeasured state.
    pub fn reset(&mut self) {
        self.estimate = None;
        self.error_variance = 0.0;
        self.last_gain = 0.0;
    }

    /// Snapshot of the dynamic state `(estimate, error variance, last gain)`
    /// for checkpointing. The (Q, R) parameters are construction state and
    /// are not included.
    #[inline]
    pub fn state(&self) -> (Option<f64>, f64, f64) {
        (self.estimate, self.error_variance, self.last_gain)
    }

    /// Restores a snapshot taken with [`KalmanFilter::state`] onto a filter
    /// constructed with the same (Q, R).
    pub fn restore_state(
        &mut self,
        estimate: Option<f64>,
        error_variance: f64,
        last_gain: f64,
    ) -> Result<(), String> {
        if let Some(x) = estimate {
            if !x.is_finite() {
                return Err(format!("estimate must be finite, got {x}"));
            }
        }
        if !(error_variance.is_finite() && error_variance >= 0.0) {
            return Err(format!(
                "error variance must be finite and non-negative, got {error_variance}"
            ));
        }
        if !(last_gain.is_finite() && (0.0..=1.0).contains(&last_gain)) {
            return Err(format!("gain must lie in [0, 1], got {last_gain}"));
        }
        self.estimate = estimate;
        self.error_variance = error_variance;
        self.last_gain = last_gain;
        Ok(())
    }

    /// Steady-state gain for this (Q, R) pair: the fixed point of the gain
    /// recursion, `K∞ = (√(Q² + 4QR) + Q) / (√(Q² + 4QR) + Q + 2R)`.
    pub fn steady_state_gain(&self) -> f64 {
        let q = self.process_variance;
        let r = self.measurement_variance;
        if r == 0.0 {
            return 1.0;
        }
        let disc = (q * q + 4.0 * q * r).sqrt();
        (disc + q) / (disc + q + 2.0 * r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_update_adopts_measurement() {
        let mut kf = KalmanFilter::new(0.5, 2.0);
        assert_eq!(kf.estimate(), None);
        assert_eq!(kf.update(55.5), 55.5);
        assert_eq!(kf.estimate(), Some(55.5));
        assert_eq!(kf.last_gain(), 1.0);
    }

    #[test]
    fn constant_signal_converges_exactly() {
        let mut kf = KalmanFilter::new(0.1, 5.0);
        let mut est = 0.0;
        for _ in 0..200 {
            est = kf.update(110.0);
        }
        assert!((est - 110.0).abs() < 1e-9);
    }

    #[test]
    fn noisy_constant_estimate_tighter_than_raw() {
        use crate::rng::RngStream;
        let mut rng = RngStream::new(17, "kalman-test");
        let truth = 120.0;
        let noise_std = 5.0;
        let mut kf = KalmanFilter::new(0.05, noise_std * noise_std);
        let mut errs_raw = Vec::new();
        let mut errs_kf = Vec::new();
        for _ in 0..2000 {
            let z = truth + rng.normal(0.0, noise_std);
            let est = kf.update(z);
            errs_raw.push((z - truth).abs());
            errs_kf.push((est - truth).abs());
        }
        // Skip the convergence transient.
        let mean = |v: &[f64]| v[100..].iter().sum::<f64>() / (v.len() - 100) as f64;
        assert!(
            mean(&errs_kf) < 0.5 * mean(&errs_raw),
            "kf {} vs raw {}",
            mean(&errs_kf),
            mean(&errs_raw)
        );
    }

    #[test]
    fn tracks_step_change() {
        // With non-trivial Q the filter must follow a 20→160 W step within a
        // few samples — power dynamics depend on not over-smoothing edges.
        let mut kf = KalmanFilter::new(25.0, 4.0);
        for _ in 0..20 {
            kf.update(20.0);
        }
        let mut est = 0.0;
        for _ in 0..4 {
            est = kf.update(160.0);
        }
        assert!(est > 140.0, "filter lagging: {est}");
    }

    #[test]
    fn gain_converges_to_steady_state() {
        let mut kf = KalmanFilter::new(1.0, 10.0);
        for _ in 0..500 {
            kf.update(100.0);
        }
        let expected = kf.steady_state_gain();
        assert!(
            (kf.last_gain() - expected).abs() < 1e-6,
            "gain {} vs steady {}",
            kf.last_gain(),
            expected
        );
    }

    #[test]
    fn zero_measurement_noise_passthrough() {
        let mut kf = KalmanFilter::new(1.0, 0.0);
        kf.update(10.0);
        assert_eq!(kf.update(99.0), 99.0);
        assert_eq!(kf.steady_state_gain(), 1.0);
    }

    #[test]
    fn reset_clears_state() {
        let mut kf = KalmanFilter::new(1.0, 1.0);
        kf.update(50.0);
        kf.reset();
        assert_eq!(kf.estimate(), None);
        assert_eq!(kf.update(70.0), 70.0);
    }

    #[test]
    fn non_finite_measurements_are_held_not_propagated() {
        let mut kf = KalmanFilter::new(1.0, 4.0);
        assert_eq!(kf.update(f64::NAN), 0.0, "no prior: neutral 0");
        assert_eq!(kf.estimate(), None, "NaN must not initialise the filter");
        kf.update(80.0);
        let before = (kf.estimate(), kf.error_variance(), kf.last_gain());
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert_eq!(kf.update(bad), 80.0, "hold previous estimate");
        }
        assert_eq!(
            (kf.estimate(), kf.error_variance(), kf.last_gain()),
            before,
            "rejected samples must not touch any state"
        );
        assert!(kf.update(82.0).is_finite());
    }

    #[test]
    #[should_panic(expected = "cannot both be zero")]
    fn both_zero_variances_rejected() {
        KalmanFilter::new(0.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "R must be finite")]
    fn negative_r_rejected() {
        KalmanFilter::new(1.0, -1.0);
    }
}
