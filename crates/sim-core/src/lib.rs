//! Simulation substrate for the DPS reproduction.
//!
//! This crate holds the domain-neutral building blocks shared by every other
//! crate in the workspace:
//!
//! * [`units`] — physical quantities (`Watts`, `Joules`, `Seconds`) and the
//!   discrete simulation clock.
//! * [`rng`] — deterministic, labelled RNG streams so every experiment is
//!   bit-reproducible.
//! * [`ring`] — fixed-capacity ring buffer used for the bounded power
//!   histories DPS keeps per power-capping unit.
//! * [`series`] — time series container with windowing and resampling.
//! * [`stats`] — summary statistics (mean, std, harmonic mean, percentiles)
//!   plus streaming Welford accumulation.
//! * [`signal`] — signal processing for *power dynamics*: prominent-peak
//!   detection (Palshikar-style prominence), derivative estimation and
//!   smoothing.
//! * [`phases`] — hysteresis phase segmentation of measured power traces
//!   and the §3.1 diversity report (duration / peak / derivative ranges).
//! * [`rolling`] — incrementally maintained window statistics (rolling
//!   moments with periodic exact resync, run-length prominent-peak
//!   tracking) so the per-cycle statistics reads are O(1) instead of
//!   O(`history_len`).
//! * [`kalman`] — the 1-dimensional Kalman filter DPS uses to de-noise RAPL
//!   power measurements (paper §4.3.2).
//! * [`window`] — half-open time windows, the shared vocabulary for the
//!   fault schedules in `dps-ctrl` (wire faults) and `dps-rapl`
//!   (sensor/actuator faults).

#![warn(missing_docs)]

pub mod kalman;
pub mod phases;
pub mod ring;
pub mod rng;
pub mod rolling;
pub mod series;
pub mod signal;
pub mod stats;
pub mod units;
pub mod window;

pub use kalman::KalmanFilter;
pub use ring::RingBuffer;
pub use rng::{RngStream, RngStreamState};
pub use rolling::{PeakTracker, RollingMoments};
pub use series::TimeSeries;
pub use stats::OnlineStats;
pub use units::{Joules, Seconds, SimClock, Timestep, Watts};
pub use window::TimeWindow;
