//! Fixed-capacity ring buffer.
//!
//! DPS keeps a bounded *estimated power history* per power-capping unit
//! (default 20 steps, §6.5: "the power history can easily fit in the
//! last-level cache even scaled to tens of thousands of nodes"). The ring
//! buffer never allocates after construction, so the controller's steady
//! state is allocation-free.

use serde::{Deserialize, Serialize};

/// A fixed-capacity FIFO ring buffer; pushing beyond capacity evicts the
/// oldest element.
///
/// Indexing is oldest-first: `buf[0]` is the oldest retained sample and
/// `buf[len-1]` the newest, matching the paper's `power_history[-1]`
/// (newest) / `power_history[-k]` (k-th newest) notation via [`RingBuffer::from_newest`].
///
/// ```
/// use dps_sim_core::RingBuffer;
/// let mut h = RingBuffer::new(3);
/// for p in [10.0, 20.0, 30.0, 40.0] { h.push(p); }
/// assert_eq!(h.as_vec(), vec![20.0, 30.0, 40.0]);
/// assert_eq!(h.from_newest(0), Some(&40.0));
/// assert_eq!(h.from_newest(2), Some(&20.0));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RingBuffer<T> {
    items: Vec<T>,
    head: usize,
    capacity: usize,
}

impl<T> RingBuffer<T> {
    /// Creates an empty buffer holding at most `capacity` elements.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring buffer capacity must be positive");
        Self {
            items: Vec::with_capacity(capacity),
            head: 0,
            capacity,
        }
    }

    /// Maximum number of retained elements.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of currently retained elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the buffer holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Whether the buffer has reached capacity (pushes now evict).
    #[inline]
    pub fn is_full(&self) -> bool {
        self.items.len() == self.capacity
    }

    /// Appends an element, evicting and returning the oldest one when full.
    pub fn push(&mut self, value: T) -> Option<T> {
        if self.items.len() < self.capacity {
            self.items.push(value);
            None
        } else {
            let evicted = std::mem::replace(&mut self.items[self.head], value);
            self.head = (self.head + 1) % self.capacity;
            Some(evicted)
        }
    }

    /// Oldest-first access: `get(0)` is the oldest retained element.
    #[inline]
    pub fn get(&self, index: usize) -> Option<&T> {
        if index >= self.items.len() {
            return None;
        }
        let physical = (self.head + index) % self.capacity.min(self.items.len().max(1));
        // Before the buffer wraps, head is 0 and physical == index; after it
        // wraps, items.len() == capacity so the modulus is exact.
        self.items.get(physical)
    }

    /// Newest-first access: `from_newest(0)` is the most recent element,
    /// mirroring the paper's Python-style `history[-1-k]` indexing.
    #[inline]
    pub fn from_newest(&self, k: usize) -> Option<&T> {
        let len = self.items.len();
        if k >= len {
            None
        } else {
            self.get(len - 1 - k)
        }
    }

    /// The most recent element.
    #[inline]
    pub fn newest(&self) -> Option<&T> {
        self.from_newest(0)
    }

    /// The oldest retained element.
    #[inline]
    pub fn oldest(&self) -> Option<&T> {
        self.get(0)
    }

    /// Iterates oldest → newest.
    pub fn iter(&self) -> impl Iterator<Item = &T> + '_ {
        (0..self.items.len()).filter_map(move |i| self.get(i))
    }

    /// Removes all elements, keeping capacity.
    pub fn clear(&mut self) {
        self.items.clear();
        self.head = 0;
    }
}

impl<T: Clone> RingBuffer<T> {
    /// Copies the contents oldest-first into a `Vec`.
    pub fn as_vec(&self) -> Vec<T> {
        self.iter().cloned().collect()
    }

    /// Copies the contents oldest-first into `out`, reusing its capacity —
    /// the allocation-free variant for per-cycle hot paths.
    pub fn copy_to(&self, out: &mut Vec<T>) {
        out.clear();
        out.extend(self.iter().cloned());
    }
}

impl RingBuffer<f64> {
    /// Mean of the retained values; `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.is_empty() {
            return None;
        }
        Some(self.iter().sum::<f64>() / self.len() as f64)
    }

    /// Population standard deviation of the retained values; `None` when empty.
    pub fn std_dev(&self) -> Option<f64> {
        let mean = self.mean()?;
        let var = self.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / self.len() as f64;
        Some(var.sqrt())
    }

    /// Sum over the newest `k` elements (fewer if the buffer is shorter).
    pub fn sum_newest(&self, k: usize) -> f64 {
        (0..k.min(self.len()))
            .filter_map(|i| self.from_newest(i))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_until_full_then_evict() {
        let mut b = RingBuffer::new(3);
        assert_eq!(b.push(1), None);
        assert_eq!(b.push(2), None);
        assert_eq!(b.push(3), None);
        assert!(b.is_full());
        assert_eq!(b.push(4), Some(1));
        assert_eq!(b.push(5), Some(2));
        assert_eq!(b.as_vec(), vec![3, 4, 5]);
    }

    #[test]
    fn oldest_first_indexing_before_wrap() {
        let mut b = RingBuffer::new(4);
        b.push(10);
        b.push(20);
        assert_eq!(b.get(0), Some(&10));
        assert_eq!(b.get(1), Some(&20));
        assert_eq!(b.get(2), None);
    }

    #[test]
    fn oldest_first_indexing_after_wrap() {
        let mut b = RingBuffer::new(3);
        for v in 0..7 {
            b.push(v);
        }
        assert_eq!(b.as_vec(), vec![4, 5, 6]);
        assert_eq!(b.oldest(), Some(&4));
        assert_eq!(b.newest(), Some(&6));
    }

    #[test]
    fn newest_first_indexing() {
        let mut b = RingBuffer::new(5);
        for v in [1.0, 2.0, 3.0, 4.0] {
            b.push(v);
        }
        assert_eq!(b.from_newest(0), Some(&4.0));
        assert_eq!(b.from_newest(3), Some(&1.0));
        assert_eq!(b.from_newest(4), None);
    }

    #[test]
    fn clear_resets() {
        let mut b = RingBuffer::new(2);
        b.push(1);
        b.push(2);
        b.push(3);
        b.clear();
        assert!(b.is_empty());
        b.push(9);
        assert_eq!(b.as_vec(), vec![9]);
    }

    #[test]
    fn mean_and_std() {
        let mut b = RingBuffer::new(4);
        assert_eq!(b.mean(), None);
        assert_eq!(b.std_dev(), None);
        for v in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            b.push(v);
        }
        // retained: [5,5,7,9] → mean 6.5
        assert_eq!(b.mean(), Some(6.5));
        let std = b.std_dev().unwrap();
        assert!((std - 1.6583).abs() < 1e-3, "std {std}");
    }

    #[test]
    fn sum_newest_partial() {
        let mut b = RingBuffer::new(10);
        for v in [1.0, 2.0, 3.0] {
            b.push(v);
        }
        assert_eq!(b.sum_newest(2), 5.0);
        assert_eq!(b.sum_newest(99), 6.0);
        assert_eq!(b.sum_newest(0), 0.0);
    }

    #[test]
    fn iter_matches_as_vec() {
        let mut b = RingBuffer::new(3);
        for v in 0..10 {
            b.push(v);
        }
        let via_iter: Vec<i32> = b.iter().cloned().collect();
        assert_eq!(via_iter, b.as_vec());
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        RingBuffer::<f64>::new(0);
    }

    #[test]
    fn capacity_one_always_newest() {
        let mut b = RingBuffer::new(1);
        for v in 0..5 {
            b.push(v);
        }
        assert_eq!(b.as_vec(), vec![4]);
        assert_eq!(b.oldest(), b.newest());
    }
}
