//! Phase segmentation of measured power traces.
//!
//! §3.1 characterises workloads by their *power phases* — stretches of
//! roughly stable power separated by rises and falls — and reports their
//! duration, peak and derivative diversity. This module recovers those
//! phases from a sampled trace (measured, not ground truth): a hysteresis
//! segmenter splits the trace wherever power moves more than a threshold
//! away from the running phase level, and summary statistics quantify the
//! three §3.1 observations for any trace.

use crate::stats;
use crate::units::Seconds;
use serde::{Deserialize, Serialize};

/// One detected phase.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhaseSegment {
    /// Index of the first sample.
    pub start: usize,
    /// Number of samples (≥ 1).
    pub len: usize,
    /// Mean power over the phase.
    pub mean_power: f64,
    /// Peak power within the phase.
    pub peak_power: f64,
}

impl PhaseSegment {
    /// Phase duration given the trace's sampling period.
    pub fn duration(&self, period: Seconds) -> Seconds {
        self.len as f64 * period
    }
}

/// Segments a trace into phases: a new phase starts whenever a sample
/// deviates from the current phase's running mean by more than
/// `threshold` Watts (hysteresis: the running mean adapts within a phase,
/// so slow drift does not split it, while a step change does).
///
/// Returns at least one segment for a non-empty trace.
pub fn segment(trace: &[f64], threshold: f64) -> Vec<PhaseSegment> {
    assert!(threshold > 0.0, "threshold must be positive");
    let mut out = Vec::new();
    if trace.is_empty() {
        return out;
    }
    let mut start = 0usize;
    let mut sum = trace[0];
    let mut peak = trace[0];
    for (i, &v) in trace.iter().enumerate().skip(1) {
        let len = i - start;
        let mean = sum / len as f64;
        if (v - mean).abs() > threshold {
            out.push(PhaseSegment {
                start,
                len,
                mean_power: mean,
                peak_power: peak,
            });
            start = i;
            sum = v;
            peak = v;
        } else {
            sum += v;
            peak = peak.max(v);
        }
    }
    let len = trace.len() - start;
    out.push(PhaseSegment {
        start,
        len,
        mean_power: sum / len as f64,
        peak_power: peak,
    });
    out
}

/// The three §3.1 diversity observations, quantified for one trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseReport {
    /// Number of detected phases.
    pub phase_count: usize,
    /// Shortest/mean/longest phase duration in seconds.
    pub duration_min: Seconds,
    /// See `duration_min`.
    pub duration_mean: Seconds,
    /// See `duration_min`.
    pub duration_max: Seconds,
    /// Lowest/highest phase peak power among high phases (above the
    /// segmentation threshold over the trace minimum).
    pub peak_min: f64,
    /// See `peak_min`.
    pub peak_max: f64,
    /// Largest single-step rise in the trace (W per sample).
    pub max_rise: f64,
    /// Largest single-step fall in the trace (negative, W per sample).
    pub max_fall: f64,
}

/// Builds a [`PhaseReport`] for a trace sampled at `period` seconds.
/// Returns `None` for traces shorter than 2 samples.
pub fn report(trace: &[f64], period: Seconds, threshold: f64) -> Option<PhaseReport> {
    if trace.len() < 2 {
        return None;
    }
    let segments = segment(trace, threshold);
    let durations: Vec<f64> = segments.iter().map(|s| s.duration(period)).collect();
    let floor = stats::min(trace)? + threshold;
    let peaks: Vec<f64> = segments
        .iter()
        .map(|s| s.peak_power)
        .filter(|&p| p > floor)
        .collect();
    let steps: Vec<f64> = trace.windows(2).map(|w| w[1] - w[0]).collect();
    Some(PhaseReport {
        phase_count: segments.len(),
        duration_min: stats::min(&durations)?,
        duration_mean: stats::mean(&durations)?,
        duration_max: stats::max(&durations)?,
        peak_min: stats::min(&peaks).unwrap_or(0.0),
        peak_max: stats::max(&peaks).unwrap_or(0.0),
        max_rise: stats::max(&steps)?.max(0.0),
        max_fall: stats::min(&steps)?.min(0.0),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square_wave(high: f64, low: f64, half_period: usize, cycles: usize) -> Vec<f64> {
        let mut out = Vec::new();
        for _ in 0..cycles {
            out.extend(std::iter::repeat_n(high, half_period));
            out.extend(std::iter::repeat_n(low, half_period));
        }
        out
    }

    #[test]
    fn flat_trace_is_one_phase() {
        let segs = segment(&[110.0; 50], 30.0);
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].len, 50);
        assert_eq!(segs[0].mean_power, 110.0);
    }

    #[test]
    fn square_wave_splits_per_level() {
        let trace = square_wave(150.0, 50.0, 10, 3);
        let segs = segment(&trace, 30.0);
        assert_eq!(segs.len(), 6, "{segs:?}");
        for (i, s) in segs.iter().enumerate() {
            assert_eq!(s.len, 10);
            let expected = if i % 2 == 0 { 150.0 } else { 50.0 };
            assert_eq!(s.mean_power, expected);
        }
    }

    #[test]
    fn slow_drift_does_not_split() {
        // 0.5 W/sample drift: the running mean tracks it within a 30 W
        // threshold for a long time.
        let trace: Vec<f64> = (0..60).map(|i| 100.0 + 0.5 * i as f64).collect();
        let segs = segment(&trace, 30.0);
        assert_eq!(segs.len(), 1, "{segs:?}");
    }

    #[test]
    fn step_change_splits() {
        let mut trace = vec![60.0; 20];
        trace.extend(vec![140.0; 20]);
        let segs = segment(&trace, 30.0);
        assert_eq!(segs.len(), 2);
        assert_eq!(segs[1].start, 20);
    }

    #[test]
    fn segments_partition_the_trace() {
        let trace = square_wave(160.0, 40.0, 7, 4);
        let segs = segment(&trace, 25.0);
        let mut covered = 0;
        for s in &segs {
            assert_eq!(s.start, covered);
            covered += s.len;
        }
        assert_eq!(covered, trace.len());
    }

    #[test]
    fn noise_below_threshold_ignored() {
        use crate::rng::RngStream;
        let mut rng = RngStream::new(5, "phase-noise");
        let trace: Vec<f64> = (0..200).map(|_| 110.0 + rng.normal(0.0, 2.0)).collect();
        let segs = segment(&trace, 30.0);
        assert_eq!(segs.len(), 1);
    }

    #[test]
    fn report_quantifies_diversity() {
        // Two short high phases at different peaks plus one long low phase.
        let mut trace = vec![50.0; 40];
        trace.extend(vec![150.0; 5]);
        trace.extend(vec![50.0; 40]);
        trace.extend(vec![120.0; 15]);
        trace.extend(vec![50.0; 40]);
        let r = report(&trace, 1.0, 30.0).unwrap();
        assert_eq!(r.phase_count, 5);
        assert_eq!(r.duration_min, 5.0);
        assert_eq!(r.duration_max, 40.0);
        assert_eq!(r.peak_min, 120.0);
        assert_eq!(r.peak_max, 150.0);
        assert_eq!(r.max_rise, 100.0);
        assert_eq!(r.max_fall, -100.0);
    }

    #[test]
    fn report_none_for_tiny_trace() {
        assert_eq!(report(&[1.0], 1.0, 30.0), None);
        assert_eq!(report(&[], 1.0, 30.0), None);
    }

    #[test]
    fn empty_trace_no_segments() {
        assert!(segment(&[], 30.0).is_empty());
    }

    #[test]
    #[should_panic(expected = "threshold must be positive")]
    fn zero_threshold_rejected() {
        segment(&[1.0], 0.0);
    }
}
