//! Deterministic, labelled RNG streams.
//!
//! Every stochastic element of the reproduction — workload demand traces,
//! RAPL measurement noise, the MIMD controller's randomized increase order —
//! draws from its own stream derived from `(experiment seed, label)`. This
//! makes every figure and table bit-reproducible while keeping streams
//! statistically independent: changing how many random numbers one component
//! consumes never perturbs another component.
//!
//! The generator is `splitmix64` for stream derivation (it is a full-period
//! mixer, so any label hash yields a well-distributed seed) feeding
//! `xoshiro256**`-style state via [`rand::rngs::StdRng`].

use rand::distributions::uniform::{SampleRange, SampleUniform};
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// Mixes a 64-bit value with the splitmix64 finalizer.
#[inline]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a hash of a label string, used to derive per-component streams.
#[inline]
fn fnv1a(label: &str) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for byte in label.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Wraps the backing generator and counts every 64-bit draw, so a stream's
/// exact position can be captured and replayed for checkpoint/restore.
///
/// Every sampling path (uniform floats, ranges, shuffles, byte fills) bottoms
/// out in [`RngCore::next_u64`] here, so the draw count alone pins the
/// generator state: replaying `draws` calls on a fresh generator derived from
/// the same `(seed, label_hash)` reproduces it bit-for-bit.
#[derive(Debug, Clone)]
struct CountingRng {
    rng: StdRng,
    draws: u64,
}

impl RngCore for CountingRng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.draws += 1;
        self.rng.next_u64()
    }
}

/// The replayable position of an [`RngStream`]: the derivation inputs plus
/// how many 64-bit values have been consumed. [`RngStream::restore`] turns
/// this back into a live stream at the identical position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RngStreamState {
    /// Experiment seed the stream was derived from.
    pub seed: u64,
    /// Mixed label hash identifying the stream (including child derivations).
    pub label_hash: u64,
    /// Number of 64-bit draws consumed so far.
    pub draws: u64,
}

/// A deterministic random stream identified by `(seed, label)`.
///
/// ```
/// use dps_sim_core::RngStream;
/// let mut a = RngStream::new(42, "rapl-noise/node0/socket1");
/// let mut b = RngStream::new(42, "rapl-noise/node0/socket1");
/// assert_eq!(a.next_u64(), b.next_u64()); // same stream → same values
/// let mut c = RngStream::new(42, "rapl-noise/node0/socket0");
/// assert_ne!(a.next_u64(), c.next_u64()); // different label → different stream
/// ```
#[derive(Debug, Clone)]
pub struct RngStream {
    rng: CountingRng,
    seed: u64,
    label_hash: u64,
}

impl RngStream {
    fn from_parts(seed: u64, label_hash: u64) -> Self {
        let mixed = splitmix64(seed ^ splitmix64(label_hash));
        Self {
            rng: CountingRng {
                rng: StdRng::seed_from_u64(mixed),
                draws: 0,
            },
            seed,
            label_hash,
        }
    }

    /// Creates a stream for `(seed, label)`.
    pub fn new(seed: u64, label: &str) -> Self {
        Self::from_parts(seed, fnv1a(label))
    }

    /// Derives a child stream; `child("x")` from the same parent is always the
    /// same stream, and distinct child labels give independent streams.
    pub fn child(&self, label: &str) -> Self {
        Self::from_parts(self.seed, self.label_hash ^ splitmix64(fnv1a(label)))
    }

    /// The experiment seed this stream was derived from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Captures the stream's replayable position.
    pub fn state(&self) -> RngStreamState {
        RngStreamState {
            seed: self.seed,
            label_hash: self.label_hash,
            draws: self.rng.draws,
        }
    }

    /// Rebuilds a stream at exactly the position captured by [`Self::state`],
    /// by re-deriving the generator and replaying the recorded draws.
    pub fn restore(state: RngStreamState) -> Self {
        let mut stream = Self::from_parts(state.seed, state.label_hash);
        for _ in 0..state.draws {
            stream.next_u64();
        }
        stream
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.rng.next_u64()
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn uniform(&mut self) -> f64 {
        self.rng.gen::<f64>()
    }

    /// Uniform sample from a range (e.g. `0..10`, `0.5..=1.5`).
    #[inline]
    pub fn range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        self.rng.gen_range(range)
    }

    /// Standard normal sample via Box–Muller (avoids pulling in
    /// `rand_distr`; two uniforms per pair, one discarded for simplicity —
    /// this is not a hot path).
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        debug_assert!(std_dev >= 0.0, "std_dev must be non-negative");
        if std_dev == 0.0 {
            return mean;
        }
        // u1 in (0,1] so ln(u1) is finite.
        let u1: f64 = 1.0 - self.rng.gen::<f64>();
        let u2: f64 = self.rng.gen::<f64>();
        let mag = (-2.0 * u1.ln()).sqrt();
        mean + std_dev * mag * (std::f64::consts::TAU * u2).cos()
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0,1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.rng.gen::<f64>() < p.clamp(0.0, 1.0)
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        // Manual Fisher–Yates keeps us off rand's SliceRandom trait so the
        // shuffle order is pinned to this implementation, not rand's.
        for i in (1..items.len()).rev() {
            let j = self.rng.gen_range(0..=i);
            items.swap(i, j);
        }
    }

    /// Samples a log-normal-ish "jitter" multiplier `exp(N(0, sigma))`,
    /// useful for run-to-run duration variance in workload models.
    pub fn jitter(&mut self, sigma: f64) -> f64 {
        self.normal(0.0, sigma).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_label_same_stream() {
        let mut a = RngStream::new(7, "alpha");
        let mut b = RngStream::new(7, "alpha");
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seed_different_stream() {
        let mut a = RngStream::new(7, "alpha");
        let mut b = RngStream::new(8, "alpha");
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2, "streams should diverge, {same} collisions");
    }

    #[test]
    fn different_label_different_stream() {
        let mut a = RngStream::new(7, "alpha");
        let mut b = RngStream::new(7, "beta");
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn child_streams_are_deterministic_and_independent() {
        let parent = RngStream::new(11, "root");
        let mut c1 = parent.child("x");
        let mut c1b = parent.child("x");
        let mut c2 = parent.child("y");
        assert_eq!(c1.next_u64(), c1b.next_u64());
        let same = (0..64).filter(|_| c1.next_u64() == c2.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut s = RngStream::new(3, "u");
        for _ in 0..1000 {
            let x = s.uniform();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn normal_moments_roughly_correct() {
        let mut s = RngStream::new(5, "n");
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| s.normal(10.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.1, "std {}", var.sqrt());
    }

    #[test]
    fn normal_zero_std_is_constant() {
        let mut s = RngStream::new(5, "n0");
        assert_eq!(s.normal(42.0, 0.0), 42.0);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut s = RngStream::new(9, "shuffle");
        let mut items: Vec<u32> = (0..50).collect();
        s.shuffle(&mut items);
        let mut sorted = items.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn shuffle_deterministic() {
        let mut a = RngStream::new(9, "shuffle");
        let mut b = RngStream::new(9, "shuffle");
        let mut va: Vec<u32> = (0..20).collect();
        let mut vb: Vec<u32> = (0..20).collect();
        a.shuffle(&mut va);
        b.shuffle(&mut vb);
        assert_eq!(va, vb);
    }

    #[test]
    fn chance_extremes() {
        let mut s = RngStream::new(1, "c");
        assert!(!(0..100).any(|_| s.chance(0.0)));
        assert!((0..100).all(|_| s.chance(1.0)));
    }

    #[test]
    fn state_restore_resumes_identically() {
        let mut original = RngStream::new(21, "ckpt");
        // Consume through every sampling path so the count covers them all.
        original.uniform();
        original.normal(5.0, 2.0);
        original.range(0..100);
        let mut scratch: Vec<u32> = (0..9).collect();
        original.shuffle(&mut scratch);
        original.chance(0.5);
        let state = original.state();
        let mut restored = RngStream::restore(state);
        assert_eq!(restored.state(), state);
        for _ in 0..100 {
            assert_eq!(original.next_u64(), restored.next_u64());
        }
    }

    #[test]
    fn child_state_restores_without_parent() {
        let parent = RngStream::new(5, "root");
        let mut child = parent.child("inner");
        child.uniform();
        let mut restored = RngStream::restore(child.state());
        assert_eq!(child.next_u64(), restored.next_u64());
    }

    #[test]
    fn jitter_positive() {
        let mut s = RngStream::new(1, "j");
        for _ in 0..100 {
            assert!(s.jitter(0.3) > 0.0);
        }
    }
}
