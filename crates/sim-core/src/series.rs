//! Uniformly-sampled time series.
//!
//! Power traces in this reproduction are sampled on the controller's fixed
//! period, so a series is a start time, a period, and a dense value vector.
//! This keeps the hot logging path allocation-cheap (a push is a `Vec` push)
//! and makes windowed statistics trivial.

use crate::stats;
use crate::units::Seconds;
use serde::{Deserialize, Serialize};

/// A uniformly sampled series of `f64` values.
///
/// ```
/// use dps_sim_core::TimeSeries;
/// let mut ts = TimeSeries::new(1.0);
/// ts.extend([10.0, 20.0, 30.0]);
/// assert_eq!(ts.len(), 3);
/// assert_eq!(ts.time_at(2), 2.0);
/// assert_eq!(ts.value_at_time(1.2), Some(20.0));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimeSeries {
    period: Seconds,
    start: Seconds,
    values: Vec<f64>,
}

impl TimeSeries {
    /// Creates an empty series with sampling period `period` starting at t=0.
    ///
    /// # Panics
    /// Panics unless `period` is positive and finite.
    pub fn new(period: Seconds) -> Self {
        Self::starting_at(period, 0.0)
    }

    /// Creates an empty series with the given start time.
    pub fn starting_at(period: Seconds, start: Seconds) -> Self {
        assert!(
            period.is_finite() && period > 0.0,
            "series period must be positive, got {period}"
        );
        Self {
            period,
            start,
            values: Vec::new(),
        }
    }

    /// Builds a series from existing samples.
    pub fn from_values(period: Seconds, values: Vec<f64>) -> Self {
        let mut ts = Self::new(period);
        ts.values = values;
        ts
    }

    /// Sampling period in seconds.
    #[inline]
    pub fn period(&self) -> Seconds {
        self.period
    }

    /// Time of the first sample.
    #[inline]
    pub fn start(&self) -> Seconds {
        self.start
    }

    /// Number of samples.
    #[inline]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the series has no samples.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Appends one sample.
    #[inline]
    pub fn push(&mut self, value: f64) {
        self.values.push(value);
    }

    /// Appends samples from an iterator.
    pub fn extend(&mut self, values: impl IntoIterator<Item = f64>) {
        self.values.extend(values);
    }

    /// Raw sample slice.
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Timestamp of sample `i`.
    #[inline]
    pub fn time_at(&self, i: usize) -> Seconds {
        self.start + i as Seconds * self.period
    }

    /// Duration covered by the series (`len * period`).
    pub fn duration(&self) -> Seconds {
        self.values.len() as Seconds * self.period
    }

    /// Sample-and-hold lookup: the value of the sample whose interval
    /// contains `t`; `None` if `t` precedes the series or exceeds it.
    pub fn value_at_time(&self, t: Seconds) -> Option<f64> {
        if t < self.start {
            return None;
        }
        let idx = ((t - self.start) / self.period).floor() as usize;
        self.values.get(idx).copied()
    }

    /// Iterates `(time, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (Seconds, f64)> + '_ {
        self.values
            .iter()
            .enumerate()
            .map(move |(i, v)| (self.time_at(i), *v))
    }

    /// Mean of all samples.
    pub fn mean(&self) -> Option<f64> {
        stats::mean(&self.values)
    }

    /// Population standard deviation of all samples.
    pub fn std_dev(&self) -> Option<f64> {
        stats::std_dev(&self.values)
    }

    /// Maximum sample.
    pub fn max(&self) -> Option<f64> {
        stats::max(&self.values)
    }

    /// Minimum sample.
    pub fn min(&self) -> Option<f64> {
        stats::min(&self.values)
    }

    /// Fraction of samples strictly above `threshold` (the paper classifies
    /// workloads by "% time above 110 W", Table 2).
    pub fn fraction_above(&self, threshold: f64) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        self.values.iter().filter(|v| **v > threshold).count() as f64 / self.values.len() as f64
    }

    /// Sub-series covering sample indices `[lo, hi)`.
    pub fn slice(&self, lo: usize, hi: usize) -> TimeSeries {
        let hi = hi.min(self.values.len());
        let lo = lo.min(hi);
        TimeSeries {
            period: self.period,
            start: self.time_at(lo),
            values: self.values[lo..hi].to_vec(),
        }
    }

    /// Resamples to a new period with sample-and-hold semantics, covering the
    /// same duration.
    pub fn resample(&self, new_period: Seconds) -> TimeSeries {
        assert!(new_period.is_finite() && new_period > 0.0);
        let mut out = TimeSeries::starting_at(new_period, self.start);
        if self.is_empty() {
            return out;
        }
        let n = (self.duration() / new_period).ceil() as usize;
        for i in 0..n {
            let t = self.start + i as Seconds * new_period;
            // Sample-and-hold: last sample extends to the series' end.
            let v = self
                .value_at_time(t)
                .unwrap_or_else(|| *self.values.last().expect("non-empty"));
            out.push(v);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_series() {
        let ts = TimeSeries::new(1.0);
        assert!(ts.is_empty());
        assert_eq!(ts.duration(), 0.0);
        assert_eq!(ts.mean(), None);
        assert_eq!(ts.value_at_time(0.0), None);
    }

    #[test]
    fn push_and_lookup() {
        let mut ts = TimeSeries::new(0.5);
        ts.extend([1.0, 2.0, 3.0]);
        assert_eq!(ts.len(), 3);
        assert_eq!(ts.duration(), 1.5);
        assert_eq!(ts.value_at_time(0.0), Some(1.0));
        assert_eq!(ts.value_at_time(0.49), Some(1.0));
        assert_eq!(ts.value_at_time(0.5), Some(2.0));
        assert_eq!(ts.value_at_time(1.4), Some(3.0));
        assert_eq!(ts.value_at_time(1.51), None);
        assert_eq!(ts.value_at_time(-0.1), None);
    }

    #[test]
    fn start_offset_respected() {
        let mut ts = TimeSeries::starting_at(1.0, 10.0);
        ts.extend([5.0, 6.0]);
        assert_eq!(ts.time_at(0), 10.0);
        assert_eq!(ts.value_at_time(9.0), None);
        assert_eq!(ts.value_at_time(10.5), Some(5.0));
        assert_eq!(ts.value_at_time(11.0), Some(6.0));
    }

    #[test]
    fn fraction_above_counts_strictly() {
        let ts = TimeSeries::from_values(1.0, vec![100.0, 110.0, 120.0, 130.0]);
        assert!((ts.fraction_above(110.0) - 0.5).abs() < 1e-12);
        assert_eq!(ts.fraction_above(1000.0), 0.0);
        assert_eq!(ts.fraction_above(0.0), 1.0);
    }

    #[test]
    fn slice_bounds_clamped() {
        let ts = TimeSeries::from_values(1.0, vec![0.0, 1.0, 2.0, 3.0]);
        let s = ts.slice(1, 3);
        assert_eq!(s.values(), &[1.0, 2.0]);
        assert_eq!(s.start(), 1.0);
        let oob = ts.slice(3, 100);
        assert_eq!(oob.values(), &[3.0]);
        let inverted = ts.slice(5, 2);
        assert!(inverted.is_empty());
    }

    #[test]
    fn resample_downsamples_with_hold() {
        let ts = TimeSeries::from_values(1.0, vec![1.0, 2.0, 3.0, 4.0]);
        let r = ts.resample(2.0);
        assert_eq!(r.values(), &[1.0, 3.0]);
        assert_eq!(r.period(), 2.0);
    }

    #[test]
    fn resample_upsamples_with_hold() {
        let ts = TimeSeries::from_values(1.0, vec![1.0, 2.0]);
        let r = ts.resample(0.5);
        assert_eq!(r.values(), &[1.0, 1.0, 2.0, 2.0]);
    }

    #[test]
    fn iter_yields_time_value() {
        let ts = TimeSeries::from_values(2.0, vec![7.0, 8.0]);
        let pairs: Vec<(f64, f64)> = ts.iter().collect();
        assert_eq!(pairs, vec![(0.0, 7.0), (2.0, 8.0)]);
    }

    #[test]
    fn summary_stats() {
        let ts = TimeSeries::from_values(1.0, vec![10.0, 20.0, 30.0]);
        assert_eq!(ts.mean(), Some(20.0));
        assert_eq!(ts.min(), Some(10.0));
        assert_eq!(ts.max(), Some(30.0));
    }
}
