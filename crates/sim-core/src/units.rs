//! Physical quantities and the discrete simulation clock.
//!
//! The DPS control loop is a fixed-period discrete-time loop (the paper uses
//! a one-second decision cycle, §6.5). All power management code in this
//! workspace is written against [`Timestep`] indices and converts to wall
//! clock seconds only through [`SimClock`].

use serde::{Deserialize, Serialize};

/// Power in Watts. Plain `f64` alias: power values flow through tight loops
/// and arithmetic-heavy controllers, where a newtype would add friction
/// without catching the realistic bug class (all quantities here are Watts).
pub type Watts = f64;

/// Energy in Joules.
pub type Joules = f64;

/// Durations and wall-clock times in seconds.
pub type Seconds = f64;

/// A discrete controller timestep index (the paper's `t`).
pub type Timestep = u64;

/// Discrete simulation clock with a fixed step period (`dT` in the paper's
/// Table 1).
///
/// ```
/// use dps_sim_core::SimClock;
/// let mut clock = SimClock::new(1.0);
/// assert_eq!(clock.now(), 0.0);
/// clock.advance();
/// clock.advance();
/// assert_eq!(clock.timestep(), 2);
/// assert_eq!(clock.now(), 2.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimClock {
    step: Timestep,
    period: Seconds,
}

impl SimClock {
    /// Creates a clock with the given step period in seconds.
    ///
    /// # Panics
    /// Panics if `period` is not strictly positive and finite.
    pub fn new(period: Seconds) -> Self {
        assert!(
            period.is_finite() && period > 0.0,
            "clock period must be positive and finite, got {period}"
        );
        Self { step: 0, period }
    }

    /// The current timestep index.
    #[inline]
    pub fn timestep(&self) -> Timestep {
        self.step
    }

    /// The step period `dT` in seconds.
    #[inline]
    pub fn period(&self) -> Seconds {
        self.period
    }

    /// Current simulated wall-clock time in seconds.
    #[inline]
    pub fn now(&self) -> Seconds {
        self.step as Seconds * self.period
    }

    /// Advances the clock by one step and returns the new timestep index.
    #[inline]
    pub fn advance(&mut self) -> Timestep {
        self.step += 1;
        self.step
    }

    /// Converts a wall-clock duration to a (rounded-up) number of steps.
    pub fn steps_for(&self, duration: Seconds) -> Timestep {
        (duration / self.period).ceil().max(0.0) as Timestep
    }
}

/// Clamps a power value into `[lo, hi]`, tolerating NaN by returning `lo`.
///
/// Controllers divide by caps and demands; a NaN escaping into a cap would
/// poison the whole cluster allocation, so the clamp is defensive.
#[inline]
pub fn clamp_power(value: Watts, lo: Watts, hi: Watts) -> Watts {
    if value.is_nan() {
        lo
    } else {
        value.clamp(lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_starts_at_zero() {
        let clock = SimClock::new(0.5);
        assert_eq!(clock.timestep(), 0);
        assert_eq!(clock.now(), 0.0);
        assert_eq!(clock.period(), 0.5);
    }

    #[test]
    fn clock_advances_by_period() {
        let mut clock = SimClock::new(0.25);
        for _ in 0..8 {
            clock.advance();
        }
        assert_eq!(clock.timestep(), 8);
        assert!((clock.now() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn steps_for_rounds_up() {
        let clock = SimClock::new(1.0);
        assert_eq!(clock.steps_for(0.0), 0);
        assert_eq!(clock.steps_for(0.1), 1);
        assert_eq!(clock.steps_for(1.0), 1);
        assert_eq!(clock.steps_for(1.5), 2);
        assert_eq!(clock.steps_for(10.0), 10);
    }

    #[test]
    #[should_panic(expected = "clock period must be positive")]
    fn zero_period_rejected() {
        SimClock::new(0.0);
    }

    #[test]
    #[should_panic(expected = "clock period must be positive")]
    fn nan_period_rejected() {
        SimClock::new(f64::NAN);
    }

    #[test]
    fn clamp_power_basics() {
        assert_eq!(clamp_power(50.0, 0.0, 165.0), 50.0);
        assert_eq!(clamp_power(-3.0, 0.0, 165.0), 0.0);
        assert_eq!(clamp_power(400.0, 0.0, 165.0), 165.0);
        assert_eq!(clamp_power(f64::NAN, 10.0, 165.0), 10.0);
    }
}
