//! Half-open time windows — the shared vocabulary for fault schedules.
//!
//! Both the control-plane fault schedule (`dps-ctrl`: crashes, partitions,
//! corruption bursts) and the sensor/actuator fault schedule (`dps-rapl`:
//! stuck readings, dropped cap writes, …) script their events as half-open
//! `[at, until)` windows sampled at cycle boundaries. Keeping the window type
//! here lets one experiment compose wire faults and sensor faults against the
//! same timeline without either crate depending on the other.

use crate::units::Seconds;

/// A half-open activity window `[at, until)` on the simulation timeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimeWindow {
    /// Start of the window (inclusive).
    pub at: Seconds,
    /// End of the window (exclusive).
    pub until: Seconds,
}

impl TimeWindow {
    /// Builds a window covering `[at, until)`.
    pub fn new(at: Seconds, until: Seconds) -> Self {
        Self { at, until }
    }

    /// Whether `t` falls inside the window.
    #[inline]
    pub fn contains(&self, t: Seconds) -> bool {
        t >= self.at && t < self.until
    }

    /// Window length in seconds.
    pub fn duration(&self) -> Seconds {
        self.until - self.at
    }

    /// Checks the window is well-formed: finite, non-negative start, and a
    /// strictly positive duration.
    pub fn validate(&self) -> Result<(), String> {
        if !self.at.is_finite() || !self.until.is_finite() {
            return Err(format!("window bounds must be finite: {self:?}"));
        }
        if self.at < 0.0 {
            return Err(format!("window start must be >= 0: {self:?}"));
        }
        if self.until <= self.at {
            return Err(format!("window must have positive duration: {self:?}"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn half_open_semantics() {
        let w = TimeWindow::new(2.0, 5.0);
        assert!(!w.contains(1.999));
        assert!(w.contains(2.0));
        assert!(w.contains(4.999));
        assert!(!w.contains(5.0));
        assert_eq!(w.duration(), 3.0);
    }

    #[test]
    fn validate_rejects_malformed() {
        assert!(TimeWindow::new(0.0, 1.0).validate().is_ok());
        assert!(TimeWindow::new(-1.0, 1.0).validate().is_err());
        assert!(TimeWindow::new(3.0, 3.0).validate().is_err());
        assert!(TimeWindow::new(0.0, f64::NAN).validate().is_err());
    }
}
