//! Incrementally maintained window statistics.
//!
//! The DPS priority module reads three statistics of each unit's bounded
//! power history every decision cycle: the standard deviation, the number of
//! prominent peaks and the windowed derivative. Recomputing them from the
//! full window is O(`history_len`) per unit per cycle (plus allocations in
//! the peak detector) — irrelevant at the paper's 22 sockets, dominant at
//! the ROADMAP's production scale. The accumulators here maintain the same
//! quantities under the ring buffer's push/evict stream so a read is O(1).
//!
//! * [`RollingMoments`] — running Σx and Σx² over the retained window,
//!   updated per push and periodically resynced against the window contents
//!   to bound floating-point drift.
//! * [`PeakTracker`] — a run-length encoding of the window from which the
//!   prominent-peak count of [`crate::signal::count_prominent_peaks`] is
//!   recomputed exactly on every push, in O(runs) instead of O(window) with
//!   two heap allocations. Kalman-smoothed histories have few runs relative
//!   to samples, and the count is cached between pushes.

use crate::ring::RingBuffer;
use std::collections::VecDeque;

/// Running first and second moments of a ring-buffer window.
///
/// `push` applies the add/evict delta in O(1). Because a rolling Σx drifts
/// away from the exact sum under floating-point cancellation, the
/// accumulator resyncs itself exactly from the window every
/// `resync_every` pushes; between resyncs the drift is bounded well below
/// the thresholds any consumer compares against. The sums are kept around a
/// fixed offset (the first window value at the last resync) so the
/// cancellation error stays relative to the window's spread, not its
/// absolute level.
#[derive(Debug, Clone, PartialEq)]
pub struct RollingMoments {
    /// Σ(x - offset) over the retained window.
    sum: f64,
    /// Σ(x - offset)² over the retained window.
    sumsq: f64,
    /// Centering offset (see above).
    offset: f64,
    /// Number of retained samples (mirrors the window length).
    len: usize,
    /// Pushes left until the next exact resync.
    until_resync: u32,
    /// Resync period in pushes.
    resync_every: u32,
}

impl RollingMoments {
    /// An empty accumulator for a window of at most `capacity` samples.
    pub fn new(capacity: usize) -> Self {
        // One exact recompute every few window turnovers keeps the resync
        // cost amortized O(1) while bounding drift accumulation.
        let resync_every = (4 * capacity).max(8) as u32;
        Self {
            sum: 0.0,
            sumsq: 0.0,
            offset: 0.0,
            len: 0,
            until_resync: resync_every,
            resync_every,
        }
    }

    /// Applies one ring-buffer push: `added` entered the window and
    /// `evicted` (if the ring was full) left it. `window` must be the ring
    /// *after* the push; it is only read on the periodic exact resync.
    pub fn push(&mut self, added: f64, evicted: Option<f64>, window: &RingBuffer<f64>) {
        let a = added - self.offset;
        match evicted {
            Some(old) => {
                let e = old - self.offset;
                self.sum += a - e;
                self.sumsq += a * a - e * e;
            }
            None => {
                self.sum += a;
                self.sumsq += a * a;
                self.len += 1;
            }
        }
        self.until_resync = self.until_resync.saturating_sub(1);
        if self.until_resync == 0 {
            self.resync(window);
        }
    }

    /// Exact recompute from the window contents; resets the drift clock.
    pub fn resync(&mut self, window: &RingBuffer<f64>) {
        self.offset = window.oldest().copied().unwrap_or(0.0);
        self.sum = 0.0;
        self.sumsq = 0.0;
        self.len = window.len();
        for &v in window.iter() {
            let c = v - self.offset;
            self.sum += c;
            self.sumsq += c * c;
        }
        self.until_resync = self.resync_every;
    }

    /// Number of samples currently accumulated.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no samples are accumulated.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Mean of the window; `None` when empty (matching
    /// [`RingBuffer::mean`]).
    pub fn mean(&self) -> Option<f64> {
        if self.len == 0 {
            return None;
        }
        Some(self.offset + self.sum / self.len as f64)
    }

    /// Population variance, clamped at 0 against cancellation on flat
    /// windows; `None` when empty.
    pub fn variance(&self) -> Option<f64> {
        if self.len == 0 {
            return None;
        }
        let n = self.len as f64;
        let centered_mean = self.sum / n;
        Some((self.sumsq / n - centered_mean * centered_mean).max(0.0))
    }

    /// Population standard deviation; `None` when empty (matching
    /// [`RingBuffer::std_dev`]).
    pub fn std_dev(&self) -> Option<f64> {
        self.variance().map(f64::sqrt)
    }

    /// Clears back to construction state.
    pub fn clear(&mut self) {
        self.sum = 0.0;
        self.sumsq = 0.0;
        self.offset = 0.0;
        self.len = 0;
        self.until_resync = self.resync_every;
    }

    /// Path-dependent internals for checkpointing: `(sum, sumsq, offset,
    /// until_resync)`. The length is derivable from the window and is not
    /// part of the state.
    pub fn state(&self) -> (f64, f64, f64, u32) {
        (self.sum, self.sumsq, self.offset, self.until_resync)
    }

    /// Restores [`RollingMoments::state`] internals; `len` must be the
    /// restored window's length. A restored accumulator continues the
    /// checkpointed drift trajectory bit-exactly.
    pub fn restore_state(
        &mut self,
        sum: f64,
        sumsq: f64,
        offset: f64,
        until_resync: u32,
        len: usize,
    ) {
        self.sum = sum;
        self.sumsq = sumsq;
        self.offset = offset;
        self.until_resync = until_resync.clamp(1, self.resync_every);
        self.len = len;
    }
}

/// Incrementally maintained prominent-peak count over a ring-buffer window.
///
/// The window is stored as a run-length encoding — a deque of `(value,
/// multiplicity)` runs in which adjacent runs hold distinct values. Under
/// that representation the sample-level peak definition of
/// [`crate::signal::count_prominent_peaks`] maps exactly:
///
/// * an interior run is a local maximum iff both neighbouring runs are
///   strictly lower (a plateau is one run, so it counts once, and the
///   boundary runs are excluded just as boundary samples are);
/// * prominence scans (outward to the first strictly-higher value,
///   exclusive, taking the minimum) see the same value sequence whether
///   they walk samples or runs, because multiplicity affects neither
///   comparisons nor minima.
///
/// The count is recomputed from the runs — O(runs), and the number of runs
/// in a Kalman-smoothed power history is small — only on pushes that change
/// the run-value sequence, then served from cache.
#[derive(Debug, Clone)]
pub struct PeakTracker {
    runs: VecDeque<(f64, u32)>,
    min_prominence: f64,
    count: usize,
    /// Run values copied contiguously for the recount scan — deque indexing
    /// pays wrap-around arithmetic per access, a dense slice doesn't.
    scratch: Vec<f64>,
}

// `scratch` is a transient workspace (stale whenever a push skipped the
// recount), so equality is over the logical state only.
impl PartialEq for PeakTracker {
    fn eq(&self, other: &Self) -> bool {
        self.runs == other.runs
            && self.min_prominence == other.min_prominence
            && self.count == other.count
    }
}

impl PeakTracker {
    /// An empty tracker counting peaks with prominence `>= min_prominence`.
    pub fn new(min_prominence: f64) -> Self {
        Self {
            runs: VecDeque::new(),
            min_prominence,
            count: 0,
            scratch: Vec::new(),
        }
    }

    /// Applies one ring-buffer push: `added` entered the window and
    /// `evicted` (if the ring was full) left it, then refreshes the cached
    /// count — but only when the run-*value* sequence actually changed. The
    /// count is a function of the run values alone (multiplicities affect
    /// neither the local-maximum test nor the prominence scans), so a push
    /// that merely extends the back run while the evict merely shortens the
    /// front run leaves the count untouched. That is the steady state of a
    /// Kalman-converged phase, where the window is a handful of long runs
    /// and recounting every push would rescan all of them every cycle.
    pub fn push(&mut self, added: f64, evicted: Option<f64>) {
        let mut shape_changed = false;
        if evicted.is_some() {
            // The oldest sample always lives in the front run.
            if let Some(front) = self.runs.front_mut() {
                front.1 -= 1;
                if front.1 == 0 {
                    self.runs.pop_front();
                    shape_changed = true;
                }
            }
        }
        match self.runs.back_mut() {
            Some(back) if back.0 == added => back.1 += 1,
            _ => {
                self.runs.push_back((added, 1));
                shape_changed = true;
            }
        }
        if shape_changed {
            self.recount();
        }
    }

    /// The cached prominent-peak count, equal to
    /// [`crate::signal::count_prominent_peaks`] over the window contents.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Clears back to construction state.
    pub fn clear(&mut self) {
        self.runs.clear();
        self.scratch.clear();
        self.count = 0;
    }

    /// Rebuilds from scratch over `values` (oldest first) — used after a
    /// checkpoint restore writes the window wholesale.
    pub fn rebuild<I: IntoIterator<Item = f64>>(&mut self, values: I) {
        self.runs.clear();
        for v in values {
            match self.runs.back_mut() {
                Some(back) if back.0 == v => back.1 += 1,
                _ => self.runs.push_back((v, 1)),
            }
        }
        self.recount();
    }

    fn recount(&mut self) {
        self.scratch.clear();
        let (head, tail) = self.runs.as_slices();
        self.scratch.extend(head.iter().map(|&(v, _)| v));
        self.scratch.extend(tail.iter().map(|&(v, _)| v));
        let vals = &self.scratch;
        let r = vals.len();
        let mut count = 0;
        for i in 1..r.saturating_sub(1) {
            let h = vals[i];
            if !(vals[i - 1] < h && vals[i + 1] < h) {
                continue;
            }
            let mut left_min = h;
            let mut j = i;
            while j > 0 {
                j -= 1;
                let v = vals[j];
                if v > h {
                    break;
                }
                left_min = left_min.min(v);
            }
            let mut right_min = h;
            let mut j = i;
            while j + 1 < r {
                j += 1;
                let v = vals[j];
                if v > h {
                    break;
                }
                right_min = right_min.min(v);
            }
            if h - left_min.max(right_min) >= self.min_prominence {
                count += 1;
            }
        }
        self.count = count;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signal;

    fn drive(
        capacity: usize,
        values: &[f64],
        prominence: f64,
    ) -> (RingBuffer<f64>, RollingMoments, PeakTracker) {
        let mut ring = RingBuffer::new(capacity);
        let mut moments = RollingMoments::new(capacity);
        let mut peaks = PeakTracker::new(prominence);
        for &v in values {
            let evicted = ring.push(v);
            moments.push(v, evicted, &ring);
            peaks.push(v, evicted);
        }
        (ring, moments, peaks)
    }

    #[test]
    fn moments_match_ring_reference() {
        let values: Vec<f64> = (0..200)
            .map(|i| 100.0 + 30.0 * ((i as f64 * 0.7).sin()) + (i % 5) as f64)
            .collect();
        let (ring, moments, _) = drive(20, &values, 30.0);
        assert_eq!(moments.len(), ring.len());
        let m = moments.mean().unwrap();
        let s = moments.std_dev().unwrap();
        assert!((m - ring.mean().unwrap()).abs() < 1e-9, "mean {m}");
        assert!((s - ring.std_dev().unwrap()).abs() < 1e-9, "std {s}");
    }

    #[test]
    fn moments_empty_semantics_match_ring() {
        let moments = RollingMoments::new(8);
        assert_eq!(moments.mean(), None);
        assert_eq!(moments.std_dev(), None);
        assert!(moments.is_empty());
    }

    #[test]
    fn flat_window_variance_clamped_at_zero() {
        let (_, moments, _) = drive(16, &[110.0; 100], 30.0);
        assert_eq!(moments.variance(), Some(0.0));
        assert_eq!(moments.std_dev(), Some(0.0));
    }

    #[test]
    fn resync_bounds_drift_over_long_streams() {
        // Large offset + small wiggle is the worst case for Σx² cancellation.
        let values: Vec<f64> = (0..5000)
            .map(|i| 1.0e6 + 0.25 * ((i % 7) as f64 - 3.0))
            .collect();
        let (ring, moments, _) = drive(20, &values, 30.0);
        let exact = ring.std_dev().unwrap();
        let rolled = moments.std_dev().unwrap();
        assert!(
            (rolled - exact).abs() < 1e-6,
            "drift survived resync: {rolled} vs {exact}"
        );
    }

    #[test]
    fn clear_resets_moments() {
        let (_, mut moments, _) = drive(8, &[50.0, 60.0, 70.0], 30.0);
        moments.clear();
        assert_eq!(moments.mean(), None);
        assert_eq!(moments.len(), 0);
    }

    #[test]
    fn moments_state_roundtrip_is_exact() {
        let values: Vec<f64> = (0..137).map(|i| 90.0 + (i % 13) as f64 * 3.0).collect();
        let (ring, moments, _) = drive(20, &values, 30.0);
        let (sum, sumsq, offset, until) = moments.state();
        let mut restored = RollingMoments::new(20);
        restored.restore_state(sum, sumsq, offset, until, ring.len());
        assert_eq!(restored, moments, "bit-exact accumulator restore");
    }

    #[test]
    fn peaks_match_signal_reference_on_square_wave() {
        let mut values = Vec::new();
        for _ in 0..8 {
            values.extend_from_slice(&[30.0, 150.0, 150.0, 30.0]);
        }
        let (ring, _, peaks) = drive(20, &values, 50.0);
        assert_eq!(
            peaks.count(),
            signal::count_prominent_peaks(&ring.as_vec(), 50.0)
        );
        assert!(peaks.count() >= 3, "square wave shows peaks");
    }

    #[test]
    fn peaks_match_signal_reference_through_eviction_stream() {
        // Mixed plateaus, spikes and monotone stretches, checked at every
        // prefix so eviction transitions are all covered.
        let pattern = [
            20.0, 20.0, 160.0, 20.0, 25.0, 25.0, 25.0, 22.0, 160.0, 160.0, 20.0, 40.0, 60.0, 80.0,
            80.0, 60.0, 100.0, 30.0, 30.0, 140.0, 10.0,
        ];
        let mut ring = RingBuffer::new(7);
        let mut peaks = PeakTracker::new(15.0);
        for (step, &v) in pattern.iter().cycle().take(200).enumerate() {
            let evicted = ring.push(v);
            peaks.push(v, evicted);
            assert_eq!(
                peaks.count(),
                signal::count_prominent_peaks(&ring.as_vec(), 15.0),
                "diverged at step {step}"
            );
        }
    }

    #[test]
    fn rebuild_matches_pushed_state() {
        let values = [10.0, 50.0, 20.0, 20.0, 90.0, 15.0, 70.0];
        let (ring, _, peaks) = drive(5, &values, 5.0);
        let mut rebuilt = PeakTracker::new(5.0);
        rebuilt.rebuild(ring.iter().copied());
        assert_eq!(rebuilt, peaks);
    }

    #[test]
    fn peak_clear_resets() {
        let (_, _, mut peaks) = drive(8, &[10.0, 80.0, 10.0], 5.0);
        assert_eq!(peaks.count(), 1);
        peaks.clear();
        assert_eq!(peaks.count(), 0);
    }
}
