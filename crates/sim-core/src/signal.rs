//! Signal processing for *power dynamics*.
//!
//! The DPS priority module (paper Alg. 2) classifies each unit's recent power
//! history by (1) the number of **prominent peaks** — a time-series peak
//! detection in the style of Palshikar \[32\] / scipy's `find_peaks` with a
//! prominence threshold — and (2) the windowed **first derivative**
//! (paper Eq. 3 generalised over `direv_length` samples). Both primitives
//! live here, independent of controller policy, so they can be tested and
//! benchmarked in isolation.

/// A detected local maximum.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Peak {
    /// Index of the peak sample.
    pub index: usize,
    /// Peak height (the sample value).
    pub height: f64,
    /// Topographic prominence: height above the higher of the two lowest
    /// saddles separating this peak from higher terrain (or the signal
    /// boundary).
    pub prominence: f64,
}

/// Finds all strict local maxima. Plateaus count once, at the plateau's
/// midpoint (matching scipy's `find_peaks` plateau handling closely enough
/// for power traces, which are noisy and rarely perfectly flat).
fn local_maxima(signal: &[f64]) -> Vec<usize> {
    let n = signal.len();
    let mut peaks = Vec::new();
    let mut i = 1;
    while i + 1 < n {
        if signal[i] > signal[i - 1] {
            // Walk any plateau of equal values.
            let plateau_start = i;
            while i + 1 < n && signal[i + 1] == signal[i] {
                i += 1;
            }
            if i + 1 < n && signal[i + 1] < signal[i] {
                peaks.push((plateau_start + i) / 2);
            }
        }
        i += 1;
    }
    peaks
}

/// Computes the prominence of the peak at `idx` following scipy's algorithm:
/// scan outward on each side until a sample strictly higher than the peak (or
/// the boundary), take the minimum over each scanned span, and subtract the
/// larger of the two minima from the peak height.
fn prominence_of(signal: &[f64], idx: usize) -> f64 {
    let height = signal[idx];

    let mut left_min = height;
    let mut i = idx;
    while i > 0 {
        i -= 1;
        if signal[i] > height {
            break;
        }
        left_min = left_min.min(signal[i]);
    }

    let mut right_min = height;
    let mut j = idx;
    while j + 1 < signal.len() {
        j += 1;
        if signal[j] > height {
            break;
        }
        right_min = right_min.min(signal[j]);
    }

    height - left_min.max(right_min)
}

/// Detects peaks with prominence `>= min_prominence`, sorted by index.
///
/// ```
/// use dps_sim_core::signal::find_prominent_peaks;
/// // A 160 W spike between 20 W valleys is one very prominent peak.
/// let trace = [20.0, 160.0, 20.0, 25.0, 22.0, 160.0, 20.0];
/// let peaks = find_prominent_peaks(&trace, 50.0);
/// assert_eq!(peaks.len(), 2);
/// assert_eq!(peaks[0].index, 1);
/// ```
pub fn find_prominent_peaks(signal: &[f64], min_prominence: f64) -> Vec<Peak> {
    local_maxima(signal)
        .into_iter()
        .map(|index| Peak {
            index,
            height: signal[index],
            prominence: prominence_of(signal, index),
        })
        .filter(|p| p.prominence >= min_prominence)
        .collect()
}

/// Counts prominent peaks (the paper's `count_prominent_peaks`).
pub fn count_prominent_peaks(signal: &[f64], min_prominence: f64) -> usize {
    count_prominent_peaks_at(signal.len(), |i| signal[i], min_prominence)
}

/// [`count_prominent_peaks`] over an indexable window: the ring-friendly
/// variant, so a caller holding a wrapped ring can count peaks without
/// copying the window into a contiguous scratch slice. `at(i)` must be pure
/// over `0..len` (logical order, oldest first). The maxima walk and the
/// prominence scans visit samples in exactly the order of the slice kernels
/// and allocate nothing, so the count is identical.
pub fn count_prominent_peaks_at(
    len: usize,
    at: impl Fn(usize) -> f64,
    min_prominence: f64,
) -> usize {
    let mut count = 0;
    let mut i = 1;
    while i + 1 < len {
        if at(i) > at(i - 1) {
            // Walk any plateau of equal values.
            let plateau_start = i;
            while i + 1 < len && at(i + 1) == at(i) {
                i += 1;
            }
            if i + 1 < len && at(i + 1) < at(i) {
                let idx = (plateau_start + i) / 2;
                if prominence_at(len, &at, idx) >= min_prominence {
                    count += 1;
                }
            }
        }
        i += 1;
    }
    count
}

/// [`prominence_of`] over an indexable window — same outward scans, same
/// break-on-strictly-higher rule.
fn prominence_at(len: usize, at: &impl Fn(usize) -> f64, idx: usize) -> f64 {
    let height = at(idx);

    let mut left_min = height;
    let mut i = idx;
    while i > 0 {
        i -= 1;
        let v = at(i);
        if v > height {
            break;
        }
        left_min = left_min.min(v);
    }

    let mut right_min = height;
    let mut j = idx;
    while j + 1 < len {
        j += 1;
        let v = at(j);
        if v > height {
            break;
        }
        right_min = right_min.min(v);
    }

    height - left_min.max(right_min)
}

/// Windowed average first derivative, the paper's Eq. 3 generalised to a
/// window (Alg. 2 line 16):
/// `(newest - sample window-1 steps back) / elapsed-time`.
///
/// `durations` holds the per-sample time deltas aligned with `signal`
/// (`durations[i]` is the time between samples `i-1` and `i`). Returns `None`
/// when fewer than 2 samples or the elapsed time is non-positive.
pub fn windowed_derivative(signal: &[f64], durations: &[f64], window: usize) -> Option<f64> {
    if signal.len() < 2 || window < 1 {
        return None;
    }
    let w = window.min(signal.len() - 1);
    let newest = *signal.last()?;
    let oldest = signal[signal.len() - 1 - w];
    let dt: f64 = durations[durations.len().saturating_sub(w)..].iter().sum();
    if dt <= 0.0 {
        return None;
    }
    Some((newest - oldest) / dt)
}

/// [`windowed_derivative`] over indexable windows — the ring-friendly
/// variant for callers whose signal/duration histories live in wrapped
/// rings. Assumes the two windows are aligned with the same `len` (the
/// ring-buffer pair case); the summation order over the trailing `w`
/// durations matches the slice kernel exactly.
pub fn windowed_derivative_at(
    len: usize,
    power_at: impl Fn(usize) -> f64,
    duration_at: impl Fn(usize) -> f64,
    window: usize,
) -> Option<f64> {
    if len < 2 || window < 1 {
        return None;
    }
    let w = window.min(len - 1);
    let newest = power_at(len - 1);
    let oldest = power_at(len - 1 - w);
    let mut dt = 0.0;
    for i in (len - w)..len {
        dt += duration_at(i);
    }
    if dt <= 0.0 {
        return None;
    }
    Some((newest - oldest) / dt)
}

/// One-step derivative with uniform period `dt` (paper Eq. 3).
pub fn step_derivative(current: f64, previous: f64, dt: f64) -> f64 {
    debug_assert!(dt > 0.0);
    (current - previous) / dt
}

/// Centered moving average with window `2*half + 1`, edges truncated.
pub fn moving_average(signal: &[f64], half: usize) -> Vec<f64> {
    let n = signal.len();
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let lo = i.saturating_sub(half);
        let hi = (i + half + 1).min(n);
        let mean = signal[lo..hi].iter().sum::<f64>() / (hi - lo) as f64;
        out.push(mean);
    }
    out
}

/// Exponential moving average with smoothing factor `alpha` in `(0, 1]`.
pub fn exponential_moving_average(signal: &[f64], alpha: f64) -> Vec<f64> {
    assert!(
        (0.0..=1.0).contains(&alpha) && alpha > 0.0,
        "alpha in (0,1]"
    );
    let mut out = Vec::with_capacity(signal.len());
    let mut state = None;
    for &x in signal {
        let next = match state {
            None => x,
            Some(prev) => alpha * x + (1.0 - alpha) * prev,
        };
        out.push(next);
        state = Some(next);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_peaks_in_monotone_signal() {
        let rising: Vec<f64> = (0..10).map(|i| i as f64).collect();
        assert_eq!(count_prominent_peaks(&rising, 0.0), 0);
        let falling: Vec<f64> = (0..10).map(|i| (10 - i) as f64).collect();
        assert_eq!(count_prominent_peaks(&falling, 0.0), 0);
    }

    #[test]
    fn single_peak_prominence_is_height_above_higher_valley() {
        let signal = [10.0, 50.0, 20.0];
        let peaks = find_prominent_peaks(&signal, 0.0);
        assert_eq!(peaks.len(), 1);
        assert_eq!(peaks[0].index, 1);
        // Left min 10, right min 20 → prominence 50 - max(10,20) = 30.
        assert_eq!(peaks[0].prominence, 30.0);
    }

    #[test]
    fn prominence_threshold_filters() {
        let signal = [0.0, 100.0, 80.0, 85.0, 20.0, 100.0, 0.0];
        // index 3 is a small bump (prominence 5); indices 1 and 5 are major.
        assert_eq!(count_prominent_peaks(&signal, 10.0), 2);
        assert_eq!(count_prominent_peaks(&signal, 1.0), 3);
    }

    #[test]
    fn plateau_counts_once() {
        let signal = [0.0, 5.0, 5.0, 5.0, 0.0];
        let peaks = find_prominent_peaks(&signal, 0.0);
        assert_eq!(peaks.len(), 1);
        assert_eq!(peaks[0].index, 2);
    }

    #[test]
    fn boundary_samples_never_peaks() {
        let signal = [100.0, 1.0, 100.0];
        assert_eq!(count_prominent_peaks(&signal, 0.0), 0);
    }

    #[test]
    fn interior_peak_between_higher_terrain() {
        // Peak at 4 (height 60) sits between two higher 100s; its prominence
        // is measured against the saddles at 20 and 30 → 60 - 30 = 30.
        let signal = [100.0, 20.0, 60.0, 30.0, 100.0];
        let peaks = find_prominent_peaks(&signal, 0.0);
        assert_eq!(peaks.len(), 1);
        assert_eq!(peaks[0].prominence, 30.0);
    }

    #[test]
    fn high_frequency_square_wave_many_peaks() {
        // LR-style fast phases: 150/30 alternation → a peak per cycle.
        let mut signal = Vec::new();
        for _ in 0..8 {
            signal.extend_from_slice(&[30.0, 150.0, 30.0]);
        }
        let count = count_prominent_peaks(&signal, 50.0);
        assert!(count >= 7, "expected many peaks, got {count}");
    }

    #[test]
    fn indexed_count_matches_slice_kernel() {
        let signals: &[&[f64]] = &[
            &[],
            &[5.0],
            &[5.0, 5.0],
            &[0.0, 100.0, 80.0, 85.0, 20.0, 100.0, 0.0],
            &[0.0, 5.0, 5.0, 5.0, 0.0],
            &[100.0, 1.0, 100.0],
            &[30.0, 150.0, 30.0, 150.0, 30.0, 150.0, 30.0],
            &[100.0, 20.0, 60.0, 30.0, 100.0],
            &[1.0, 2.0, 3.0, 4.0, 5.0],
        ];
        for s in signals {
            for prom in [0.0, 1.0, 10.0, 50.0] {
                assert_eq!(
                    count_prominent_peaks_at(s.len(), |i| s[i], prom),
                    find_prominent_peaks(s, prom).len(),
                    "signal {s:?} prominence {prom}"
                );
            }
        }
    }

    #[test]
    fn indexed_derivative_matches_slice_kernel() {
        let signal = [10.0, 20.0, 40.0, 35.0, 90.0];
        let durations = [1.0, 0.5, 2.0, 1.0, 0.25];
        for window in 0..7 {
            assert_eq!(
                windowed_derivative_at(signal.len(), |i| signal[i], |i| durations[i], window),
                windowed_derivative(&signal, &durations, window),
                "window {window}"
            );
        }
        assert_eq!(windowed_derivative_at(1, |_| 1.0, |_| 1.0, 3), None);
        assert_eq!(windowed_derivative_at(2, |_| 1.0, |_| 0.0, 1), None);
    }

    #[test]
    fn windowed_derivative_basic() {
        let signal = [10.0, 20.0, 40.0];
        let durations = [1.0, 1.0, 1.0];
        // window 1: (40-20)/1 = 20
        assert_eq!(windowed_derivative(&signal, &durations, 1), Some(20.0));
        // window 2: (40-10)/2 = 15
        assert_eq!(windowed_derivative(&signal, &durations, 2), Some(15.0));
    }

    #[test]
    fn windowed_derivative_clamps_window() {
        let signal = [10.0, 30.0];
        let durations = [1.0, 1.0];
        assert_eq!(windowed_derivative(&signal, &durations, 10), Some(20.0));
    }

    #[test]
    fn windowed_derivative_degenerate() {
        assert_eq!(windowed_derivative(&[1.0], &[1.0], 1), None);
        assert_eq!(windowed_derivative(&[], &[], 1), None);
        assert_eq!(windowed_derivative(&[1.0, 2.0], &[0.0, 0.0], 1), None);
    }

    #[test]
    fn step_derivative_sign() {
        assert_eq!(step_derivative(160.0, 20.0, 1.0), 140.0);
        assert_eq!(step_derivative(20.0, 160.0, 2.0), -70.0);
    }

    #[test]
    fn moving_average_smooths() {
        let signal = [0.0, 10.0, 0.0, 10.0, 0.0];
        let smoothed = moving_average(&signal, 1);
        assert_eq!(smoothed.len(), signal.len());
        assert_eq!(smoothed[0], 5.0); // truncated window [0,10]
        assert!((smoothed[2] - 20.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn moving_average_zero_half_is_identity() {
        let signal = [1.0, 2.0, 3.0];
        assert_eq!(moving_average(&signal, 0), signal.to_vec());
    }

    #[test]
    fn ema_converges_to_constant() {
        let signal = vec![10.0; 50];
        let out = exponential_moving_average(&signal, 0.3);
        assert!((out.last().unwrap() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn ema_first_sample_passthrough() {
        let out = exponential_moving_average(&[42.0, 0.0], 0.5);
        assert_eq!(out[0], 42.0);
        assert_eq!(out[1], 21.0);
    }

    #[test]
    #[should_panic(expected = "alpha in (0,1]")]
    fn ema_rejects_zero_alpha() {
        exponential_moving_average(&[1.0], 0.0);
    }
}
