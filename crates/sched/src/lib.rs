//! Power-aware job scheduling and cluster occupancy for the DPS suite.
//!
//! The paper assumes SLURM already decided *which* jobs run *where* — its
//! MIMD baseline literally is the SLURM power plugin — and every simulated
//! experiment so far pinned a fixed job set to sockets for the whole run.
//! This crate adds the layer above the power managers:
//!
//! * [`job`] — job requests (node count, walltime, conservative power
//!   reservation), lifecycle records, and scheduler events;
//! * [`arrivals`] — seeded arrival streams (Poisson over the workload
//!   catalog, or an explicit trace) that are identical across managers, so
//!   DPS/MIMD/constant comparisons share the arrival realisation;
//! * [`queue`] — a deterministic FIFO + EASY-backfill queue whose admission
//!   test enforces **both** node availability and a per-job power
//!   reservation against the cluster budget, with the classic EASY
//!   guarantee that backfilled jobs never delay the queue head;
//! * [`config`] — the [`SchedConfig`] knob block the cluster simulator
//!   consumes (`SimConfig::scheduler: Option<SchedConfig>`).
//!
//! Job starts and finishes drive **unit churn**: sockets join DPS
//! management when a job lands on them and leave when it finishes or is
//! evicted. The power managers are told through
//! `PowerManager::observe_membership`, and DPS resets the churned units'
//! Kalman filters and histories instead of reasoning over a dead job's
//! power dynamics.

#![warn(missing_docs)]

pub mod arrivals;
pub mod config;
pub mod job;
pub mod queue;

pub use arrivals::ArrivalSpec;
pub use config::SchedConfig;
pub use job::{JobOutcome, JobRecord, JobRequest, SchedEvent, SchedEventKind};
pub use queue::{JobScheduler, StartedJob};
