//! Jobs, lifecycle records and scheduler events.
//!
//! A [`JobRequest`] is what a user submits to the batch system: a workload
//! from the catalog, a node count, a requested walltime, and the per-socket
//! power reservation the admission test charges against the cluster budget.
//! The scheduler turns requests into [`JobRecord`]s as they run, and emits
//! [`SchedEvent`]s the cycle log can replay.

use dps_sim_core::units::{Seconds, Watts};
use dps_workloads::WorkloadSpec;
use serde::{Deserialize, Serialize};

/// One submitted job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobRequest {
    /// Submission identifier (unique within a trace).
    pub id: usize,
    /// The workload the job runs (demand program realised at start time).
    pub spec: WorkloadSpec,
    /// Submission time in seconds.
    pub arrival: Seconds,
    /// Requested node count (each node contributes `sockets_per_node`
    /// power-capping units).
    pub nodes: usize,
    /// Requested walltime; the scheduler may evict the job once its
    /// wall-clock runtime exceeds this.
    pub walltime: Seconds,
    /// Conservative per-socket power reservation charged against the
    /// cluster budget at admission.
    pub reserve_per_socket: Watts,
}

impl JobRequest {
    /// Total power reservation: sockets × per-socket reserve.
    pub fn reservation(&self, sockets_per_node: usize) -> Watts {
        (self.nodes * sockets_per_node) as f64 * self.reserve_per_socket
    }

    /// Sanity checks independent of any cluster (cluster-relative checks
    /// live in [`crate::queue::JobScheduler::new`]).
    pub fn validate(&self) -> Result<(), String> {
        if self.nodes == 0 {
            return Err(format!("job {}: node count must be positive", self.id));
        }
        if !(self.arrival.is_finite() && self.arrival >= 0.0) {
            return Err(format!("job {}: bad arrival {}", self.id, self.arrival));
        }
        if !(self.walltime.is_finite() && self.walltime > 0.0) {
            return Err(format!("job {}: bad walltime {}", self.id, self.walltime));
        }
        if !(self.reserve_per_socket.is_finite() && self.reserve_per_socket > 0.0) {
            return Err(format!(
                "job {}: bad reservation {}",
                self.id, self.reserve_per_socket
            ));
        }
        Ok(())
    }
}

/// Where a job ended up.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JobOutcome {
    /// Ran to completion.
    Completed,
    /// Killed for exceeding its requested walltime.
    Evicted,
}

/// The lifecycle of one finished (or evicted) job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobRecord {
    /// Submission identifier.
    pub id: usize,
    /// Workload name.
    pub name: String,
    /// Node count the job occupied.
    pub nodes: usize,
    /// Submission time.
    pub arrival: Seconds,
    /// Time the job started running.
    pub start: Seconds,
    /// Time the job finished or was evicted.
    pub end: Seconds,
    /// Requested walltime.
    pub walltime: Seconds,
    /// How the job ended.
    pub outcome: JobOutcome,
}

impl JobRecord {
    /// Queue wait time.
    pub fn wait(&self) -> Seconds {
        self.start - self.arrival
    }

    /// Wall-clock runtime.
    pub fn runtime(&self) -> Seconds {
        self.end - self.start
    }
}

/// What happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SchedEventKind {
    /// The job entered the queue.
    Arrived,
    /// The job started on its allocated nodes.
    Started,
    /// The job completed.
    Finished,
    /// The job was killed for overrunning its walltime.
    Evicted,
}

impl std::fmt::Display for SchedEventKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            SchedEventKind::Arrived => "arrived",
            SchedEventKind::Started => "started",
            SchedEventKind::Finished => "finished",
            SchedEventKind::Evicted => "evicted",
        };
        f.write_str(s)
    }
}

/// One scheduler lifecycle event (recorded by the cycle log).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SchedEvent {
    /// Simulated time of the event.
    pub time: Seconds,
    /// Job submission identifier.
    pub job: usize,
    /// Node count involved.
    pub nodes: usize,
    /// What happened.
    pub kind: SchedEventKind,
}

impl SchedEvent {
    /// Converts this lifecycle event into its `dps-obs` trace form,
    /// attributed to the decision cycle that drained it.
    pub fn to_trace(&self, cycle: u64) -> dps_obs::Event {
        let kind = match self.kind {
            SchedEventKind::Arrived => dps_obs::SchedKind::Arrived,
            SchedEventKind::Started => dps_obs::SchedKind::Started,
            SchedEventKind::Finished => dps_obs::SchedKind::Finished,
            SchedEventKind::Evicted => dps_obs::SchedKind::Evicted,
        };
        dps_obs::Event::SchedJob {
            cycle,
            job: self.job as u32,
            nodes: self.nodes as u32,
            kind,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dps_workloads::catalog;

    fn request() -> JobRequest {
        JobRequest {
            id: 0,
            spec: catalog::find("Sort").unwrap().clone(),
            arrival: 0.0,
            nodes: 2,
            walltime: 100.0,
            reserve_per_socket: 110.0,
        }
    }

    #[test]
    fn reservation_scales_with_sockets() {
        let r = request();
        assert_eq!(r.reservation(2), 4.0 * 110.0);
        assert_eq!(r.reservation(1), 2.0 * 110.0);
    }

    #[test]
    fn record_derived_times() {
        let rec = JobRecord {
            id: 1,
            name: "Sort".into(),
            nodes: 2,
            arrival: 5.0,
            start: 12.0,
            end: 50.0,
            walltime: 100.0,
            outcome: JobOutcome::Completed,
        };
        assert_eq!(rec.wait(), 7.0);
        assert_eq!(rec.runtime(), 38.0);
    }

    #[test]
    fn validate_rejects_nonsense() {
        assert!(request().validate().is_ok());
        assert!(JobRequest {
            nodes: 0,
            ..request()
        }
        .validate()
        .is_err());
        assert!(JobRequest {
            walltime: 0.0,
            ..request()
        }
        .validate()
        .is_err());
        assert!(JobRequest {
            arrival: -1.0,
            ..request()
        }
        .validate()
        .is_err());
        assert!(JobRequest {
            reserve_per_socket: f64::NAN,
            ..request()
        }
        .validate()
        .is_err());
    }

    #[test]
    fn event_kind_display() {
        assert_eq!(SchedEventKind::Started.to_string(), "started");
        assert_eq!(SchedEventKind::Evicted.to_string(), "evicted");
    }

    #[test]
    fn to_trace_maps_every_kind() {
        let kinds = [
            (SchedEventKind::Arrived, dps_obs::SchedKind::Arrived),
            (SchedEventKind::Started, dps_obs::SchedKind::Started),
            (SchedEventKind::Finished, dps_obs::SchedKind::Finished),
            (SchedEventKind::Evicted, dps_obs::SchedKind::Evicted),
        ];
        for (ours, theirs) in kinds {
            let ev = SchedEvent {
                time: 12.0,
                job: 7,
                nodes: 3,
                kind: ours,
            };
            match ev.to_trace(42) {
                dps_obs::Event::SchedJob {
                    cycle,
                    job,
                    nodes,
                    kind,
                } => {
                    assert_eq!(cycle, 42);
                    assert_eq!(job, 7);
                    assert_eq!(nodes, 3);
                    assert_eq!(kind, theirs);
                }
                other => panic!("unexpected trace event {other:?}"),
            }
        }
    }
}
