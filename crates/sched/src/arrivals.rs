//! Seeded job arrival streams.
//!
//! The comparison the `sched` experiment makes — DPS vs MIMD vs constant
//! allocation under load — is only meaningful if every manager faces the
//! *identical* job sequence. An [`ArrivalSpec`] therefore describes the
//! arrival process declaratively; [`ArrivalSpec::generate`] realises it into
//! a concrete `Vec<JobRequest>` from an explicit [`RngStream`], so the same
//! `(seed, label)` yields the same trace for every manager.

use crate::job::JobRequest;
use dps_sim_core::{RngStream, Seconds, Watts};
use dps_workloads::WorkloadSpec;
use serde::{Deserialize, Serialize};

/// Declarative description of a job arrival process.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ArrivalSpec {
    /// Poisson arrivals: exponential interarrival gaps, workloads drawn
    /// uniformly from `pool`, node counts uniform in `min_nodes..=max_nodes`.
    Poisson {
        /// Mean gap between submissions in seconds (1/λ).
        mean_interarrival: Seconds,
        /// Number of jobs to generate.
        count: usize,
        /// Workloads to draw from (uniformly). Empty pool is a config error.
        pool: Vec<WorkloadSpec>,
        /// Smallest node request.
        min_nodes: usize,
        /// Largest node request (inclusive; clamped to the cluster size at
        /// generation time).
        max_nodes: usize,
    },
    /// An explicit, pre-built trace (replayed as-is after sorting by
    /// arrival time).
    Trace(Vec<JobRequest>),
}

impl ArrivalSpec {
    /// A small default stream mixing low- and mid/high-power Spark
    /// workloads, sized for the quick experiment topologies.
    pub fn default_poisson(count: usize, mean_interarrival: Seconds) -> Self {
        let pool: Vec<WorkloadSpec> = dps_workloads::catalog::low_power_spark()
            .into_iter()
            .chain(dps_workloads::catalog::mid_high_spark())
            .cloned()
            .collect();
        ArrivalSpec::Poisson {
            mean_interarrival,
            count,
            pool,
            min_nodes: 1,
            max_nodes: 4,
        }
    }

    /// Checks the spec is internally consistent.
    pub fn validate(&self) -> Result<(), String> {
        match self {
            ArrivalSpec::Poisson {
                mean_interarrival,
                count,
                pool,
                min_nodes,
                max_nodes,
            } => {
                if !(mean_interarrival.is_finite() && *mean_interarrival > 0.0) {
                    return Err(format!("bad mean_interarrival {mean_interarrival}"));
                }
                if *count == 0 {
                    return Err("arrival count must be positive".into());
                }
                if pool.is_empty() {
                    return Err("workload pool is empty".into());
                }
                if *min_nodes == 0 || min_nodes > max_nodes {
                    return Err(format!("bad node range {min_nodes}..={max_nodes}"));
                }
                Ok(())
            }
            ArrivalSpec::Trace(jobs) => {
                if jobs.is_empty() {
                    return Err("arrival trace is empty".into());
                }
                for j in jobs {
                    j.validate()?;
                }
                Ok(())
            }
        }
    }

    /// Realises the spec into a concrete arrival trace, sorted by arrival
    /// time with stable ids.
    ///
    /// `share` is the per-socket fair share of the cluster budget
    /// (`budget / total_units`) and `tdp` the socket's maximum cap; the
    /// per-socket reservation interpolates between them by how power-hungry
    /// the workload is: `share + frac_above_110 × (tdp − share)`. A job that
    /// rarely exceeds the paper's 110 W reference reserves roughly its fair
    /// share, while a sustained high-power job reserves close to TDP —
    /// conservative in exactly the way SLURM-style power-aware admission is.
    ///
    /// `walltime_factor` scales the catalog's 110 W-cap duration into the
    /// requested walltime; values modestly above 1.0 leave headroom for
    /// throttling but let badly-capped runs overrun and be evicted.
    pub fn generate(
        &self,
        total_nodes: usize,
        tdp: Watts,
        share: Watts,
        walltime_factor: f64,
        rng: &mut RngStream,
    ) -> Vec<JobRequest> {
        match self {
            ArrivalSpec::Poisson {
                mean_interarrival,
                count,
                pool,
                min_nodes,
                max_nodes,
            } => {
                let mut jobs = Vec::with_capacity(*count);
                let mut t: Seconds = 0.0;
                let hi = (*max_nodes).min(total_nodes).max(*min_nodes);
                for id in 0..*count {
                    // Exponential interarrival via inverse CDF; 1 - u keeps
                    // the argument of ln strictly positive.
                    t += -(1.0 - rng.uniform()).ln() * mean_interarrival;
                    let spec = pool[rng.range(0..pool.len())].clone();
                    let nodes = rng.range(*min_nodes..=hi).min(total_nodes);
                    jobs.push(JobRequest {
                        id,
                        reserve_per_socket: reserve_per_socket(&spec, tdp, share),
                        walltime: spec.duration_110w * walltime_factor,
                        arrival: t,
                        nodes,
                        spec,
                    });
                }
                jobs
            }
            ArrivalSpec::Trace(trace) => {
                let mut jobs = trace.clone();
                jobs.sort_by(|a, b| {
                    a.arrival
                        .partial_cmp(&b.arrival)
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(a.id.cmp(&b.id))
                });
                jobs
            }
        }
    }
}

/// The conservative per-socket reservation for a workload:
/// `share + frac_above_110 × (tdp − share)`, clamped to `[share, tdp]`.
pub fn reserve_per_socket(spec: &WorkloadSpec, tdp: Watts, share: Watts) -> Watts {
    (share + spec.frac_above_110 * (tdp - share)).clamp(share.min(tdp), tdp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dps_workloads::catalog;

    fn rng() -> RngStream {
        RngStream::new(7, "arrivals-test")
    }

    #[test]
    fn poisson_is_deterministic_per_seed() {
        let spec = ArrivalSpec::default_poisson(20, 30.0);
        spec.validate().unwrap();
        let a = spec.generate(8, 150.0, 95.0, 1.5, &mut rng());
        let b = spec.generate(8, 150.0, 95.0, 1.5, &mut rng());
        assert_eq!(a, b);
        let c = spec.generate(8, 150.0, 95.0, 1.5, &mut RngStream::new(8, "arrivals-test"));
        assert_ne!(a, c);
    }

    #[test]
    fn poisson_arrivals_are_sorted_and_sized() {
        let spec = ArrivalSpec::default_poisson(50, 10.0);
        let jobs = spec.generate(4, 150.0, 95.0, 1.5, &mut rng());
        assert_eq!(jobs.len(), 50);
        for w in jobs.windows(2) {
            assert!(w[0].arrival <= w[1].arrival);
        }
        for (i, j) in jobs.iter().enumerate() {
            assert_eq!(j.id, i);
            assert!(
                j.nodes >= 1 && j.nodes <= 4,
                "nodes {} out of range",
                j.nodes
            );
            j.validate().unwrap();
        }
    }

    #[test]
    fn reservation_interpolates_share_to_tdp() {
        let sort = catalog::find("Sort").unwrap();
        let r = reserve_per_socket(sort, 150.0, 95.0);
        assert!((95.0..=150.0).contains(&r));
        let expected = 95.0 + sort.frac_above_110 * (150.0 - 95.0);
        assert!((r - expected).abs() < 1e-12);
    }

    #[test]
    fn trace_is_sorted_by_arrival() {
        let sort = catalog::find("Sort").unwrap().clone();
        let mk = |id, arrival| JobRequest {
            id,
            spec: sort.clone(),
            arrival,
            nodes: 1,
            walltime: 50.0,
            reserve_per_socket: 100.0,
        };
        let spec = ArrivalSpec::Trace(vec![mk(0, 9.0), mk(1, 3.0), mk(2, 6.0)]);
        spec.validate().unwrap();
        let jobs = spec.generate(4, 150.0, 95.0, 1.5, &mut rng());
        let order: Vec<usize> = jobs.iter().map(|j| j.id).collect();
        assert_eq!(order, vec![1, 2, 0]);
    }

    #[test]
    fn validate_catches_bad_specs() {
        assert!(ArrivalSpec::Poisson {
            mean_interarrival: 0.0,
            count: 1,
            pool: vec![catalog::find("Sort").unwrap().clone()],
            min_nodes: 1,
            max_nodes: 2,
        }
        .validate()
        .is_err());
        assert!(ArrivalSpec::Trace(Vec::new()).validate().is_err());
        assert!(ArrivalSpec::Poisson {
            mean_interarrival: 10.0,
            count: 1,
            pool: Vec::new(),
            min_nodes: 1,
            max_nodes: 2,
        }
        .validate()
        .is_err());
    }
}
