//! FIFO + EASY-backfill queue with node *and* power admission.
//!
//! The admission test is two-dimensional: a job starts only when enough
//! whole nodes are free **and** its conservative power reservation fits
//! under the cluster budget next to the reservations of everything already
//! running. Backfill follows the classic EASY rule extended with power: when
//! the queue head cannot start, compute its *shadow time* (the earliest
//! instant at which finishing jobs free enough nodes and reserved power for
//! it) and the *extra* node/power allowance left over at that instant; a
//! later job may jump the queue iff it fits right now and either (a) its
//! walltime ends by the shadow time, or (b) it consumes only the extra
//! allowance — so the head is never pushed past its shadow.
//!
//! The guarantee holds when walltimes are enforced (overrunning jobs are
//! evicted, so `start + walltime` really is an upper bound on occupancy).
//! With [`crate::SchedConfig::enforce_walltime`] disabled it degrades to a
//! best-effort heuristic, as on real systems that let jobs overrun.
//!
//! Everything is deterministic: arrivals are admitted in trace order, nodes
//! are allocated lowest-index-first, and no randomness is consumed.

use std::collections::VecDeque;

use crate::job::{JobOutcome, JobRecord, JobRequest, SchedEvent, SchedEventKind};
use dps_sim_core::{Seconds, Watts};
use dps_workloads::WorkloadSpec;

/// Float slack for power comparisons (reservations are sums of `f64`s).
const POWER_EPS: Watts = 1e-9;

/// A job the scheduler just started, for the simulator to realise.
#[derive(Debug, Clone, PartialEq)]
pub struct StartedJob {
    /// Submission identifier.
    pub id: usize,
    /// The workload to instantiate on each allocated socket.
    pub spec: WorkloadSpec,
    /// Allocated node indices (each spans `sockets_per_node` units).
    pub nodes: Vec<usize>,
    /// Requested walltime (eviction deadline when enforced).
    pub walltime: Seconds,
    /// Start time.
    pub start: Seconds,
}

#[derive(Debug, Clone)]
struct RunningJob {
    request: JobRequest,
    nodes: Vec<usize>,
    start: Seconds,
}

impl RunningJob {
    fn expected_end(&self) -> Seconds {
        self.start + self.request.walltime
    }
}

/// Deterministic FIFO + EASY-backfill scheduler over whole nodes and a
/// power-reservation budget.
#[derive(Debug, Clone)]
pub struct JobScheduler {
    /// Arrivals not yet submitted, earliest first.
    future: VecDeque<JobRequest>,
    /// Submitted, waiting jobs in FIFO order.
    queue: VecDeque<JobRequest>,
    running: Vec<RunningJob>,
    node_free: Vec<bool>,
    sockets_per_node: usize,
    budget: Watts,
    backfill: bool,
    records: Vec<JobRecord>,
    events: Vec<SchedEvent>,
    /// `(job id, shadow)` recorded the first time each head blocks — the
    /// EASY guarantee the proptests check (`start ≤ shadow`).
    head_guarantees: Vec<(usize, Seconds)>,
}

impl JobScheduler {
    /// Builds a scheduler over `total_nodes` whole nodes and a cluster-wide
    /// power `budget`, fed by a pre-sorted arrival `trace`.
    ///
    /// Rejects jobs that could never start (more nodes than the cluster or
    /// a reservation above the whole budget) so they cannot wedge the FIFO
    /// head forever.
    pub fn new(
        trace: Vec<JobRequest>,
        total_nodes: usize,
        sockets_per_node: usize,
        budget: Watts,
        backfill: bool,
    ) -> Result<Self, String> {
        if total_nodes == 0 || sockets_per_node == 0 {
            return Err("cluster must have at least one node and socket".into());
        }
        if !(budget.is_finite() && budget > 0.0) {
            return Err(format!("bad budget {budget}"));
        }
        for job in &trace {
            job.validate()?;
            if job.nodes > total_nodes {
                return Err(format!(
                    "job {} requests {} nodes but the cluster has {}",
                    job.id, job.nodes, total_nodes
                ));
            }
            let res = job.reservation(sockets_per_node);
            if res > budget + POWER_EPS {
                return Err(format!(
                    "job {} reserves {res:.1} W but the budget is {budget:.1} W",
                    job.id
                ));
            }
        }
        for w in trace.windows(2) {
            if w[0].arrival > w[1].arrival {
                return Err("arrival trace is not sorted".into());
            }
        }
        Ok(Self {
            future: trace.into(),
            queue: VecDeque::new(),
            running: Vec::new(),
            node_free: vec![true; total_nodes],
            sockets_per_node,
            budget,
            backfill,
            records: Vec::new(),
            events: Vec::new(),
            head_guarantees: Vec::new(),
        })
    }

    /// Admits arrivals due by `now` and starts whatever the FIFO + EASY
    /// rules allow. Returns the jobs that started this tick.
    pub fn tick(&mut self, now: Seconds) -> Vec<StartedJob> {
        while let Some(next) = self.future.front() {
            if next.arrival > now {
                break;
            }
            let job = self.future.pop_front().expect("checked front");
            self.events.push(SchedEvent {
                time: now,
                job: job.id,
                nodes: job.nodes,
                kind: SchedEventKind::Arrived,
            });
            self.queue.push_back(job);
        }

        let mut started = Vec::new();
        // Start the head while it fits.
        while let Some(head) = self.queue.front() {
            if !self.fits(head) {
                break;
            }
            let job = self.queue.pop_front().expect("checked front");
            started.push(self.start_job(job, now));
        }

        // Head blocked: one EASY backfill pass. Backfill only consumes
        // resources, so the head cannot become startable mid-pass and a
        // single pass suffices.
        if self.backfill {
            if let Some(head) = self.queue.front().cloned() {
                let (shadow, mut extra_nodes, mut extra_power) = self.shadow_for(&head, now);
                if self.head_guarantees.last().map(|(id, _)| *id) != Some(head.id) {
                    self.head_guarantees.push((head.id, shadow));
                }
                let mut i = 1;
                while i < self.queue.len() {
                    let cand = &self.queue[i];
                    let res = cand.reservation(self.sockets_per_node);
                    let ends_by_shadow = now + cand.walltime <= shadow + POWER_EPS;
                    let within_extra = cand.nodes <= extra_nodes && res <= extra_power + POWER_EPS;
                    if self.fits(cand) && (ends_by_shadow || within_extra) {
                        if !ends_by_shadow {
                            extra_nodes -= cand.nodes;
                            extra_power -= res;
                        }
                        let job = self.queue.remove(i).expect("index in bounds");
                        started.push(self.start_job(job, now));
                    } else {
                        i += 1;
                    }
                }
            }
        }
        started
    }

    /// Marks a running job completed, freeing its nodes and reservation.
    pub fn finish(&mut self, id: usize, now: Seconds) {
        self.retire(id, now, JobOutcome::Completed);
    }

    /// Kills a running job (walltime overrun), freeing its nodes and
    /// reservation.
    pub fn evict(&mut self, id: usize, now: Seconds) {
        self.retire(id, now, JobOutcome::Evicted);
    }

    /// Ids of running jobs whose wall-clock runtime has reached their
    /// requested walltime (eviction candidates).
    pub fn overrunning(&self, now: Seconds) -> Vec<usize> {
        self.running
            .iter()
            .filter(|r| now - r.start >= r.request.walltime)
            .map(|r| r.request.id)
            .collect()
    }

    fn retire(&mut self, id: usize, now: Seconds, outcome: JobOutcome) {
        let pos = self
            .running
            .iter()
            .position(|r| r.request.id == id)
            .unwrap_or_else(|| panic!("job {id} is not running"));
        let job = self.running.swap_remove(pos);
        for &n in &job.nodes {
            self.node_free[n] = true;
        }
        self.records.push(JobRecord {
            id: job.request.id,
            name: job.request.spec.name.to_string(),
            nodes: job.request.nodes,
            arrival: job.request.arrival,
            start: job.start,
            end: now,
            walltime: job.request.walltime,
            outcome,
        });
        self.events.push(SchedEvent {
            time: now,
            job: id,
            nodes: job.request.nodes,
            kind: match outcome {
                JobOutcome::Completed => SchedEventKind::Finished,
                JobOutcome::Evicted => SchedEventKind::Evicted,
            },
        });
    }

    fn fits(&self, job: &JobRequest) -> bool {
        self.free_nodes() >= job.nodes
            && self.reserved_power() + job.reservation(self.sockets_per_node)
                <= self.budget + POWER_EPS
    }

    /// Earliest instant at which the head fits (assuming running jobs end
    /// by `start + walltime`), plus the node/power allowance left over for
    /// backfill at that instant.
    fn shadow_for(&self, head: &JobRequest, now: Seconds) -> (Seconds, usize, Watts) {
        let need_nodes = head.nodes;
        let need_power = head.reservation(self.sockets_per_node);
        let mut free = self.free_nodes();
        let mut avail = self.budget - self.reserved_power();
        let mut shadow = now;
        let mut ends: Vec<(Seconds, usize, Watts)> = self
            .running
            .iter()
            .map(|r| {
                (
                    r.expected_end(),
                    r.nodes.len(),
                    r.request.reservation(self.sockets_per_node),
                )
            })
            .collect();
        ends.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        for (end, n, p) in ends {
            if free >= need_nodes && avail >= need_power - POWER_EPS {
                break;
            }
            free += n;
            avail += p;
            shadow = shadow.max(end);
        }
        (shadow, free - need_nodes, avail - need_power)
    }

    fn start_job(&mut self, job: JobRequest, now: Seconds) -> StartedJob {
        let mut nodes = Vec::with_capacity(job.nodes);
        for (n, free) in self.node_free.iter_mut().enumerate() {
            if *free {
                *free = false;
                nodes.push(n);
                if nodes.len() == job.nodes {
                    break;
                }
            }
        }
        debug_assert_eq!(nodes.len(), job.nodes, "fits() guaranteed the nodes");
        self.events.push(SchedEvent {
            time: now,
            job: job.id,
            nodes: job.nodes,
            kind: SchedEventKind::Started,
        });
        let started = StartedJob {
            id: job.id,
            spec: job.spec.clone(),
            nodes: nodes.clone(),
            walltime: job.walltime,
            start: now,
        };
        self.running.push(RunningJob {
            request: job,
            nodes,
            start: now,
        });
        started
    }

    /// Number of currently free nodes.
    pub fn free_nodes(&self) -> usize {
        self.node_free.iter().filter(|f| **f).count()
    }

    /// Sum of power reservations currently held by running jobs.
    /// Recomputed from scratch so repeated start/finish cycles cannot
    /// accumulate float drift against the budget invariant.
    pub fn reserved_power(&self) -> Watts {
        self.running
            .iter()
            .map(|r| r.request.reservation(self.sockets_per_node))
            .sum()
    }

    /// Jobs submitted but not yet started.
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// Jobs currently running.
    pub fn running_count(&self) -> usize {
        self.running.len()
    }

    /// Arrivals not yet submitted.
    pub fn pending_arrivals(&self) -> usize {
        self.future.len()
    }

    /// True once every job has arrived, run, and retired.
    pub fn is_drained(&self) -> bool {
        self.future.is_empty() && self.queue.is_empty() && self.running.is_empty()
    }

    /// Lifecycle records of retired jobs, in retirement order.
    pub fn records(&self) -> &[JobRecord] {
        &self.records
    }

    /// Drains the events accumulated since the last call.
    pub fn take_events(&mut self) -> Vec<SchedEvent> {
        std::mem::take(&mut self.events)
    }

    /// `(job id, shadow time)` recorded the first time each queue head
    /// blocked — under enforced walltimes the head must start by its shadow.
    pub fn head_guarantees(&self) -> &[(usize, Seconds)] {
        &self.head_guarantees
    }

    /// The cluster power budget the admission test reserves against.
    pub fn budget(&self) -> Watts {
        self.budget
    }

    /// Sockets per node (reservation granularity).
    pub fn sockets_per_node(&self) -> usize {
        self.sockets_per_node
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dps_workloads::catalog;

    fn job(id: usize, arrival: Seconds, nodes: usize, walltime: Seconds, rsv: Watts) -> JobRequest {
        JobRequest {
            id,
            spec: catalog::find("Sort").unwrap().clone(),
            arrival,
            nodes,
            walltime,
            reserve_per_socket: rsv,
        }
    }

    /// 4 nodes × 2 sockets, 800 W budget (100 W/socket fair share).
    fn sched(trace: Vec<JobRequest>, backfill: bool) -> JobScheduler {
        JobScheduler::new(trace, 4, 2, 800.0, backfill).unwrap()
    }

    #[test]
    fn fifo_starts_in_order() {
        let mut s = sched(
            vec![
                job(0, 0.0, 2, 50.0, 100.0),
                job(1, 0.0, 1, 50.0, 100.0),
                job(2, 0.0, 1, 50.0, 100.0),
            ],
            false,
        );
        let started = s.tick(0.0);
        let ids: Vec<usize> = started.iter().map(|j| j.id).collect();
        assert_eq!(ids, vec![0, 1, 2]);
        assert_eq!(s.free_nodes(), 0);
        assert_eq!(s.queue_depth(), 0);
    }

    #[test]
    fn power_reservation_blocks_admission() {
        // Both jobs fit by nodes, but together they exceed the budget:
        // 2 nodes × 2 sockets × 150 W = 600 W each, budget 800 W.
        let mut s = sched(
            vec![job(0, 0.0, 2, 50.0, 150.0), job(1, 0.0, 2, 50.0, 150.0)],
            false,
        );
        let started = s.tick(0.0);
        assert_eq!(started.len(), 1);
        assert_eq!(s.queue_depth(), 1);
        assert!(s.reserved_power() <= s.budget());
        s.finish(0, 30.0);
        assert_eq!(s.tick(30.0).len(), 1);
    }

    #[test]
    fn backfill_lets_short_job_jump_but_not_delay_head() {
        // Job 0 takes the whole cluster until t=100. Head (job 1) needs it
        // all too, so its shadow is 100. Job 2 (1 node, ends by 100)
        // backfills; job 3 (1 node, walltime 200 > shadow, no extra
        // allowance since head takes everything) must wait.
        let mut s = sched(
            vec![
                job(0, 0.0, 4, 100.0, 90.0),
                job(1, 1.0, 4, 50.0, 90.0),
                job(2, 2.0, 1, 50.0, 90.0),
                job(3, 2.0, 1, 200.0, 90.0),
            ],
            true,
        );
        assert_eq!(s.tick(0.0).len(), 1);
        s.finish(0, 40.0); // finishes early; expected end stays 100 for shadow math
                           // Re-run the clock: at t=2 job 0 still runs, 1 is head, 2 backfills.
        let mut s = sched(
            vec![
                job(0, 0.0, 3, 100.0, 90.0),
                job(1, 1.0, 4, 50.0, 90.0),
                job(2, 2.0, 1, 50.0, 90.0),
                job(3, 2.0, 1, 200.0, 90.0),
            ],
            true,
        );
        assert_eq!(s.tick(0.0).len(), 1); // job 0 on 3 nodes
        let started: Vec<usize> = s.tick(2.0).iter().map(|j| j.id).collect();
        assert_eq!(started, vec![2], "short job backfills, long job waits");
        assert_eq!(s.head_guarantees(), &[(1, 100.0)]);
        // Long job 3 would occupy the free node past t=100 and stall the
        // 4-node head — EASY must hold it back.
        assert_eq!(s.queue_depth(), 2);
    }

    #[test]
    fn backfill_uses_extra_allowance() {
        // Head needs 3 of 4 nodes at shadow; one node is extra, so even a
        // long job can backfill onto it.
        let mut s = sched(
            vec![
                job(0, 0.0, 3, 100.0, 90.0),
                job(1, 1.0, 3, 50.0, 90.0),
                job(2, 2.0, 1, 500.0, 90.0),
            ],
            true,
        );
        assert_eq!(s.tick(0.0).len(), 1);
        let started: Vec<usize> = s.tick(2.0).iter().map(|j| j.id).collect();
        assert_eq!(started, vec![2], "extra-node allowance admits the long job");
    }

    #[test]
    fn nodes_allocated_lowest_index_first() {
        let mut s = sched(vec![job(0, 0.0, 2, 50.0, 90.0)], true);
        let started = s.tick(0.0);
        assert_eq!(started[0].nodes, vec![0, 1]);
    }

    #[test]
    fn finish_and_evict_record_outcomes() {
        let mut s = sched(
            vec![job(0, 0.0, 1, 50.0, 90.0), job(1, 0.0, 1, 10.0, 90.0)],
            true,
        );
        s.tick(0.0);
        assert_eq!(s.overrunning(5.0), Vec::<usize>::new());
        assert_eq!(s.overrunning(10.0), vec![1]);
        s.evict(1, 10.0);
        s.finish(0, 20.0);
        assert!(s.is_drained());
        let outcomes: Vec<(usize, JobOutcome)> =
            s.records().iter().map(|r| (r.id, r.outcome)).collect();
        assert_eq!(
            outcomes,
            vec![(1, JobOutcome::Evicted), (0, JobOutcome::Completed)]
        );
        let kinds: Vec<SchedEventKind> = s.take_events().iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                SchedEventKind::Arrived,
                SchedEventKind::Arrived,
                SchedEventKind::Started,
                SchedEventKind::Started,
                SchedEventKind::Evicted,
                SchedEventKind::Finished,
            ]
        );
        assert!(s.take_events().is_empty(), "events drain");
    }

    #[test]
    fn rejects_impossible_jobs() {
        assert!(JobScheduler::new(vec![job(0, 0.0, 5, 50.0, 90.0)], 4, 2, 800.0, true).is_err());
        assert!(JobScheduler::new(vec![job(0, 0.0, 4, 50.0, 200.0)], 4, 2, 800.0, true).is_err());
        assert!(JobScheduler::new(
            vec![job(0, 5.0, 1, 50.0, 90.0), job(1, 1.0, 1, 50.0, 90.0)],
            4,
            2,
            800.0,
            true
        )
        .is_err());
    }
}
