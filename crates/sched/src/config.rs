//! Scheduler configuration consumed by the cluster simulator.

use crate::arrivals::ArrivalSpec;
use dps_sim_core::Seconds;
use serde::{Deserialize, Serialize};

/// Knobs for the power-aware scheduler layer
/// (`SimConfig::scheduler: Option<SchedConfig>`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SchedConfig {
    /// The arrival process (realised once per run from the experiment seed,
    /// so it is identical across managers).
    pub arrivals: ArrivalSpec,
    /// Enable EASY backfill. With `false` the queue is strict FIFO: nothing
    /// starts while the head cannot.
    pub backfill: bool,
    /// Evict jobs whose wall-clock runtime exceeds their requested
    /// walltime (the batch-system contract). With `false` jobs run to
    /// completion regardless — useful for isolating manager throughput
    /// effects from eviction effects.
    pub enforce_walltime: bool,
    /// Requested walltime = catalog `duration_110w` × this factor for
    /// generated (Poisson) arrivals. Modestly above 1.0: headroom for
    /// power-cap throttling, but badly-starved runs still overrun.
    pub walltime_factor: f64,
    /// The bounded-slowdown runtime floor τ (seconds); short jobs'
    /// slowdowns are computed against `max(runtime, τ)` so sub-second jobs
    /// do not dominate the distribution. 10 s is the conventional choice.
    pub slowdown_bound: Seconds,
}

impl SchedConfig {
    /// A small default: Poisson arrivals over the Spark catalog, EASY
    /// backfill, walltime enforcement, and the conventional 10 s slowdown
    /// bound.
    pub fn default_poisson(count: usize, mean_interarrival: Seconds) -> Self {
        Self {
            arrivals: ArrivalSpec::default_poisson(count, mean_interarrival),
            backfill: true,
            enforce_walltime: true,
            walltime_factor: 1.6,
            slowdown_bound: 10.0,
        }
    }

    /// Checks the configuration is internally consistent.
    pub fn validate(&self) -> Result<(), String> {
        self.arrivals.validate()?;
        if !(self.walltime_factor.is_finite() && self.walltime_factor > 0.0) {
            return Err(format!("bad walltime_factor {}", self.walltime_factor));
        }
        if !(self.slowdown_bound.is_finite() && self.slowdown_bound > 0.0) {
            return Err(format!("bad slowdown_bound {}", self.slowdown_bound));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_validates() {
        SchedConfig::default_poisson(10, 30.0).validate().unwrap();
    }

    #[test]
    fn bad_factor_rejected() {
        let mut cfg = SchedConfig::default_poisson(10, 30.0);
        cfg.walltime_factor = 0.0;
        assert!(cfg.validate().is_err());
        let mut cfg = SchedConfig::default_poisson(10, 30.0);
        cfg.slowdown_bound = f64::NAN;
        assert!(cfg.validate().is_err());
    }
}
