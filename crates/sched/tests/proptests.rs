//! Property tests for the scheduler invariants the issue pins down:
//!
//! 1. node capacity is never oversubscribed (no socket hosts two jobs);
//! 2. the sum of power reservations never exceeds the budget at any
//!    admission;
//! 3. EASY backfill never delays the queue head: once a head blocks and a
//!    shadow time is computed, the head starts by that shadow (given
//!    runtimes bounded by walltimes).

use dps_sched::{JobOutcome, JobRequest, JobScheduler};
use dps_workloads::catalog;
use proptest::prelude::*;
use std::collections::{HashMap, HashSet};

const TOTAL_NODES: usize = 4;
const SOCKETS_PER_NODE: usize = 2;
const BUDGET: f64 = 800.0;

/// A randomly drawn job: (arrival, nodes, walltime, reserve/socket,
/// runtime-as-fraction-of-walltime).
type RawJob = (f64, usize, f64, f64, f64);

fn raw_job(max_runtime_frac: f64) -> impl Strategy<Value = RawJob> {
    (
        0.0f64..300.0,
        1usize..=TOTAL_NODES,
        5.0f64..200.0,
        // ≤ 100 W/socket keeps even a whole-cluster job under the budget.
        40.0f64..100.0,
        0.1f64..max_runtime_frac,
    )
}

/// Sorts raw jobs by arrival and turns them into requests with stable ids.
/// Returns the trace plus each job's true runtime keyed by id.
fn build_trace(raw: Vec<RawJob>) -> (Vec<JobRequest>, HashMap<usize, f64>) {
    let spec = catalog::find("Sort").unwrap().clone();
    let mut raw = raw;
    raw.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
    let mut runtimes = HashMap::new();
    let trace = raw
        .into_iter()
        .enumerate()
        .map(|(id, (arrival, nodes, walltime, rsv, frac))| {
            runtimes.insert(id, walltime * frac);
            JobRequest {
                id,
                spec: spec.clone(),
                arrival,
                nodes,
                walltime,
                reserve_per_socket: rsv,
            }
        })
        .collect();
    (trace, runtimes)
}

/// Drives the scheduler to drain event-by-event (arrivals, completions,
/// walltime expiries), checking the node and power invariants at every
/// step. Jobs whose runtime exceeds their walltime are evicted, like the
/// simulator does. Returns the scheduler in its drained state for post-hoc
/// assertions.
fn drive(
    trace: Vec<JobRequest>,
    runtimes: &HashMap<usize, f64>,
    backfill: bool,
) -> Result<JobScheduler, String> {
    const EPS: f64 = 1e-9;
    let n_jobs = trace.len();
    let arrivals: Vec<f64> = trace.iter().map(|j| j.arrival).collect(); // sorted
    let mut s = JobScheduler::new(trace, TOTAL_NODES, SOCKETS_PER_NODE, BUDGET, backfill).unwrap();
    let mut held: HashMap<usize, Vec<usize>> = HashMap::new(); // id → nodes
    let mut ends: HashMap<usize, f64> = HashMap::new(); // id → finish time
    let mut expiries: HashMap<usize, f64> = HashMap::new(); // id → start + walltime
    let mut t = 0.0f64;
    let mut steps = 0usize;
    while !s.is_drained() {
        steps += 1;
        prop_assert!(steps < 10 * n_jobs + 100, "scheduler failed to drain");
        // Completions first, then evictions, then admissions — the order
        // the simulator uses (finish at window end, evict at window start).
        let done: Vec<usize> = ends
            .iter()
            .filter(|&(_, &end)| end <= t + EPS)
            .map(|(&id, _)| id)
            .collect();
        for id in done {
            ends.remove(&id);
            expiries.remove(&id);
            held.remove(&id);
            s.finish(id, t);
        }
        for id in s.overrunning(t) {
            ends.remove(&id);
            expiries.remove(&id);
            held.remove(&id);
            s.evict(id, t);
        }
        for started in s.tick(t) {
            // Invariant 1: no node is handed to two live jobs.
            let in_use: HashSet<usize> = held.values().flatten().copied().collect();
            for &node in &started.nodes {
                prop_assert!(node < TOTAL_NODES, "node index out of range");
                prop_assert!(!in_use.contains(&node), "node {node} double-booked");
            }
            ends.insert(started.id, t + runtimes[&started.id]);
            expiries.insert(started.id, t + started.walltime);
            held.insert(started.id, started.nodes);
        }
        // Invariant 2: reservations never exceed the budget.
        prop_assert!(
            s.reserved_power() <= BUDGET + 1e-6,
            "reserved {} W over budget at t={t}",
            s.reserved_power()
        );
        // Node bookkeeping agrees with ours.
        let held_nodes: usize = held.values().map(Vec::len).sum();
        prop_assert_eq!(s.free_nodes(), TOTAL_NODES - held_nodes);
        // Jump to the next event: an arrival, a completion, or a walltime
        // expiry — whichever comes first.
        let next = arrivals
            .iter()
            .chain(ends.values())
            .chain(expiries.values())
            .copied()
            .filter(|&e| e > t + EPS)
            .fold(f64::INFINITY, f64::min);
        prop_assert!(next.is_finite() || s.is_drained(), "stalled at t={t}");
        t = next;
    }
    prop_assert_eq!(s.records().len(), n_jobs, "every job retires");
    Ok(s)
}

proptest! {
    /// Node and power invariants hold for arbitrary traces, with and
    /// without backfill, including walltime overruns (runtime can exceed
    /// walltime, forcing evictions).
    #[test]
    fn capacity_and_budget_never_violated(
        raw in prop::collection::vec(raw_job(1.5), 1..25),
        backfill in any::<bool>(),
    ) {
        let (trace, runtimes) = build_trace(raw);
        drive(trace, &runtimes, backfill)?;
    }

    /// The EASY guarantee: with runtimes bounded by walltimes, a blocked
    /// head starts no later than the shadow time computed when it first
    /// blocked — backfilled jobs never push it back.
    #[test]
    fn backfill_never_delays_the_head(
        raw in prop::collection::vec(raw_job(1.0), 1..25),
    ) {
        let (trace, runtimes) = build_trace(raw);
        let s = drive(trace, &runtimes, true)?;
        for &(id, shadow) in s.head_guarantees() {
            let rec = s
                .records()
                .iter()
                .find(|r| r.id == id)
                .expect("guaranteed job retired");
            prop_assert!(
                rec.start <= shadow + 1e-6,
                "job {id} started at {} past its shadow {shadow}",
                rec.start
            );
        }
    }

    /// Without walltime overruns every job completes; nothing is evicted.
    #[test]
    fn bounded_runtimes_never_evict(
        raw in prop::collection::vec(raw_job(1.0), 1..15),
        backfill in any::<bool>(),
    ) {
        let (trace, runtimes) = build_trace(raw);
        let s = drive(trace, &runtimes, backfill)?;
        prop_assert!(s.records().iter().all(|r| r.outcome == JobOutcome::Completed));
    }
}
